"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``; this file exists
so that the package can be installed in editable mode in fully offline
environments where the ``wheel`` package (needed for PEP 660 editable wheels)
is unavailable and pip falls back to the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
