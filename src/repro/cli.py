"""Command-line interface: ``repro-ht-detect``.

Two modes of operation:

* verify a Verilog file::

      repro-ht-detect --verilog design.v --top my_accel --inputs din,key

* verify one of the bundled Trust-Hub-style benchmarks::

      repro-ht-detect --benchmark AES-T1400
      repro-ht-detect --list-benchmarks
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core import DetectionConfig, Waiver, detect_trojans
from repro.errors import ReproError
from repro.rtl import elaborate_source
from repro.sat import available_backends, default_backend_name


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ht-detect",
        description="Golden-free formal hardware-Trojan detection (DATE'24 reproduction)",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--verilog", metavar="FILE", help="Verilog source file to verify")
    source.add_argument("--benchmark", metavar="NAME", help="bundled Trust-Hub-style benchmark name")
    source.add_argument(
        "--list-benchmarks", action="store_true", help="list the bundled benchmark designs and exit"
    )
    parser.add_argument("--top", help="top module name (required with --verilog)")
    parser.add_argument(
        "--inputs",
        help="comma-separated list of data inputs to trace (default: all non-clock/reset inputs)",
    )
    parser.add_argument(
        "--waive",
        action="append",
        default=[],
        metavar="SIGNAL",
        help="assume 2-safety equality for SIGNAL (repeatable); see Sec. V-B of the paper",
    )
    parser.add_argument(
        "--strict-paper-properties",
        action="store_true",
        help="assume only fanouts_CCk (not all previously proven classes) in fanout property k",
    )
    parser.add_argument(
        "--check-all",
        action="store_true",
        help="do not stop at the first failing property",
    )
    parser.add_argument(
        "--solver-backend",
        default="auto",
        choices=["auto"] + available_backends(),
        help=f"SAT backend for the persistent solver context "
             f"(default: auto = {default_backend_name()})",
    )
    parser.add_argument("--verbose", "-v", action="store_true", help="print per-property results")
    return parser


def _config_from_args(args: argparse.Namespace, default_inputs=None, default_waivers=()) -> DetectionConfig:
    inputs = None
    if args.inputs:
        inputs = [name.strip() for name in args.inputs.split(",") if name.strip()]
    elif default_inputs:
        inputs = list(default_inputs)
    waivers = [Waiver(signal=name, reason="command line") for name in args.waive]
    waivers.extend(Waiver(signal=name, reason="benchmark default") for name in default_waivers)
    return DetectionConfig(
        inputs=inputs,
        waivers=waivers,
        cumulative_assumptions=not args.strict_paper_properties,
        stop_at_first_failure=not args.check_all,
        solver_backend=args.solver_backend,
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    try:
        if args.list_benchmarks:
            from repro.trusthub import catalog

            for name, design in sorted(catalog().items()):
                trojan = "trojan" if design.has_trojan else "HT-free"
                print(f"{name:18s} {design.family:9s} {trojan:8s} "
                      f"payload={design.payload:9s} trigger={design.trigger}")
            return 0

        if args.benchmark:
            from repro.trusthub import load_design

            design = load_design(args.benchmark)
            module = design.elaborate()
            config = _config_from_args(args, design.data_inputs, design.recommended_waivers)
        else:
            if not args.top:
                parser.error("--top is required with --verilog")
            with open(args.verilog, "r", encoding="utf-8") as handle:
                source = handle.read()
            module = elaborate_source(source, args.top)
            config = _config_from_args(args)

        report = detect_trojans(module, config)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.verbose:
        for outcome in report.outcomes:
            status = "holds" if outcome.holds else "FAILS"
            result = outcome.result
            if result.solver_calls:
                solving = (f"{result.cnf_new_clauses} new / "
                           f"{result.cnf_reused_clauses} reused clauses")
            else:
                solving = "structural"
            print(f"  {outcome.label:24s} {status:6s} "
                  f"({result.runtime_seconds:.2f} s, "
                  f"{len(result.prop.commitments)} commitments, {solving})")
    print(report.summary())
    return 0 if report.is_secure else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
