"""Command-line interface: ``repro-ht-detect``.

A thin consumer of the session API (:mod:`repro.api`) with seven subcommands::

    repro-ht-detect run --benchmark AES-T1400 --json
    repro-ht-detect run --verilog design.v --top my_accel --inputs din,key
    repro-ht-detect run --benchmark RS232-SEQ-T3000 --mode sequential --depth 20
    repro-ht-detect batch --family RS232 --jobs 4 --cache-dir ~/.repro-cache
    repro-ht-detect list-benchmarks
    repro-ht-detect report audit.json
    repro-ht-detect cache stats --cache-dir ~/.repro-cache
    repro-ht-detect serve --port 8321 --jobs 4 --queue-dir ./audit-queue
    repro-ht-detect submit --url http://127.0.0.1:8321 --benchmark RS232-T1000

``run`` audits one design (``--json`` emits the schema-versioned report,
``--verbose`` streams per-property events as they settle;
``--no-simplify`` / ``--sim-patterns`` / ``--fraig-rounds`` control the
simulation-guided miter preprocessing, which is on by default;
``--no-inprocess`` disables between-check solver simplification and
``--sim-backend`` selects the simulation kernel; ``--mode
sequential`` switches to bounded design-vs-golden equivalence with
``--depth``/``--reset-value``/``--golden-top`` and ``--vcd`` waveform
export of the multi-cycle counterexample), ``batch`` audits
many designs — sharded over ``--jobs`` worker processes — with cumulative
solver statistics, ``list-benchmarks`` prints the bundled Trust-Hub-style
catalogue, ``report`` re-renders a previously saved JSON report, and
``cache`` inspects (``stats``) or empties (``clear``) the persistent on-disk
result cache that ``--cache-dir`` enables on ``run``/``batch``
(``--no-cache`` bypasses both reads and writes).

``serve`` runs the long-lived audit daemon (:mod:`repro.serve`): a
persistent journaled job queue feeding ``--jobs`` worker threads, with
deduplication, per-token quotas, priorities, and live Server-Sent-Events
streaming.  ``submit`` is its client: it posts a design to a running
daemon, streams events with ``--verbose``, and renders the finished report
exactly like ``run`` does (same flags, same exit codes; ``--detach``
returns immediately with the job id instead of waiting).

The pre-subcommand invocation style (``repro-ht-detect --verilog ...``) is
still accepted and mapped onto ``run`` / ``list-benchmarks`` with a
deprecation notice on stderr.

Exit codes: 0 — design(s) proven secure; 1 — a Trojan was suspected or
signals stayed uncovered; 2 — usage, configuration, or I/O error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import (
    BatchReport,
    BatchSession,
    CexFound,
    CexWaived,
    ClassProven,
    ClassSimFalsified,
    ClassSplit,
    ConeSimplified,
    Design,
    DetectionConfig,
    DetectionReport,
    DetectionSession,
    PropertyScheduled,
    RunEvent,
    RunFinished,
    RunStarted,
    SolverProgress,
    StructurallyDischarged,
    Waiver,
    parse_input_list,
)
from repro.errors import ReproError
from repro.sat import available_backends, default_backend_name

_SUBCOMMANDS = ("run", "batch", "list-benchmarks", "report", "cache", "serve", "submit")

#: Flag defaults are read off a default config, so tuning a library default
#: can never silently diverge from what the CLI passes (the batch template
#: comparison in _batch_template_from_args relies on this too).
_CONFIG_DEFAULTS = DetectionConfig()


# ---------------------------------------------------------------------- #
# Parser
# ---------------------------------------------------------------------- #


def _add_config_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--inputs",
        help="comma-separated list of data inputs to trace (default: all non-clock/reset inputs)",
    )
    parser.add_argument(
        "--waive",
        action="append",
        default=[],
        metavar="SIGNAL",
        help="assume 2-safety equality for SIGNAL (repeatable); see Sec. V-B of the paper",
    )
    parser.add_argument(
        "--no-recommended-waivers",
        action="store_true",
        help="do not apply the benchmark's recommended waivers",
    )
    parser.add_argument(
        "--strict-paper-properties",
        action="store_true",
        help="assume only fanouts_CCk (not all previously proven classes) in fanout property k",
    )
    parser.add_argument(
        "--check-all",
        action="store_true",
        help="do not stop at the first failing property",
    )
    parser.add_argument(
        "--max-class",
        type=int,
        metavar="N",
        help="upper bound on the number of fanout property classes to check",
    )
    parser.add_argument(
        "--solver-backend",
        default="auto",
        choices=["auto"] + available_backends(),
        help=f"SAT backend for the persistent solver context "
             f"(default: auto = {default_backend_name()})",
    )
    parser.add_argument(
        "--jobs", "-j",
        type=int,
        default=1,
        metavar="N",
        help="settle property classes on N worker processes (default: 1, serial)",
    )
    parser.add_argument(
        "--task-retries",
        type=int,
        default=_CONFIG_DEFAULTS.task_retries,
        metavar="N",
        help=f"with --jobs > 1: re-queue a task up to N times when the "
             f"worker process holding it dies; a task that exhausts the "
             f"budget is quarantined as an inconclusive outcome instead of "
             f"aborting the run (default: {_CONFIG_DEFAULTS.task_retries})",
    )
    parser.add_argument(
        "--check-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock deadline per property-class check; a check that "
             "exceeds it degrades to an inconclusive timeout outcome "
             "(default: none — checks run to completion)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="persistent result cache: replay already-proven classes from DIR "
             "and store newly settled ones",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="neither read nor write the result cache (even with --cache-dir)",
    )
    parser.add_argument(
        "--mode",
        default="combinational",
        choices=["combinational", "sequential"],
        help="detection mode: the paper's golden-free combinational flow "
             "(default) or bounded design-vs-golden sequential equivalence",
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=10,
        metavar="K",
        help="sequential mode: unroll both models K cycles from reset (default: 10)",
    )
    parser.add_argument(
        "--reset-value",
        action="append",
        default=[],
        metavar="REG=VALUE",
        help="sequential mode: override one register's reset value (repeatable)",
    )
    parser.add_argument(
        "--no-simplify",
        action="store_true",
        help="disable miter preprocessing (sim-first falsification and "
             "fraig-style SAT sweeping); every obligation goes straight to "
             "Tseitin + CDCL",
    )
    defaults = _CONFIG_DEFAULTS
    parser.add_argument(
        "--sim-patterns",
        type=int,
        default=defaults.sim_patterns,
        metavar="N",
        help=f"random patterns per bit-parallel simulation batch "
             f"(default: {defaults.sim_patterns})",
    )
    parser.add_argument(
        "--fraig-rounds",
        type=int,
        default=defaults.fraig_rounds,
        metavar="N",
        help=f"counterexample-guided refinement rounds of the fraig sweep "
             f"(default: {defaults.fraig_rounds}; 0 keeps sim-first "
             f"falsification but disables SAT sweeping)",
    )
    parser.add_argument(
        "--no-inprocess",
        action="store_true",
        help="disable solver inprocessing between checks (clause "
             "vivification and bounded elimination of dead per-check miter "
             "variables); the persistent clause database is left untouched",
    )
    parser.add_argument(
        "--no-split",
        action="store_true",
        help="disable cube-and-conquer splitting: every class check runs "
             "monolithically with no conflict budget (verdicts are identical "
             "either way)",
    )
    parser.add_argument(
        "--split-conflicts",
        type=int,
        default=defaults.split_conflicts,
        metavar="N",
        help=f"conflict budget of a class's first monolithic SAT call; a "
             f"check that exhausts it is split into cube tasks "
             f"(default: {defaults.split_conflicts})",
    )
    parser.add_argument(
        "--split-depth",
        type=int,
        default=defaults.split_depth,
        metavar="D",
        help=f"lookahead depth of the cube splitter: a budget-exhausted "
             f"class fans out into 2^D cube tasks over its most influential "
             f"free input bits (default: {defaults.split_depth})",
    )
    from repro.aig.simvec import SIM_BACKENDS

    parser.add_argument(
        "--sim-backend",
        choices=SIM_BACKENDS,
        default=defaults.sim_backend,
        help=f"bit-parallel simulation kernel (default: "
             f"{defaults.sim_backend}; auto picks numpy for wide batches "
             f"when installed — the kernels are bit-identical)",
    )


def _add_output_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--json", action="store_true", help="emit the schema-versioned JSON report on stdout"
    )
    parser.add_argument(
        "--output", metavar="FILE", help="also write the JSON report to FILE"
    )
    parser.add_argument(
        "--verbose", "-v", action="store_true",
        help="stream per-property run events as they settle",
    )
    parser.add_argument(
        "--trace", metavar="FILE",
        help="record spans across the whole pipeline (worker processes "
             "included) and write a Chrome trace_event JSON to FILE "
             "(view in chrome://tracing or https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="trace the run and print a per-phase wall-time breakdown",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-ht-detect",
        description="Golden-free formal hardware-Trojan detection (DATE'24 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True, metavar="COMMAND")

    run_parser = subparsers.add_parser(
        "run", help="audit one design (Verilog file or bundled benchmark)"
    )
    source = run_parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--verilog", metavar="FILE", help="Verilog source file to verify")
    source.add_argument(
        "--benchmark", metavar="NAME", help="bundled Trust-Hub-style benchmark name"
    )
    run_parser.add_argument("--top", help="top module name (required with --verilog)")
    run_parser.add_argument(
        "--golden-top", metavar="NAME",
        help="sequential mode: top module of the golden model "
             "(same file as --verilog, or --golden; benchmarks default to "
             "their catalogued golden design)",
    )
    run_parser.add_argument(
        "--golden", metavar="FILE",
        help="sequential mode: separate Verilog file holding --golden-top",
    )
    run_parser.add_argument(
        "--vcd", metavar="FILE",
        help="write the counterexample trace (design instance) as a VCD waveform",
    )
    _add_config_options(run_parser)
    _add_output_options(run_parser)

    batch_parser = subparsers.add_parser(
        "batch", help="audit many bundled benchmarks in one process"
    )
    batch_parser.add_argument(
        "benchmarks", nargs="*", metavar="BENCHMARK", help="benchmark names to audit"
    )
    batch_parser.add_argument(
        "--family", action="append", default=[], metavar="FAMILY",
        help="audit every benchmark of FAMILY (repeatable; AES, BasicRSA, RS232)",
    )
    batch_parser.add_argument(
        "--all", action="store_true", help="audit every bundled benchmark"
    )
    batch_parser.add_argument(
        "--clean-only", action="store_true",
        help="restrict the selection to the Trojan-free designs",
    )
    _add_config_options(batch_parser)
    _add_output_options(batch_parser)

    list_parser = subparsers.add_parser(
        "list-benchmarks", help="list the bundled benchmark designs and exit"
    )
    list_parser.add_argument(
        "--family", metavar="FAMILY", help="restrict the listing to one family"
    )

    report_parser = subparsers.add_parser(
        "report", help="re-render a saved JSON report (single-design or batch)"
    )
    report_parser.add_argument("file", metavar="FILE", help="JSON report produced with --json")
    report_parser.add_argument(
        "--json", action="store_true", help="re-emit the normalized JSON instead of the summary"
    )
    report_parser.add_argument(
        "--profile", action="store_true",
        help="print the per-phase time breakdown of a traced report "
             "(runs recorded with --trace/--profile)",
    )

    cache_parser = subparsers.add_parser(
        "cache", help="inspect or clear the persistent on-disk result cache"
    )
    cache_subparsers = cache_parser.add_subparsers(
        dest="cache_command", required=True, metavar="ACTION"
    )
    for action, help_text in (
        ("stats", "print entry count and total size of the cache"),
        ("clear", "delete every cached entry"),
    ):
        action_parser = cache_subparsers.add_parser(action, help=help_text)
        action_parser.add_argument(
            "--cache-dir", required=True, metavar="DIR", help="cache directory"
        )

    serve_parser = subparsers.add_parser(
        "serve", help="run the long-lived audit daemon (HTTP/JSON + SSE)"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port", type=int, default=8321, metavar="PORT",
        help="bind port (default: 8321; 0 picks a free port)",
    )
    serve_parser.add_argument(
        "--jobs", "-j", type=int, default=2, metavar="N",
        help="worker threads running audits (default: 2; 0 accepts and "
             "journals jobs without running them)",
    )
    serve_parser.add_argument(
        "--queue-dir", default=".repro-serve", metavar="DIR",
        help="persistent job queue directory (default: .repro-serve); the "
             "daemon replays incomplete journaled jobs from here on startup",
    )
    serve_parser.add_argument(
        "--cache-dir", metavar="DIR",
        help="shared result cache for every served audit "
             "(default: QUEUE_DIR/cache)",
    )
    serve_parser.add_argument(
        "--no-cache", action="store_true",
        help="run served audits without the shared result cache",
    )
    serve_parser.add_argument(
        "--quota", type=int, default=0, metavar="N",
        help="max incomplete jobs per client token (default: 0, unlimited)",
    )
    serve_parser.add_argument(
        "--token-quota", action="append", default=[], metavar="TOKEN=N",
        help="override the quota for one client token (repeatable)",
    )
    serve_parser.add_argument(
        "--lease", type=float, default=None, metavar="SECONDS",
        help="job lease duration when several daemons share one --queue-dir; "
             "a running job whose lease expires is re-queued by a surviving "
             "daemon (default: 30)",
    )
    serve_parser.add_argument(
        "--owner", default=None, metavar="ID",
        help="stable daemon identity stamped on leases and journals "
             "(default: a per-process random id)",
    )

    submit_parser = subparsers.add_parser(
        "submit", help="submit one audit to a running daemon and stream it"
    )
    submit_parser.add_argument(
        "--url", default="http://127.0.0.1:8321", metavar="URL",
        help="base URL of the daemon (default: http://127.0.0.1:8321)",
    )
    submit_source = submit_parser.add_mutually_exclusive_group(required=True)
    submit_source.add_argument(
        "--verilog", metavar="FILE", help="Verilog source file to upload"
    )
    submit_source.add_argument(
        "--benchmark", metavar="NAME", help="bundled Trust-Hub-style benchmark name"
    )
    submit_parser.add_argument("--top", help="top module name (required with --verilog)")
    submit_parser.add_argument(
        "--golden-top", metavar="NAME",
        help="sequential mode: top module of the golden model",
    )
    submit_parser.add_argument(
        "--golden", metavar="FILE",
        help="sequential mode: separate Verilog file holding --golden-top",
    )
    submit_parser.add_argument(
        "--priority", type=int, default=0, metavar="N",
        help="queue priority (higher runs first; default: 0)",
    )
    submit_parser.add_argument(
        "--token", default="", metavar="TOKEN",
        help="client token for the daemon's quota accounting",
    )
    submit_parser.add_argument(
        "--detach", action="store_true",
        help="submit and print the job id without waiting for the verdict",
    )
    _add_config_options(submit_parser)
    _add_output_options(submit_parser)

    return parser


def _normalise_argv(argv: List[str]) -> List[str]:
    """Map the legacy flag-only invocation style onto the subcommands."""
    if not argv or argv[0] in _SUBCOMMANDS or argv[0] in ("-h", "--help"):
        return argv
    if argv[0].startswith("-"):
        if "--list-benchmarks" in argv:
            rest = [arg for arg in argv if arg != "--list-benchmarks"]
            return ["list-benchmarks"] + rest
        print(
            "repro-ht-detect: note: flag-only invocation is deprecated; "
            "use the 'run' subcommand",
            file=sys.stderr,
        )
        return ["run"] + argv
    return argv


# ---------------------------------------------------------------------- #
# Shared helpers
# ---------------------------------------------------------------------- #


def _parse_reset_values(items: List[str]) -> Optional[dict]:
    """Parse repeated ``--reset-value REG=VALUE`` flags into a dict."""
    if not items:
        return None
    values = {}
    for item in items:
        name, separator, text = item.partition("=")
        name = name.strip()
        if not separator or not name or not text.strip():
            raise ReproError(
                f"--reset-value expects REGISTER=VALUE, got {item!r}"
            )
        try:
            values[name] = int(text.strip(), 0)
        except ValueError as error:
            raise ReproError(
                f"--reset-value {item!r}: value is not an integer"
            ) from error
    return values


def _shared_config_kwargs(args: argparse.Namespace) -> dict:
    """Config fields that map 1:1 from CLI flags, shared by run and batch."""
    return dict(
        cumulative_assumptions=not args.strict_paper_properties,
        stop_at_first_failure=not args.check_all,
        max_class=args.max_class,
        solver_backend=args.solver_backend,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        mode=args.mode,
        depth=args.depth,
        reset_values=_parse_reset_values(args.reset_value),
        simplify=not args.no_simplify,
        sim_patterns=args.sim_patterns,
        fraig_rounds=args.fraig_rounds,
        inprocess=not args.no_inprocess,
        sim_backend=args.sim_backend,
        trace=bool(getattr(args, "trace", None)) or bool(getattr(args, "profile", False)),
        split=not args.no_split,
        split_conflicts=args.split_conflicts,
        split_depth=args.split_depth,
        task_retries=args.task_retries,
        check_timeout_s=args.check_timeout,
    )


def _config_from_args(args: argparse.Namespace, design: Design) -> DetectionConfig:
    if args.inputs:
        inputs: Optional[List[str]] = parse_input_list(args.inputs)
    else:
        inputs = list(design.data_inputs) or None
    waivers = [Waiver(signal=name, reason="command line") for name in args.waive]
    if not args.no_recommended_waivers:
        waivers.extend(
            Waiver(signal=name, reason=f"recommended for {design.name}")
            for name in design.recommended_waivers
        )
    return DetectionConfig(inputs=inputs, waivers=waivers, **_shared_config_kwargs(args))


def _batch_template_from_args(args: argparse.Namespace) -> Optional[DetectionConfig]:
    """The batch's shared config template, or None when every flag is at its
    default (letting each design's own recommended defaults apply).

    Built unconditionally and compared against a default config, so a new
    flag wired into :func:`_shared_config_kwargs` can never be silently
    dropped by a hand-maintained any-flag-set condition.
    """
    template = DetectionConfig(
        inputs=parse_input_list(args.inputs) if args.inputs else None,
        waivers=[Waiver(signal=name, reason="command line") for name in args.waive],
        **_shared_config_kwargs(args),
    )
    return None if template == DetectionConfig() else template


def _print_event(event: RunEvent, file=None) -> None:
    # With --json the event stream goes to stderr so that stdout stays a
    # single machine-readable JSON document.
    out = file if file is not None else sys.stdout
    if isinstance(event, RunStarted):
        print(f"{event.design}: {event.scheduled_classes} property classes "
              f"({event.solver_backend} backend)", file=out)
    elif isinstance(event, PropertyScheduled):
        print(f"  scheduled {event.label} ({event.commitments} commitments)", file=out)
    elif isinstance(event, StructurallyDischarged):
        print(f"  {event.label:24s} holds  (structural, "
              f"{event.outcome.result.runtime_seconds:.2f} s)", file=out)
    elif isinstance(event, ClassProven):
        result = event.outcome.result
        print(f"  {event.label:24s} holds  ({result.runtime_seconds:.2f} s, "
              f"{result.cnf_new_clauses} new / {result.cnf_reused_clauses} reused clauses)",
              file=out)
    elif isinstance(event, ConeSimplified):
        print(f"  {event.label:24s} swept  ({event.nodes_before} -> "
              f"{event.nodes_after} cone nodes, {event.merged_nodes} merged)",
              file=out)
    elif isinstance(event, ClassSimFalsified):
        print(f"  {event.label:24s} falsified by random simulation "
              f"(zero CDCL calls)", file=out)
    elif isinstance(event, ClassSplit):
        print(f"  {event.label:24s} split  ({event.cubes} cubes, "
              f"{event.cubes_cached} from cache)", file=out)
    elif isinstance(event, CexFound):
        status = "spurious, auto-resolving" if event.auto_resolvable else "Trojan suspected"
        print(f"  {event.label:24s} FAILS  (counterexample: {status})", file=out)
    elif isinstance(event, CexWaived):
        print(f"  {event.label:24s} waived spurious counterexample "
              f"via {', '.join(event.signals)}", file=out)
    elif isinstance(event, SolverProgress):
        print(f"  {event.label:24s} solving... {event.conflicts} conflicts, "
              f"{event.restarts} restarts, {event.learned_clauses} learned, "
              f"decision level {event.decision_level}", file=out)


def _emit_json(args: argparse.Namespace, document: str, summary: str) -> None:
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(document + "\n")
    if args.json:
        print(document)
    else:
        print(summary)


# ---------------------------------------------------------------------- #
# Subcommands
# ---------------------------------------------------------------------- #


def _cmd_run(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.obs.trace import span as _span

    tracer = _make_tracer(args)
    with _install_tracer_if(tracer):
        with _span("parse", source=args.benchmark or args.verilog):
            if args.benchmark:
                if args.golden or args.golden_top:
                    parser.error("--golden/--golden-top apply to --verilog designs "
                                 "only; benchmarks use their catalogued golden model")
                design = Design.from_benchmark(args.benchmark)
            else:
                if not args.top:
                    parser.error("--top is required with --verilog")
                if args.golden and not args.golden_top:
                    parser.error("--golden needs --golden-top to name the golden module")
                if args.golden_top and args.mode != "sequential":
                    # Silently ignoring the golden model would let a forgotten
                    # --mode sequential print a SECURE verdict that compared
                    # nothing.
                    parser.error("--golden-top/--golden require --mode sequential")
                design = Design.from_file(
                    args.verilog,
                    top=args.top,
                    golden_top=args.golden_top,
                    golden_path=args.golden,
                )

        session = DetectionSession(design, config=_config_from_args(args, design))
        if args.verbose:
            event_stream = sys.stderr if args.json else sys.stdout
            # Heartbeats are transient (bus-only, never part of the merged
            # class-ordered stream), so verbose mode watches the bus for them.
            session.subscribe(
                lambda event: _print_event(event, file=event_stream),
                event_type=SolverProgress,
                safe=True,
            )
            for event in session.iter_results():
                if not isinstance(event, RunFinished):
                    _print_event(event, file=event_stream)
            report = session.report
        else:
            report = session.run()

    _emit_json(args, report.to_json(), report.summary())
    if args.vcd:
        _write_cex_vcd(args.vcd, report, design)
    _emit_trace(args, tracer)
    return 0 if report.is_secure else 1


def _make_tracer(args: argparse.Namespace):
    """A fresh Tracer when ``--trace``/``--profile`` ask for one, else None."""
    if getattr(args, "trace", None) or getattr(args, "profile", False):
        from repro.obs.trace import Tracer

        return Tracer()
    return None


def _install_tracer_if(tracer):
    """``install_tracer(tracer)`` or a no-op context when tracing is off."""
    if tracer is None:
        from contextlib import nullcontext

        return nullcontext()
    from repro.obs.trace import install_tracer

    return install_tracer(tracer)


def _emit_trace(args: argparse.Namespace, tracer) -> None:
    """Write the Chrome trace file and/or print the per-phase breakdown."""
    if tracer is None:
        return
    import json as _json

    from repro.obs.trace import format_profile, phase_profile

    if args.trace:
        with open(args.trace, "w", encoding="utf-8") as handle:
            _json.dump(tracer.to_chrome_trace(), handle)
        print(f"trace written to {args.trace} ({len(tracer)} spans)", file=sys.stderr)
    if args.profile:
        out = sys.stderr if args.json else sys.stdout
        print(format_profile(phase_profile(tracer.export())), file=out)


def _write_cex_vcd(path: str, report: DetectionReport, design: Design) -> None:
    """Dump the report's counterexample (design instance) as a VCD waveform.

    Sequential counterexamples render as full multi-cycle traces — one
    snapshot per unrolled cycle; combinational ones cover the property's
    one-cycle window.  The waveform is a side artifact of a finished audit:
    having nothing to dump or an unwritable path is reported on stderr, it
    never discards the report or changes the exit code.
    """
    from repro.sim import trace_from_counterexample, write_vcd

    if report.counterexample is None:
        print(f"note: no counterexample to dump, {path!r} not written", file=sys.stderr)
        return
    trace = trace_from_counterexample(report.counterexample, instance=0)
    try:
        with open(path, "w", encoding="utf-8") as handle:
            write_vcd(trace, design.module.signals, handle, module_name=design.module.name)
    except OSError as error:
        print(f"error: cannot write VCD waveform {path!r}: {error}", file=sys.stderr)
        return
    print(f"counterexample waveform written to {path}", file=sys.stderr)


def _select_benchmarks(args: argparse.Namespace, parser: argparse.ArgumentParser) -> List[str]:
    from repro.trusthub import design_names, families

    names: List[str] = list(args.benchmarks)
    for family in args.family:
        if family not in families():
            parser.error(f"unknown family {family!r}; available: {', '.join(families())}")
        names.extend(design_names(family=family))
    if args.all:
        names.extend(design_names())
    if args.clean_only:
        clean = set(design_names(with_trojan=False))
        names = [name for name in names if name in clean]
    if not names:
        parser.error("batch needs benchmark names, --family, or --all")
    unique: List[str] = []
    for name in names:
        if name not in unique:
            unique.append(name)
    return unique


def _cmd_batch(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    batch = BatchSession(
        config=_batch_template_from_args(args),
        use_recommended_waivers=not args.no_recommended_waivers,
    )
    if args.verbose:
        event_stream = sys.stderr if args.json else sys.stdout
        batch.subscribe(lambda event: _print_event(event, file=event_stream))
    for name in _select_benchmarks(args, parser):
        batch.add(name)

    tracer = _make_tracer(args)
    with _install_tracer_if(tracer):
        report = batch.run()
    _emit_json(args, report.to_json(), report.summary())
    _emit_trace(args, tracer)
    return 0 if report.all_secure else 1


def _cmd_list_benchmarks(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.trusthub import catalog, families

    if args.family and args.family not in families():
        parser.error(f"unknown family {args.family!r}; available: {', '.join(families())}")
    for name, design in sorted(catalog().items()):
        if args.family and design.family != args.family:
            continue
        trojan = "trojan" if design.has_trojan else "HT-free"
        print(f"{name:18s} {design.family:9s} {trojan:8s} "
              f"payload={design.payload:9s} trigger={design.trigger}")
    return 0


def _cmd_cache(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.exec import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.cache_command == "stats":
        stats = cache.stats()
        print(f"cache {stats['root']}: {stats['entries']} entries, "
              f"{stats['bytes']} bytes (schema v{stats['cache_schema']})")
        return 0
    removed = cache.clear()
    print(f"cache {cache.root}: removed {removed} entries")
    return 0


def _cmd_report(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    import json as _json

    with open(args.file, "r", encoding="utf-8") as handle:
        text = handle.read()
    try:
        data = _json.loads(text)
    except _json.JSONDecodeError as error:
        raise ReproError(f"{args.file!r} is not valid JSON: {error}") from error
    if not isinstance(data, dict):
        raise ReproError(f"{args.file!r} does not look like a JSON report")
    if "reports" in data:
        batch = BatchReport.from_dict(data)
        if args.profile:
            from repro.obs.trace import format_profile

            for entry in batch.reports:
                print(f"{entry.design}:")
                print("  " + format_profile(entry.profile or {}).replace("\n", "\n  "))
            return 0 if batch.all_secure else 1
        print(batch.to_json() if args.json else batch.summary())
        return 0 if batch.all_secure else 1
    report = DetectionReport.from_dict(data)
    if args.profile:
        from repro.obs.trace import format_profile

        print(format_profile(report.profile or {}))
        return 0 if report.is_secure else 1
    print(report.to_json() if args.json else report.summary())
    return 0 if report.is_secure else 1


def _parse_token_quotas(items: List[str]) -> dict:
    """Parse repeated ``--token-quota TOKEN=N`` flags into a dict."""
    quotas = {}
    for item in items:
        token, separator, text = item.partition("=")
        if not separator or not token:
            raise ReproError(f"--token-quota expects TOKEN=N, got {item!r}")
        try:
            quotas[token] = int(text.strip())
        except ValueError as error:
            raise ReproError(
                f"--token-quota {item!r}: quota is not an integer"
            ) from error
    return quotas


def _cmd_serve(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.serve import AuditServer
    from repro.serve.queue import DEFAULT_LEASE_S

    server = AuditServer(
        host=args.host,
        port=args.port,
        queue_dir=args.queue_dir,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        default_quota=args.quota,
        quotas=_parse_token_quotas(args.token_quota),
        owner=args.owner,
        lease_s=args.lease if args.lease is not None else DEFAULT_LEASE_S,
    )
    server.start()
    recovered = server.queue.recovered_jobs
    print(
        f"repro serve: listening on {server.url} "
        f"({args.jobs} worker(s), queue {args.queue_dir}"
        + (f", {recovered} job(s) recovered" if recovered else "")
        + ")",
        file=sys.stderr,
    )
    import time

    try:
        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    finally:
        server.stop()
    return 0


def _submission_config_dict(args: argparse.Namespace) -> dict:
    """The semantic config overlay sent with a submission.

    Execution knobs (jobs, cache) are the daemon's to decide, so they are
    stripped; they never enter the config fingerprint either, so a served
    audit stays report-identical to a local ``run``.
    """
    config = DetectionConfig(
        inputs=parse_input_list(args.inputs) if args.inputs else None,
        waivers=[Waiver(signal=name, reason="command line") for name in args.waive],
        **_shared_config_kwargs(args),
    )
    data = config.to_dict()
    for knob in ("jobs", "cache_dir", "use_cache", "trace", "task_retries"):
        data.pop(knob, None)
    return data


def _cmd_submit(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.serve.client import AuditFailedError, ServeClient

    if args.trace or args.profile:
        # Tracing is a local execution knob; the daemon runs audits
        # untraced so served reports stay byte-identical to local runs.
        print("note: served audits are not traced; --trace/--profile ignored",
              file=sys.stderr)
    body: dict = {
        "config": _submission_config_dict(args),
        "use_recommended_waivers": not args.no_recommended_waivers,
        "priority": args.priority,
    }
    if args.benchmark:
        if args.golden or args.golden_top:
            parser.error("--golden/--golden-top apply to --verilog designs only; "
                         "benchmarks use their catalogued golden model")
        body["benchmark"] = args.benchmark
    else:
        if not args.top:
            parser.error("--top is required with --verilog")
        if args.golden and not args.golden_top:
            parser.error("--golden needs --golden-top to name the golden module")
        with open(args.verilog, "r", encoding="utf-8") as handle:
            body["verilog"] = handle.read()
        body["top"] = args.top
        if args.golden_top:
            body["golden_top"] = args.golden_top
        if args.golden:
            with open(args.golden, "r", encoding="utf-8") as handle:
                body["golden_verilog"] = handle.read()

    client = ServeClient(args.url, token=args.token or None)
    handle_data = client.submit(body)
    job = handle_data["job"]
    note = " (attached to existing job)" if handle_data["deduplicated"] else ""
    print(f"submitted job {job['id']} [{job['design_name']}]{note}", file=sys.stderr)
    if args.detach:
        print(job["id"])
        return 0

    event_stream = sys.stderr if args.json else sys.stdout
    try:
        for event in client.stream_events(job["id"]):
            if args.verbose and not isinstance(event, RunFinished):
                _print_event(event, file=event_stream)
    except AuditFailedError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = client.report(job["id"])
    _emit_json(args, report.to_json(), report.summary())
    return 0 if report.is_secure else 1


# ---------------------------------------------------------------------- #
# Entry point
# ---------------------------------------------------------------------- #

_HANDLERS = {
    "run": _cmd_run,
    "batch": _cmd_batch,
    "list-benchmarks": _cmd_list_benchmarks,
    "report": _cmd_report,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "submit": _cmd_submit,
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    parser = build_parser()
    args = parser.parse_args(_normalise_argv(argv))

    try:
        return _HANDLERS[args.command](args, parser)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
