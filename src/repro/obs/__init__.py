"""Observability: span tracing, metrics, and solver progress heartbeats.

Three independent facilities, all strictly *execution knobs* — none of them
may ever change a verdict, a report's normalized form, or a config
fingerprint:

* :mod:`repro.obs.trace` — contextvar-scoped hierarchical spans exported as
  Chrome ``trace_event`` JSON (``repro run --trace out.json``) and per-phase
  breakdown tables (``--profile``).
* :mod:`repro.obs.metrics` — a thread-safe counter/gauge/histogram registry
  with Prometheus text exposition, served at ``/metrics`` by the audit
  daemon.
* :mod:`repro.obs.progress` — solver progress heartbeats: a sink callback
  installed around a run receives a :class:`repro.core.events.SolverProgress`
  event every N conflicts of a hard CDCL solve.
"""

from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import active_heartbeat, progress_scope, progress_sink
from repro.obs.trace import (
    Tracer,
    current_tracer,
    install_tracer,
    phase_profile,
    span,
)

__all__ = [
    "MetricsRegistry",
    "Tracer",
    "active_heartbeat",
    "current_tracer",
    "install_tracer",
    "phase_profile",
    "progress_scope",
    "progress_sink",
    "span",
]
