"""Hierarchical span tracing with Chrome ``trace_event`` export.

A :class:`Tracer` collects *complete* trace events (``"ph": "X"``): each
span records its name, start timestamp, duration, process id, thread id,
and free-form ``args``.  The ambient tracer is carried in a
:mod:`contextvars` variable, so nesting works across the whole pipeline
without threading a tracer object through every call signature::

    with install_tracer(Tracer()) as tracer:
        with span("bitblast", cls=3):
            ...
    json.dump(tracer.to_chrome_trace(), fh)

When no tracer is installed, :func:`span` returns a shared no-op context
manager — the disabled cost is one contextvar read, which is why span
call sites can stay in place permanently (the hard invariant of the obs
subsystem: zero behavior change when disabled).

Timestamps come from ``time.perf_counter()``.  On Linux that clock is
``CLOCK_MONOTONIC``, which is system-wide: spans recorded in forked
``--jobs N`` worker processes land on the same timeline as the parent's,
so the merged trace (worker spans travel back through the chunk-result
channel as plain dicts, see :meth:`Tracer.absorb`) lines up in the Chrome
trace viewer without any clock translation.

Restoration discipline: :func:`install_tracer` restores the *previous
value* with ``set()`` rather than ``Token.reset()``.  Generator-driven
pipelines can close a context manager from a different context than the
one that entered it (e.g. GC finalizing an abandoned ``iter_results``
generator), where ``reset()`` raises ``ValueError: Token was created in a
different Context``.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time
from typing import Any, Dict, Iterable, List, Optional

_tracer: contextvars.ContextVar[Optional["Tracer"]] = contextvars.ContextVar(
    "repro_tracer", default=None
)

#: Span names counted as preprocessing in the profile's two-way split.
PREPROCESS_PHASES = frozenset({"parse", "plan", "bitblast", "unroll", "preprocess", "sim", "fraig"})
#: Span names counted as SAT solving in the profile's two-way split.
SOLVE_PHASES = frozenset({"solve", "inprocess"})


class Tracer:
    """Thread-safe collector of completed spans.

    Spans are stored as ready-to-serialize Chrome ``trace_event`` dicts
    (JSON-native scalars only), which is also the form they cross the
    worker-process result channel in — one representation end to end.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []

    def record(
        self,
        name: str,
        started: float,
        duration: float,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record one completed span (timestamps in perf_counter seconds)."""
        event: Dict[str, Any] = {
            "name": name,
            "ph": "X",
            "ts": started * 1e6,
            "dur": duration * 1e6,
            "pid": os.getpid(),
            "tid": threading.get_ident(),
            "cat": "repro",
        }
        if args:
            event["args"] = dict(args)
        with self._lock:
            self._events.append(event)

    def absorb(self, events: Iterable[Dict[str, Any]]) -> None:
        """Merge spans recorded elsewhere (e.g. in a worker process)."""
        incoming = [dict(event) for event in events]
        with self._lock:
            self._events.extend(incoming)

    def export(self) -> List[Dict[str, Any]]:
        """All recorded trace events, in recording order."""
        with self._lock:
            return [dict(event) for event in self._events]

    def to_chrome_trace(self) -> Dict[str, Any]:
        """The trace in Chrome's JSON object format (``chrome://tracing``)."""
        return {"traceEvents": self.export(), "displayTimeUnit": "ms"}

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class _InstallTracer:
    """Context manager making ``tracer`` the ambient tracer."""

    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Optional[Tracer]) -> None:
        self._tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Optional[Tracer]:
        self._previous = _tracer.get()
        _tracer.set(self._tracer)
        return self._tracer

    def __exit__(self, *_exc_info) -> None:
        _tracer.set(self._previous)


def install_tracer(tracer: Optional[Tracer]) -> _InstallTracer:
    """Make ``tracer`` ambient for the ``with`` block (None uninstalls)."""
    return _InstallTracer(tracer)


def current_tracer() -> Optional[Tracer]:
    """The ambient tracer of the calling context, or None."""
    return _tracer.get()


def clear() -> None:
    """Drop any inherited ambient tracer (forked worker processes call this:
    fork copies the parent's contextvars, but a chunk-local tracer is
    installed per task and parent spans must not leak into worker chunks)."""
    _tracer.set(None)


class _Span:
    """One live span; records itself on the ambient tracer at exit."""

    __slots__ = ("_tracer", "_name", "_args", "_started")

    def __init__(self, tracer: Tracer, name: str, args: Dict[str, Any]) -> None:
        self._tracer = tracer
        self._name = name
        self._args = args
        self._started = 0.0

    def __enter__(self) -> "_Span":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *_exc_info) -> None:
        self._tracer.record(
            self._name,
            self._started,
            time.perf_counter() - self._started,
            self._args,
        )


class _NoopSpan:
    """Shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc_info) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


def span(name: str, **args: Any):
    """A context manager timing one named span on the ambient tracer.

    When no tracer is installed (the default), the shared no-op span is
    returned — span call sites cost one contextvar read when disabled.
    """
    tracer = _tracer.get()
    if tracer is None:
        return _NOOP_SPAN
    return _Span(tracer, name, args)


def absorb(events: Iterable[Dict[str, Any]]) -> None:
    """Merge foreign span records into the ambient tracer (no-op if none)."""
    tracer = _tracer.get()
    if tracer is not None:
        tracer.absorb(events)


# ---------------------------------------------------------------------- #
# Profile aggregation
# ---------------------------------------------------------------------- #


def phase_profile(events: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Aggregate trace events into per-phase *self time* totals.

    Spans nest (a ``bitblast`` span contains ``preprocess`` which contains
    ``solve`` calls of the fraig sweep), so naively summing durations
    double-counts.  Instead, per ``(pid, tid)`` lane the spans are swept in
    start order while a stack of open ancestors is maintained: each span
    contributes its full duration to its own phase and subtracts it from
    its direct parent's phase — exclusive (self) time, which sums to real
    wall clock per lane.

    Returns ``{"phases": {name: {"count": n, "total_s": s}},
    "preprocess_s": float, "solve_s": float, "total_s": float}``.
    """
    totals: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    lanes: Dict[Any, List[Dict[str, Any]]] = {}
    for event in events:
        if event.get("ph") != "X":
            continue
        lanes.setdefault((event.get("pid"), event.get("tid")), []).append(event)
    for lane_events in lanes.values():
        # Equal start timestamps: the longer span is the parent.
        lane_events.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: List[Any] = []  # (end_ts, name) of open ancestors
        for event in lane_events:
            ts, dur, name = event["ts"], event["dur"], event["name"]
            while stack and ts >= stack[-1][0]:
                stack.pop()
            counts[name] = counts.get(name, 0) + 1
            totals[name] = totals.get(name, 0.0) + dur
            if stack:
                parent = stack[-1][1]
                totals[parent] = totals.get(parent, 0.0) - dur
            stack.append((ts + dur, name))
    phases = {
        name: {"count": counts[name], "total_s": totals[name] / 1e6}
        for name in sorted(totals)
    }
    preprocess_s = sum(
        entry["total_s"] for name, entry in phases.items() if name in PREPROCESS_PHASES
    )
    solve_s = sum(
        entry["total_s"] for name, entry in phases.items() if name in SOLVE_PHASES
    )
    return {
        "phases": phases,
        "preprocess_s": preprocess_s,
        "solve_s": solve_s,
        "total_s": sum(entry["total_s"] for entry in phases.values()),
    }


def format_profile(profile: Dict[str, Any]) -> str:
    """Render a phase profile as the aligned table ``--profile`` prints."""
    phases = profile.get("phases") or {}
    if not phases:
        return "no profile data (run with --trace or --profile)"
    rows = sorted(phases.items(), key=lambda item: -item[1]["total_s"])
    width = max(len("phase"), max(len(name) for name, _ in rows))
    lines = [f"{'phase':{width}s}  {'calls':>7s}  {'self time':>10s}"]
    for name, entry in rows:
        lines.append(
            f"{name:{width}s}  {entry['count']:7d}  {entry['total_s']:9.3f}s"
        )
    lines.append(
        f"{'—'* width}  preprocess {profile.get('preprocess_s', 0.0):.3f}s"
        f" / solve {profile.get('solve_s', 0.0):.3f}s"
        f" / total {profile.get('total_s', 0.0):.3f}s"
    )
    return "\n".join(lines)
