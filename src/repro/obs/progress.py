"""Solver progress heartbeats: live telemetry out of a long CDCL solve.

The CDCL main loop is the one place in the pipeline that can disappear for
minutes; a heartbeat every :data:`HEARTBEAT_CONFLICTS` conflicts turns that
silence into a stream of :class:`repro.core.events.SolverProgress` events.

Two contextvars cooperate:

* the *sink* — installed by a run consumer (the session's event stream, the
  serve daemon's live feed) with :func:`progress_sink`; receives each
  heartbeat event.
* the *scope* — installed by the per-class settling code
  (:meth:`repro.exec.worker.DesignWorkContext.settle_class`) with
  :func:`progress_scope`; supplies the ``design``/``index``/``kind`` fields
  a :class:`~repro.core.events.ClassEvent` needs.

The solver itself fetches :func:`active_heartbeat` once per ``solve()``
call; with no sink installed (the default) that is one contextvar read and
the conflict loop carries zero extra work.  Heartbeats are *transient* by
design: they are never recorded in result records, reports, or the serve
journal — only live consumers see them, so report byte-identity across
jobs/tracing/serving is untouched.

Both contextvars restore with ``set()`` to the previous value (never
``Token.reset()``): the installing context managers can be closed from a
different context than the one that entered them (generator finalization).
"""

from __future__ import annotations

import contextvars
from typing import Callable, Optional, Tuple

from repro.core.events import SolverProgress

#: Emit one heartbeat every this many conflicts of one solver call.
#: Module-level so tests (and unusual deployments) can tune it; the value
#: trades SSE chatter against latency of the first sign of life.
HEARTBEAT_CONFLICTS = 1000

_sink: contextvars.ContextVar[Optional[Tuple[Callable[[SolverProgress], None], int]]] = (
    contextvars.ContextVar("repro_progress_sink", default=None)
)
_scope: contextvars.ContextVar[Optional[Tuple[str, int, str]]] = contextvars.ContextVar(
    "repro_progress_scope", default=None
)


class _SetRestore:
    """Context manager setting a contextvar, restoring the prior value."""

    __slots__ = ("_var", "_value", "_previous")

    def __init__(self, var: contextvars.ContextVar, value) -> None:
        self._var = var
        self._value = value
        self._previous = None

    def __enter__(self):
        self._previous = self._var.get()
        self._var.set(self._value)
        return self

    def __exit__(self, *_exc_info) -> None:
        self._var.set(self._previous)


def progress_sink(
    callback: Callable[[SolverProgress], None],
    interval: Optional[int] = None,
) -> _SetRestore:
    """Install ``callback`` as the heartbeat sink for the ``with`` block.

    ``interval`` overrides :data:`HEARTBEAT_CONFLICTS` for this sink.  The
    callback runs on the solving thread, mid-solve — it must be fast and
    must not raise (a raising sink aborts the solve, like any unsafe
    EventBus subscriber would abort a run).
    """
    return _SetRestore(_sink, (callback, interval))


def progress_scope(design: str, index: int, kind: str) -> _SetRestore:
    """Attach class identity to heartbeats emitted inside the block."""
    return _SetRestore(_scope, (design, index, kind))


def clear() -> None:
    """Drop inherited sink and scope (forked worker processes call this:
    a parent's sink callback is meaningless in the child — the channel it
    feeds does not cross the fork)."""
    _sink.set(None)
    _scope.set(None)


class _Heartbeat:
    """Bound (sink, scope, interval) handle the solver drives directly."""

    __slots__ = ("interval", "_callback", "_design", "_index", "_kind")

    def __init__(
        self,
        callback: Callable[[SolverProgress], None],
        interval: int,
        design: str,
        index: int,
        kind: str,
    ) -> None:
        self.interval = interval
        self._callback = callback
        self._design = design
        self._index = index
        self._kind = kind

    def emit(
        self,
        conflicts: int,
        restarts: int,
        learned_clauses: int,
        decision_level: int,
    ) -> None:
        self._callback(
            SolverProgress(
                design=self._design,
                index=self._index,
                kind=self._kind,
                conflicts=conflicts,
                restarts=restarts,
                learned_clauses=learned_clauses,
                decision_level=decision_level,
            )
        )


def active_heartbeat() -> Optional[_Heartbeat]:
    """The heartbeat handle for the calling context, or None.

    Fetched once at ``solve()`` entry.  Requires both a sink and a scope:
    a sink without class scope (e.g. solver use outside the detection
    flow) emits nothing rather than mislabeled events.
    """
    sink = _sink.get()
    if sink is None:
        return None
    scope = _scope.get()
    if scope is None:
        return None
    callback, interval = sink
    if interval is None:
        interval = HEARTBEAT_CONFLICTS
    if interval <= 0:
        return None
    design, index, kind = scope
    return _Heartbeat(callback, interval, design, index, kind)
