"""A small thread-safe metrics registry with Prometheus text exposition.

Counters, gauges, and histograms, stdlib-only, rendered in the Prometheus
text exposition format (version 0.0.4) for the audit daemon's ``/metrics``
endpoint.  No label support — every metric here is a daemon-global series,
which keeps the registry trivially correct under the serve daemon's
thread-pool concurrency (one lock around every mutation and the render).
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence

#: Default histogram buckets: latencies from 5 ms to ~5 min, log-spaced.
DEFAULT_BUCKETS = (
    0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


def _format_value(value: float) -> str:
    """Prometheus sample values: integers render without a trailing ``.0``."""
    if value == int(value):
        return str(int(value))
    return repr(value)


class Counter:
    """A monotonically increasing value."""

    def __init__(self, name: str, help_text: str) -> None:
        self.name = name
        self.help = help_text
        self.value = 0.0

    def render(self) -> List[str]:
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} counter",
            f"{self.name} {_format_value(self.value)}",
        ]


class Gauge:
    """A value that can go up and down; optionally computed at render time."""

    def __init__(
        self,
        name: str,
        help_text: str,
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help = help_text
        self.value = 0.0
        self.fn = fn

    def render(self) -> List[str]:
        value = self.value
        if self.fn is not None:
            try:
                value = float(self.fn())
            except Exception:  # noqa: BLE001 - scraping must never fail
                value = self.value
        return [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} gauge",
            f"{self.name} {_format_value(value)}",
        ]


class Histogram:
    """Cumulative-bucket histogram with ``_sum``/``_count`` series."""

    def __init__(
        self,
        name: str,
        help_text: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help_text
        self.buckets = tuple(sorted(buckets))
        self.bucket_counts = [0] * len(self.buckets)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[index] += 1

    def render(self) -> List[str]:
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} histogram",
        ]
        cumulative = 0
        for bound, count in zip(self.buckets, self.bucket_counts):
            cumulative = count  # bucket_counts are already cumulative
            lines.append(
                f'{self.name}_bucket{{le="{_format_value(bound)}"}} {cumulative}'
            )
        lines.append(f'{self.name}_bucket{{le="+Inf"}} {self.count}')
        lines.append(f"{self.name}_sum {_format_value(self.sum)}")
        lines.append(f"{self.name}_count {self.count}")
        return lines


class MetricsRegistry:
    """Thread-safe registry of named metrics, rendered Prometheus-style.

    Metrics are created on first use (``inc``/``set_gauge``/``observe``
    auto-register), so instrumentation sites never need a handle to a
    pre-declared metric object.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # Registration and mutation
    # ------------------------------------------------------------------ #

    def counter(self, name: str, help_text: str = "") -> Counter:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Counter(name, help_text)
                self._metrics[name] = metric
            if not isinstance(metric, Counter):
                raise TypeError(f"metric {name!r} is not a counter")
            return metric

    def gauge(
        self,
        name: str,
        help_text: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Gauge(name, help_text, fn)
                self._metrics[name] = metric
            if not isinstance(metric, Gauge):
                raise TypeError(f"metric {name!r} is not a gauge")
            if fn is not None:
                metric.fn = fn
            return metric

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                metric = Histogram(name, help_text, buckets)
                self._metrics[name] = metric
            if not isinstance(metric, Histogram):
                raise TypeError(f"metric {name!r} is not a histogram")
            return metric

    def inc(self, name: str, amount: float = 1.0, help_text: str = "") -> None:
        """Increment counter ``name`` by ``amount`` (creating it if needed)."""
        if amount < 0:
            raise ValueError(f"counter {name!r} cannot decrease (amount={amount})")
        counter = self.counter(name, help_text)
        with self._lock:
            counter.value += amount

    def set_gauge(self, name: str, value: float, help_text: str = "") -> None:
        gauge = self.gauge(name, help_text)
        with self._lock:
            gauge.value = float(value)

    def observe(
        self,
        name: str,
        value: float,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        histogram = self.histogram(name, help_text, buckets)
        with self._lock:
            histogram.observe(value)

    # ------------------------------------------------------------------ #
    # Introspection and exposition
    # ------------------------------------------------------------------ #

    def value(self, name: str) -> float:
        """Current value of a counter or gauge (0.0 when unregistered)."""
        with self._lock:
            metric = self._metrics.get(name)
            if metric is None:
                return 0.0
            if isinstance(metric, Gauge) and metric.fn is not None:
                return float(metric.fn())
            return float(getattr(metric, "value", getattr(metric, "sum", 0.0)))

    def snapshot(self) -> Dict[str, float]:
        """Scalar view of every metric (histograms expose their sums)."""
        with self._lock:
            result: Dict[str, float] = {}
            for name, metric in sorted(self._metrics.items()):
                if isinstance(metric, Histogram):
                    result[f"{name}_sum"] = metric.sum
                    result[f"{name}_count"] = float(metric.count)
                elif isinstance(metric, Gauge) and metric.fn is not None:
                    try:
                        result[name] = float(metric.fn())
                    except Exception:  # noqa: BLE001
                        result[name] = metric.value
                else:
                    result[name] = metric.value
            return result

    def render(self) -> str:
        """The registry in Prometheus text exposition format."""
        with self._lock:
            metrics = sorted(self._metrics.items())
        lines: List[str] = []
        for _name, metric in metrics:
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"
