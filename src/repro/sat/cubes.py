"""Lookahead cube splitting for hard property checks (cube-and-conquer).

When a check's first SAT call blows its conflict budget, the monolithic
search space is partitioned into ``2^d`` *cubes*: assumption prefixes over
the ``d`` most influential free input bits of the miter cone.  Each cube is
checked independently through the existing assumption-based protocol on a
persistent solver context — any satisfiable cube witnesses the original
miter, and all-UNSAT covers the full assignment space of the chosen bits,
proving the original check.

Branching-bit selection is a two-stage lookahead:

1. *Structural pre-scoring* — candidates are ranked by how many AND nodes of
   the cone reference them directly, and the top ``LOOKAHEAD_POOL_FACTOR * d``
   survive to the refinement stage.
2. *Simulation influence* — each surviving candidate's word is complemented
   under a deterministic pseudo-random pattern batch; the number of
   (pattern, root) toggles it causes is its influence score.

Everything here is deliberately *position*-seeded and id-free: scores and
tie-breaks depend only on the cone's structure and on the caller-supplied
order keys (portable leaf names), never on absolute AIG node ids.  Running
the selection on a freshly built canonical context therefore yields the same
cubes in every run, at any job count — which is what makes per-cube cache
entries resumable.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.aig.aig import AIG

#: Structural pre-scoring keeps this many candidates per requested split bit
#: for the (more expensive) simulation-influence refinement stage.
LOOKAHEAD_POOL_FACTOR = 4

#: Patterns of the influence simulation (one machine word's worth).
LOOKAHEAD_PATTERNS = 64


def _splitmix64(value: int) -> int:
    """One splitmix64 step: cheap, stateless, high-quality 64-bit mixing."""
    value = (value + 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF
    z = value
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return z ^ (z >> 31)


def _position_word(position: int, num_patterns: int) -> int:
    """A deterministic pattern word for the input at cone ``position``.

    Seeded by the input's *position* in the cone's topological order — an
    isomorphism invariant — so two structurally identical cones get identical
    stimulus regardless of their absolute node numbering.
    """
    chunks = (num_patterns + 63) // 64
    word = 0
    for chunk in range(chunks):
        word |= _splitmix64(position * chunks + chunk + 1) << (64 * chunk)
    return word & ((1 << num_patterns) - 1)


def select_split_bits(
    aig: AIG,
    roots: Sequence[int],
    candidates: Sequence[Tuple[int, Any]],
    depth: int,
    num_patterns: int = LOOKAHEAD_PATTERNS,
) -> List[int]:
    """Pick up to ``depth`` branching input nodes for the cone of ``roots``.

    ``candidates`` pairs each eligible input node with an opaque, totally
    ordered key (the portable leaf name) used for deterministic tie-breaking;
    candidates outside the roots' cone are ignored.  Returns the chosen nodes,
    most influential first — fewer than ``depth`` when the cone does not
    contain enough distinct candidates.
    """
    if depth <= 0:
        return []
    cone = aig.cone_nodes(roots)
    cone_set = set(cone)
    keys = {node: key for node, key in candidates if node in cone_set}
    if not keys:
        return []

    # Stage 1: structural pre-scoring by direct references inside the cone.
    references = {node: 0 for node in keys}
    for node in cone:
        if not aig.is_and(node):
            continue
        left, right = aig.fanins(node)
        for fanin in (left, right):
            leaf = fanin >> 1
            if leaf in references:
                references[leaf] += 1
    ranked = sorted(keys, key=lambda node: (-references[node], keys[node]))
    pool = ranked[: max(depth * LOOKAHEAD_POOL_FACTOR, depth)]

    # Stage 2: simulation influence — toggles caused by complementing each
    # pool candidate's word under a shared deterministic pattern batch.
    mask = (1 << num_patterns) - 1
    base_words: Dict[int, int] = {}
    for position, node in enumerate(node for node in cone if aig.is_input(node)):
        base_words[node] = _position_word(position, num_patterns)
    base = aig.evaluate_words(roots, base_words, mask, cone=cone)
    influence: Dict[int, int] = {}
    for node in pool:
        flipped = dict(base_words)
        flipped[node] = flipped.get(node, 0) ^ mask
        words = aig.evaluate_words(roots, flipped, mask, cone=cone)
        influence[node] = sum(
            bin((word ^ reference) & mask).count("1")
            for word, reference in zip(words, base)
        )
    chosen = sorted(
        pool, key=lambda node: (-influence[node], -references[node], keys[node])
    )
    return chosen[:depth]


def enumerate_cubes(bits: Sequence[Any]) -> List[Tuple[Tuple[Any, int], ...]]:
    """All ``2^len(bits)`` assumption cubes over ``bits``, in a fixed order.

    Each cube is a tuple of ``(bit, value)`` pairs; cube ``i`` assigns bit
    ``j`` the value ``(i >> (len - 1 - j)) & 1`` (most significant bit
    first), so together the cubes exactly cover the assignment space — the
    covering property that makes an all-UNSAT reduction a proof.
    """
    count = len(bits)
    return [
        tuple((bit, (index >> (count - 1 - j)) & 1) for j, bit in enumerate(bits))
        for index in range(1 << count)
    ]
