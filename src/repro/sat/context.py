"""A persistent CNF/SAT context shared by every check of a verification run.

:class:`SolverContext` couples one :class:`repro.aig.cnf.CnfBuilder` (the
node→variable cache and Tseitin clauses of the shared AIG) with one
:class:`repro.sat.backend.SatBackend` instance.  Both live for the whole run:

* encoding a cone that overlaps an earlier check reuses its CNF variables and
  clauses instead of re-running Tseitin conversion;
* only clauses emitted since the previous solve call are fed to the solver,
  so the solver keeps its clause database, learned clauses and heuristic
  state across calls;
* per-call goals (property miters, non-merged assumptions) are passed as
  solver assumptions, never asserted permanently — one failed or vacuous
  check cannot constrain the next.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Union

from repro.aig.aig import AIG
from repro.aig.cnf import CnfBuilder
from repro.obs.trace import span as _span
from repro.sat.backend import SatBackend, create_backend
from repro.sat.solver import SatResult


@dataclass
class ContextSolveOutcome:
    """Result of one context solve call plus clause-reuse accounting."""

    result: SatResult
    #: Clauses newly encoded and fed to the solver by this call.
    new_clauses: int
    #: Clauses that were already in the solver before this call.
    reused_clauses: int

    @property
    def satisfiable(self) -> bool:
        return self.result.satisfiable


class SolverContext:
    """Incremental CNF encoding and SAT solving over one shared AIG."""

    def __init__(self, aig: AIG, backend: Union[str, SatBackend] = "auto") -> None:
        self._builder = CnfBuilder(aig)
        self._backend = backend if isinstance(backend, SatBackend) else create_backend(backend)
        self._clauses_fed = 0

    # ------------------------------------------------------------------ #
    # Encoding
    # ------------------------------------------------------------------ #

    @property
    def builder(self) -> CnfBuilder:
        return self._builder

    def literal_of(self, aig_literal: int) -> int:
        """Encode the cone of ``aig_literal``; unchanged cones are cache hits."""
        return self._builder.literal_of(aig_literal)

    # ------------------------------------------------------------------ #
    # Solving
    # ------------------------------------------------------------------ #

    def flush(self) -> int:
        """Feed clauses emitted since the last flush to the solver."""
        clauses = self._builder.cnf.clauses
        new_clauses = clauses[self._clauses_fed :]
        for clause in new_clauses:
            self._backend.add_clause(clause)
        self._backend.ensure_vars(self._builder.cnf.num_vars)
        self._clauses_fed = len(clauses)
        return len(new_clauses)

    def solve(
        self,
        assumptions: Optional[Iterable[int]] = None,
        conflict_limit: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> ContextSolveOutcome:
        """Flush newly encoded clauses and solve under ``assumptions``."""
        reused = self._clauses_fed
        new_clauses = self.flush()
        with _span("solve", backend=self._backend.name, new_clauses=new_clauses):
            result = self._backend.solve(
                assumptions=assumptions,
                conflict_limit=conflict_limit,
                deadline_s=deadline_s,
            )
        return ContextSolveOutcome(
            result=result,
            new_clauses=new_clauses,
            reused_clauses=reused,
        )

    # ------------------------------------------------------------------ #
    # Inprocessing
    # ------------------------------------------------------------------ #

    def inprocess(
        self,
        max_vivify: int = 100,
        max_occurrences: int = 10,
    ) -> Dict[str, object]:
        """Simplify the shared solver state between checks.

        Flushes pending clauses, then asks the backend to vivify clauses and
        eliminate variables at level 0.  Only Tseitin variables of AND nodes
        are offered for elimination (input variables carry witness values);
        cache entries of eliminated variables are dropped from the
        :class:`CnfBuilder` so later checks re-encode those nodes with fresh
        variables instead of referencing a variable the solver removed.
        """
        self.flush()
        with _span("inprocess", backend=self._backend.name):
            stats = self._backend.inprocess(
                candidate_vars=self._builder.eliminable_vars(),
                max_vivify=max_vivify,
                max_occurrences=max_occurrences,
            )
        eliminated = stats.get("eliminated") or []
        if eliminated:
            stats["invalidated_nodes"] = self._builder.invalidate_vars(eliminated)
        return stats

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    @property
    def backend(self) -> SatBackend:
        return self._backend

    @property
    def backend_name(self) -> str:
        return self._backend.name

    @property
    def num_vars(self) -> int:
        return self._builder.cnf.num_vars

    @property
    def num_clauses(self) -> int:
        return self._builder.cnf.num_clauses

    @property
    def clauses_fed(self) -> int:
        return self._clauses_fed

    @property
    def solve_calls(self) -> int:
        return self._backend.solve_calls

    @property
    def cumulative_conflicts(self) -> int:
        return self._backend.total_conflicts

    @property
    def cumulative_restarts(self) -> int:
        return self._backend.total_restarts

    @property
    def cumulative_learned_clauses(self) -> int:
        return self._backend.total_learned_clauses

    @property
    def cumulative_deleted_clauses(self) -> int:
        return self._backend.total_deleted_clauses

    def reuse_summary(self) -> str:
        """One-line human-readable account of the context's clause reuse."""
        return (
            f"{self.backend_name} backend: {self.solve_calls} solver calls, "
            f"{self.num_clauses} CNF clauses over {self.num_vars} variables, "
            f"{self.cumulative_conflicts} conflicts"
        )
