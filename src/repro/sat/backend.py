"""Pluggable SAT solver backends behind one incremental interface.

Every backend keeps its clause database (and, where the underlying engine
supports it, learned clauses, branching activities and saved phases) alive
across :meth:`SatBackend.solve` calls, so a long verification run pays the
encoding and learning cost of shared logic exactly once.  Per-call goals are
passed as *assumptions* — temporary decisions retracted after the call — never
as permanent unit clauses, which is what makes the same solver instance
reusable for every property of a detection run.

Backends are looked up through a registry:

* ``"python"`` — the pure-Python CDCL solver of :mod:`repro.sat.solver`;
  always available.
* ``"pysat"`` — a `python-sat <https://pysathq.github.io>`_ solver (Glucose 3
  by default), auto-detected at import time and registered only when the
  package is installed.
* ``"auto"`` — the fastest available backend (``pysat`` when installed,
  ``python`` otherwise).
"""

from __future__ import annotations

import importlib.util
from abc import ABC, abstractmethod
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.errors import ConflictLimitExceeded, SolverError
from repro.sat.solver import SatResult, SatSolver


class SatBackend(ABC):
    """Incremental, assumption-based SAT solving interface.

    A backend owns one persistent solver instance.  Clauses are only ever
    added, never removed; per-call constraints must be expressed through the
    ``assumptions`` argument of :meth:`solve`.
    """

    #: Registry name of the backend class (set by the concrete classes).
    name: str = ""

    @abstractmethod
    def add_clause(self, literals: Iterable[int]) -> None:
        """Add a permanent clause (DIMACS-style signed integer literals)."""

    @abstractmethod
    def ensure_vars(self, count: int) -> None:
        """Grow the variable space to at least ``count`` variables."""

    @abstractmethod
    def solve(
        self,
        assumptions: Optional[Iterable[int]] = None,
        conflict_limit: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> SatResult:
        """Solve the accumulated formula under temporary assumptions.

        The solver state (clauses, learned clauses, heuristics) survives the
        call; an UNSAT answer under assumptions does not make the formula
        permanently unsatisfiable.  ``deadline_s`` is an absolute
        ``time.monotonic()`` deadline: a backend that supports wall-clock
        interruption raises :class:`repro.errors.CheckDeadlineExceeded`
        (solver left reusable) when the search runs past it; backends
        without that capability treat it as best-effort advice.
        """

    @property
    @abstractmethod
    def num_vars(self) -> int:
        """Number of variables known to the solver."""

    @property
    @abstractmethod
    def num_clauses(self) -> int:
        """Number of problem clauses added so far."""

    @property
    @abstractmethod
    def total_conflicts(self) -> int:
        """Conflicts accumulated over every solve call of this backend."""

    @property
    @abstractmethod
    def solve_calls(self) -> int:
        """Number of solve calls made against this backend."""

    # -------------------------------------------------------------- #
    # Optional capabilities (no-op defaults for engines without them)
    # -------------------------------------------------------------- #

    def inprocess(
        self,
        candidate_vars: Optional[Iterable[int]] = None,
        max_vivify: int = 100,
        max_occurrences: int = 10,
    ) -> Dict[str, object]:
        """Simplify the stored formula between checks (vivification / BVE).

        Backends without inprocessing support return an empty stats dict and
        eliminate nothing, so callers may invoke this unconditionally.  The
        returned ``"eliminated"`` entry lists variables the backend removed
        from the formula; callers that cache CNF encodings must stop reusing
        those variables.
        """
        del candidate_vars, max_vivify, max_occurrences
        return {
            "vivify_checked": 0,
            "vivified": 0,
            "removed_clauses": 0,
            "eliminated": [],
            "resolvents": 0,
        }

    @property
    def total_restarts(self) -> int:
        """Restarts accumulated over every solve call (0 when untracked)."""
        return 0

    @property
    def total_learned_clauses(self) -> int:
        """Clauses learned over the backend's lifetime (0 when untracked)."""
        return 0

    @property
    def total_deleted_clauses(self) -> int:
        """Learned clauses deleted by reduction (0 when untracked)."""
        return 0


class PythonCdclBackend(SatBackend):
    """The bundled pure-Python CDCL solver (:class:`repro.sat.solver.SatSolver`).

    Learned clauses, VSIDS activities and saved phases all live inside the
    wrapped solver and persist across calls by construction.
    """

    name = "python"

    def __init__(
        self,
        minimize: bool = True,
        reduce_base: int = 2000,
        reduce_increment: int = 300,
    ) -> None:
        self._solver = SatSolver(
            minimize=minimize,
            reduce_base=reduce_base,
            reduce_increment=reduce_increment,
        )

    @property
    def solver(self) -> SatSolver:
        """The wrapped solver (exposed for tests and diagnostics)."""
        return self._solver

    def add_clause(self, literals: Iterable[int]) -> None:
        self._solver.add_clause(literals)

    def ensure_vars(self, count: int) -> None:
        self._solver.ensure_vars(count)

    def solve(
        self,
        assumptions: Optional[Iterable[int]] = None,
        conflict_limit: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> SatResult:
        return self._solver.solve(
            assumptions=assumptions,
            conflict_limit=conflict_limit,
            deadline_s=deadline_s,
        )

    @property
    def num_vars(self) -> int:
        return self._solver.num_vars

    @property
    def num_clauses(self) -> int:
        return self._solver.num_clauses

    @property
    def total_conflicts(self) -> int:
        return self._solver.total_conflicts

    @property
    def solve_calls(self) -> int:
        return self._solver.solve_calls

    def inprocess(
        self,
        candidate_vars: Optional[Iterable[int]] = None,
        max_vivify: int = 100,
        max_occurrences: int = 10,
    ) -> Dict[str, object]:
        return self._solver.inprocess(
            candidate_vars=candidate_vars,
            max_vivify=max_vivify,
            max_occurrences=max_occurrences,
        )

    @property
    def total_restarts(self) -> int:
        return self._solver.total_restarts

    @property
    def total_learned_clauses(self) -> int:
        return self._solver.total_learned_clauses

    @property
    def total_deleted_clauses(self) -> int:
        return self._solver.total_deleted_clauses


class PySatBackend(SatBackend):
    """Backend over an installed `python-sat` solver (incremental mode).

    Only registered when the ``pysat`` package is importable; the default
    engine is Glucose 3, which supports native incremental solving under
    assumptions.
    """

    name = "pysat"

    def __init__(self, engine: str = "glucose3") -> None:
        try:
            from pysat.solvers import Solver  # type: ignore[import-not-found]
        except ImportError as error:  # pragma: no cover - guarded by registry
            raise SolverError("the 'pysat' backend requires the python-sat package") from error
        try:
            self._solver = Solver(name=engine, incr=True)
        except (TypeError, NotImplementedError):  # pragma: no cover - engine-dependent
            self._solver = Solver(name=engine)
        self._engine = engine
        self._num_vars = 0
        self._num_clauses = 0
        self._solve_calls = 0
        # accum_stats() is cumulative; snapshots make SatResult per-call.
        self._stats_base = {"conflicts": 0, "decisions": 0, "propagations": 0, "restarts": 0}

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = list(literals)
        if any(literal == 0 for literal in clause):
            raise SolverError("literal 0 is not allowed")
        for literal in clause:
            self._num_vars = max(self._num_vars, abs(literal))
        self._solver.add_clause(clause)
        self._num_clauses += 1

    def ensure_vars(self, count: int) -> None:
        self._num_vars = max(self._num_vars, count)

    def solve(
        self,
        assumptions: Optional[Iterable[int]] = None,
        conflict_limit: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> SatResult:
        # deadline_s is best-effort advice only: a native pysat search
        # cannot be interrupted on a wall-clock boundary from Python, so
        # the deadline is enforced one layer up (the worker checks it
        # between solver calls) rather than mid-search.
        del deadline_s
        assumptions = list(assumptions or [])
        base = dict(self._stats_base)
        self._solve_calls += 1
        if conflict_limit is not None:
            self._solver.conf_budget(conflict_limit)
            satisfiable = self._solver.solve_limited(assumptions=assumptions)
            if satisfiable is None:
                stats = self._solver.accum_stats() or {}
                self._stats_base = {key: int(stats.get(key, 0)) for key in base}
                raise ConflictLimitExceeded("conflict limit exceeded")
        else:
            satisfiable = self._solver.solve(assumptions=assumptions)
        stats = self._solver.accum_stats() or {}
        self._stats_base = {key: int(stats.get(key, 0)) for key in base}
        result = SatResult(
            satisfiable=bool(satisfiable),
            conflicts=max(0, self._stats_base["conflicts"] - base["conflicts"]),
            decisions=max(0, self._stats_base["decisions"] - base["decisions"]),
            propagations=max(0, self._stats_base["propagations"] - base["propagations"]),
            restarts=max(0, self._stats_base["restarts"] - base["restarts"]),
        )
        if satisfiable:
            model = self._solver.get_model() or []
            result.model = {abs(literal): literal > 0 for literal in model}
        return result

    @property
    def num_vars(self) -> int:
        return max(self._num_vars, int(self._solver.nof_vars() or 0))

    @property
    def num_clauses(self) -> int:
        return self._num_clauses

    @property
    def total_conflicts(self) -> int:
        stats = self._solver.accum_stats() or {}
        return int(stats.get("conflicts", 0))

    @property
    def solve_calls(self) -> int:
        return self._solve_calls

    @property
    def total_restarts(self) -> int:
        stats = self._solver.accum_stats() or {}
        return int(stats.get("restarts", 0))


# ---------------------------------------------------------------------- #
# Backend registry
# ---------------------------------------------------------------------- #

_REGISTRY: Dict[str, Callable[[], SatBackend]] = {}


def register_backend(name: str, factory: Callable[[], SatBackend]) -> None:
    """Register (or replace) a backend factory under ``name``."""
    _REGISTRY[name] = factory


def pysat_available() -> bool:
    """True when the python-sat package is importable."""
    return importlib.util.find_spec("pysat") is not None


def available_backends() -> List[str]:
    """Names of the registered backends, in deterministic order."""
    return sorted(_REGISTRY)


def default_backend_name() -> str:
    """The backend ``"auto"`` resolves to on this installation."""
    return "pysat" if "pysat" in _REGISTRY else "python"


def create_backend(name: str = "auto") -> SatBackend:
    """Instantiate a backend by registry name (``"auto"`` picks the best)."""
    if name == "auto":
        name = default_backend_name()
    factory = _REGISTRY.get(name)
    if factory is None:
        raise SolverError(
            f"unknown solver backend {name!r}; available: {', '.join(available_backends())}"
        )
    return factory()


register_backend("python", PythonCdclBackend)
if pysat_available():  # pragma: no cover - depends on the installation
    register_backend("pysat", PySatBackend)
