"""Incremental SAT solving: CDCL solver, pluggable backends, shared context."""

from repro.sat.solver import SatSolver, SatResult
from repro.sat.backend import (
    PySatBackend,
    PythonCdclBackend,
    SatBackend,
    available_backends,
    create_backend,
    default_backend_name,
    pysat_available,
    register_backend,
)
from repro.sat.context import ContextSolveOutcome, SolverContext

__all__ = [
    "SatSolver",
    "SatResult",
    "SatBackend",
    "PythonCdclBackend",
    "PySatBackend",
    "available_backends",
    "create_backend",
    "default_backend_name",
    "pysat_available",
    "register_backend",
    "ContextSolveOutcome",
    "SolverContext",
]
