"""Conflict-driven clause learning (CDCL) SAT solver."""

from repro.sat.solver import SatSolver, SatResult

__all__ = ["SatSolver", "SatResult"]
