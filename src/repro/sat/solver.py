"""A CDCL SAT solver in pure Python.

The solver implements the standard modern architecture: two-watched-literal
propagation with blocking literals, first-UIP conflict analysis with
recursive clause minimization, LBD-tiered clause learning with periodic
reduction of the learned tier, VSIDS-style activity-based branching with
phase saving, and Luby restarts.  Literals use the DIMACS convention
(non-zero signed integers, variable indices start at 1).

Clause storage uses *stable handles*: watch lists and reason pointers hold
:class:`Clause` objects, never positional indices, so deleting learned
clauses (or original clauses during inprocessing) cannot invalidate any
other reference — deletion just marks the clause and watch lists drop it
lazily on their next visit.

Between solve calls, the owner may run *inprocessing* at decision level 0
(:meth:`SatSolver.inprocess`): clause vivification shortens original
clauses by bounded unit propagation, and bounded variable elimination
resolves low-occurrence variables out of the formula entirely (with model
reconstruction, so satisfying assignments still extend to the eliminated
variables and satisfy the original clauses).

The property checker only hands the solver comparatively small formulas —
structural hashing discharges identical logic cones before CNF generation —
so a clean Python implementation is entirely sufficient for the workloads of
the paper's evaluation.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import CheckDeadlineExceeded, ConflictLimitExceeded, SolverError
from repro.obs.progress import active_heartbeat

#: How often (in conflicts) the solve loop polls the wall clock against its
#: deadline.  Coarse on purpose: a ``time.monotonic()`` call per conflict
#: would be measurable, one per 256 conflicts is noise while still bounding
#: deadline overshoot to a fraction of a second on realistic formulas.
DEADLINE_POLL_CONFLICTS = 256


@dataclass
class SatResult:
    """Outcome of a solver call.

    The ``conflicts``/``decisions``/``propagations``/``restarts``/
    ``learned_clauses``/``deleted_clauses`` counters cover *this* call only —
    a persistent solver accumulates totals across calls, exposed via
    :attr:`SatSolver.total_conflicts` and friends.
    """

    satisfiable: bool
    model: Dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    deleted_clauses: int = 0

    def value(self, variable: int) -> bool:
        return self.model.get(variable, False)


class Clause:
    """One clause of the solver's database — the *stable handle*.

    Watch lists and reason pointers reference the object itself, so learned
    clause deletion never invalidates anything: a deleted clause keeps its
    identity, is skipped (and dropped) by propagation, and is garbage
    collected once the last watch entry naming it is purged.
    """

    __slots__ = ("lits", "learned", "lbd", "deleted")

    def __init__(self, lits: List[int], learned: bool = False, lbd: int = 0) -> None:
        self.lits = lits
        self.learned = learned
        self.lbd = lbd
        self.deleted = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "learned" if self.learned else "original"
        return f"Clause({self.lits}, {kind}, lbd={self.lbd})"


def _luby(index: int) -> int:
    """Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...), 0-based index."""
    size, exponent = 1, 0
    while size < index + 1:
        exponent += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        exponent -= 1
        index %= size
    return 1 << exponent


#: Learned clauses with an LBD at or below this are "glue" clauses: they
#: connect few decision levels, propagate often, and are never deleted.
GLUE_LBD = 2


class SatSolver:
    """CDCL solver with incremental clause addition and assumption support."""

    _UNASSIGNED = -1

    def __init__(
        self,
        minimize: bool = True,
        reduce_base: int = 2000,
        reduce_increment: int = 300,
    ) -> None:
        self._num_vars = 0
        #: Original (problem) clause tier.
        self._clauses: List[Clause] = []
        #: Learned clause tier (live clauses only; reduction compacts it).
        self._learned: List[Clause] = []
        #: watch entry = (clause, blocker): when the blocker literal is
        #: already true the clause is satisfied and never touched.
        self._watches: Dict[int, List[Tuple[Clause, int]]] = {}
        self._assigns: List[int] = [self._UNASSIGNED]  # index 0 unused
        self._levels: List[int] = [0]
        self._reasons: List[Optional[Clause]] = [None]
        self._phases: List[bool] = [False]
        self._eliminated: List[bool] = [False]
        self._activity: List[float] = [0.0]
        self._activity_increment = 1.0
        self._activity_decay = 0.95
        # Activity-ordered max-heap of branching candidates.  With one solver
        # persisting across every check of a run, a linear scan over all
        # variables ever created would make each decision O(total run vars).
        self._heap: List[int] = []
        self._heap_index: List[int] = [-1]
        self._trail: List[int] = []
        self._trail_limits: List[int] = []
        self._propagation_head = 0
        self._conflicts = 0
        self._decisions = 0
        self._propagations = 0
        self._restarts = 0
        self._learned_total = 0
        self._deleted_total = 0
        self._solve_calls = 0
        self._call_base = (0, 0, 0, 0, 0, 0)  # counter snapshot at solve() entry
        self._unsat = False
        # Conflict-clause minimization (recursive self-subsumption).
        self._minimize = minimize
        # Learned-tier reduction: fires when the live learned count reaches
        # reduce_base + reductions * reduce_increment, so the DB stays
        # bounded across a long assumption-check sequence while slowly
        # granting a busier formula more room.
        self._reduce_base = reduce_base
        self._reduce_increment = reduce_increment
        self._reductions = 0
        # Vivification round-robin cursor (persists across inprocess calls).
        self._vivify_head = 0
        # Variable-elimination records for model reconstruction:
        # (variable, clauses-that-mentioned-it) in elimination order.
        self._elim_stack: List[Tuple[int, List[List[int]]]] = []

    # ------------------------------------------------------------------ #
    # Problem construction
    # ------------------------------------------------------------------ #

    def new_var(self) -> int:
        self._num_vars += 1
        self._assigns.append(self._UNASSIGNED)
        self._levels.append(0)
        self._reasons.append(None)
        self._phases.append(False)
        self._eliminated.append(False)
        self._activity.append(0.0)
        self._heap_index.append(-1)
        self._heap_insert(self._num_vars)
        return self._num_vars

    def ensure_vars(self, count: int) -> None:
        while self._num_vars < count:
            self.new_var()

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = sorted(set(literals), key=abs)
        if not clause:
            self._unsat = True
            return
        for literal in clause:
            if literal == 0:
                raise SolverError("literal 0 is not allowed")
            self.ensure_vars(abs(literal))
        if self._elim_stack:
            for literal in clause:
                if self._eliminated[abs(literal)]:
                    raise SolverError(
                        f"variable {abs(literal)} was eliminated by inprocessing "
                        f"and cannot appear in new clauses"
                    )
        # Tautology check.
        for first, second in zip(clause, clause[1:]):
            if first == -second:
                return
        if self._decision_level() == 0:
            # The persistent solver accumulates permanent level-0 assignments
            # (unit clauses, learned units) across solve() calls.  Clauses
            # added later must be simplified against them: a watch placed on
            # an already-falsified literal would never fire again, letting
            # the solver return models that violate the new clause.
            if any(self._literal_value(literal) == 1 for literal in clause):
                return
            clause = [literal for literal in clause if self._literal_value(literal) != 0]
            if not clause:
                self._unsat = True
                return
        if len(clause) == 1:
            literal = clause[0]
            value = self._literal_value(literal)
            if value == 0:
                self._unsat = True
            elif value == self._UNASSIGNED:
                if self._decision_level() != 0:
                    raise SolverError("unit clauses must be added at decision level 0")
                self._enqueue(literal, reason=None)
            return
        self._attach_new(clause, learned=False)

    def _attach_new(self, lits: List[int], learned: bool, lbd: int = 0) -> Clause:
        clause = Clause(lits, learned=learned, lbd=lbd)
        if learned:
            self._learned.append(clause)
        else:
            self._clauses.append(clause)
        self._watch(lits[0], clause, lits[1])
        self._watch(lits[1], clause, lits[0])
        return clause

    def _watch(self, literal: int, clause: Clause, blocker: int) -> None:
        self._watches.setdefault(-literal, []).append((clause, blocker))

    def _detach(self, clause: Clause) -> None:
        """Remove the clause's two watch entries eagerly (inprocessing only)."""
        for literal in clause.lits[:2]:
            watch_list = self._watches.get(-literal)
            if not watch_list:
                continue
            for position, entry in enumerate(watch_list):
                if entry[0] is clause:
                    del watch_list[position]
                    break

    # ------------------------------------------------------------------ #
    # Assignment helpers
    # ------------------------------------------------------------------ #

    def _decision_level(self) -> int:
        return len(self._trail_limits)

    def _literal_value(self, literal: int) -> int:
        assigned = self._assigns[abs(literal)]
        if assigned == self._UNASSIGNED:
            return self._UNASSIGNED
        value = assigned
        return value if literal > 0 else 1 - value

    def _enqueue(self, literal: int, reason: Optional[Clause]) -> bool:
        value = self._literal_value(literal)
        if value != self._UNASSIGNED:
            return value == 1
        variable = abs(literal)
        self._assigns[variable] = 1 if literal > 0 else 0
        self._levels[variable] = self._decision_level()
        self._reasons[variable] = reason
        self._phases[variable] = literal > 0
        self._trail.append(literal)
        return True

    # ------------------------------------------------------------------ #
    # Boolean constraint propagation
    # ------------------------------------------------------------------ #

    def _propagate(self) -> Optional[Clause]:
        """Propagate pending assignments; return a conflicting clause or None.

        This is the solver's innermost loop, so attribute lookups are
        hoisted into locals and the per-literal watch list is rebuilt
        *lazily*: as long as no watch moves (and no deleted clause is
        purged), the existing list object is kept as-is instead of being
        copied element by element on every propagation.  Every watch entry
        carries a *blocking literal* — a clause literal that was true when
        the watch was placed; while it is still true the clause is
        satisfied and the entry is skipped without touching the clause at
        all, which is the common case on long watch lists.
        """
        watches = self._watches
        trail = self._trail
        literal_value = self._literal_value
        enqueue = self._enqueue
        while self._propagation_head < len(trail):
            literal = trail[self._propagation_head]
            self._propagation_head += 1
            self._propagations += 1
            watch_list = watches.get(literal)
            if not watch_list:
                continue
            # Created on the first moved watch; None means "list unchanged".
            new_watch_list: Optional[List[Tuple[Clause, int]]] = None
            conflict: Optional[Clause] = None
            false_literal = -literal
            for position, entry in enumerate(watch_list):
                clause, blocker = entry
                if clause.deleted:
                    # Lazy purge of a reduced/eliminated clause.
                    if new_watch_list is None:
                        new_watch_list = watch_list[:position]
                    continue
                if literal_value(blocker) == 1:
                    if new_watch_list is not None:
                        new_watch_list.append(entry)
                    continue
                lits = clause.lits
                # Ensure the false literal is at position 1.
                if lits[0] == false_literal:
                    lits[0], lits[1] = lits[1], lits[0]
                first = lits[0]
                if first != blocker and literal_value(first) == 1:
                    entry = (clause, first)
                    if new_watch_list is None:
                        watch_list[position] = entry
                    else:
                        new_watch_list.append(entry)
                    continue
                # Look for a replacement watch.
                replaced = False
                for k in range(2, len(lits)):
                    if literal_value(lits[k]) != 0:
                        lits[1], lits[k] = lits[k], lits[1]
                        watches.setdefault(-lits[1], []).append((clause, first))
                        replaced = True
                        break
                if replaced:
                    if new_watch_list is None:
                        new_watch_list = watch_list[:position]
                    continue
                entry = (clause, first)
                if new_watch_list is None:
                    watch_list[position] = entry
                else:
                    new_watch_list.append(entry)
                if not enqueue(first, reason=clause):
                    conflict = clause
                    if new_watch_list is not None:
                        new_watch_list.extend(watch_list[position + 1 :])
                    break
            if new_watch_list is not None:
                watches[literal] = new_watch_list
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------ #
    # Conflict analysis
    # ------------------------------------------------------------------ #

    def _bump_activity(self, variable: int) -> None:
        self._activity[variable] += self._activity_increment
        if self._activity[variable] > 1e100:
            # Rescaling preserves the relative order, so the heap stays valid.
            for index in range(1, self._num_vars + 1):
                self._activity[index] *= 1e-100
            self._activity_increment *= 1e-100
        if self._heap_index[variable] >= 0:
            self._heap_sift_up(self._heap_index[variable])

    def _decay_activities(self) -> None:
        self._activity_increment /= self._activity_decay

    # ------------------------------------------------------------------ #
    # Branching-order heap (max activity, ties broken by lower index)
    # ------------------------------------------------------------------ #

    def _heap_prec(self, first: int, second: int) -> bool:
        activity = self._activity
        if activity[first] != activity[second]:
            return activity[first] > activity[second]
        return first < second

    def _heap_swap(self, i: int, j: int) -> None:
        heap = self._heap
        heap[i], heap[j] = heap[j], heap[i]
        self._heap_index[heap[i]] = i
        self._heap_index[heap[j]] = j

    def _heap_sift_up(self, position: int) -> None:
        heap = self._heap
        while position > 0:
            parent = (position - 1) >> 1
            if not self._heap_prec(heap[position], heap[parent]):
                break
            self._heap_swap(position, parent)
            position = parent

    def _heap_sift_down(self, position: int) -> None:
        heap = self._heap
        size = len(heap)
        while True:
            left = 2 * position + 1
            best = position
            if left < size and self._heap_prec(heap[left], heap[best]):
                best = left
            right = left + 1
            if right < size and self._heap_prec(heap[right], heap[best]):
                best = right
            if best == position:
                break
            self._heap_swap(position, best)
            position = best

    def _heap_insert(self, variable: int) -> None:
        if self._heap_index[variable] >= 0:
            return
        self._heap.append(variable)
        self._heap_index[variable] = len(self._heap) - 1
        self._heap_sift_up(len(self._heap) - 1)

    def _heap_pop(self) -> int:
        heap = self._heap
        top = heap[0]
        last = heap.pop()
        self._heap_index[top] = -1
        if heap:
            heap[0] = last
            self._heap_index[last] = 0
            self._heap_sift_down(0)
        return top

    def _analyze(self, conflict: Clause) -> Tuple[List[int], int, int]:
        """First-UIP conflict analysis; returns (clause, backtrack level, LBD).

        The learned clause is minimized by recursive self-subsumption
        (MiniSat-style): a literal whose reason antecedents are all already
        in the clause (or recursively redundant at already-present decision
        levels) contributes nothing and is dropped.  Smaller learned clauses
        propagate earlier and subsume more — the direct mechanism behind the
        lower conflict counts the benchmark floor tracks.

        The LBD (literal block distance — number of distinct decision levels
        in the clause) is computed here, *before* backtracking invalidates
        the level array, and tags the learned clause for tier reduction.
        """
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        literal = 0
        index = len(self._trail) - 1
        clause: Optional[Clause] = conflict
        current_level = self._decision_level()

        while True:
            if clause is None:
                raise SolverError("conflict analysis reached a decision without reason")
            lits = clause.lits
            for clause_literal in lits[1:] if literal != 0 else lits:
                variable = abs(clause_literal)
                if clause_literal == literal:
                    continue
                if not seen[variable] and self._levels[variable] > 0:
                    seen[variable] = True
                    self._bump_activity(variable)
                    if self._levels[variable] >= current_level:
                        counter += 1
                    else:
                        learned.append(clause_literal)
            # Find the next literal to resolve on.
            while True:
                literal = self._trail[index]
                index -= 1
                if seen[abs(literal)]:
                    break
            counter -= 1
            seen[abs(literal)] = False
            if counter == 0:
                break
            clause = self._reasons[abs(literal)]
        learned[0] = -literal

        if self._minimize and len(learned) > 1:
            learned = self._minimize_learned(learned, seen)

        levels = self._levels
        lbd = len({levels[abs(lit)] for lit in learned})

        if len(learned) == 1:
            return learned, 0, lbd
        # Backtrack level: second highest level in the learned clause.
        backtrack_level = 0
        swap_index = 1
        for position in range(1, len(learned)):
            level = levels[abs(learned[position])]
            if level > backtrack_level:
                backtrack_level = level
                swap_index = position
        learned[1], learned[swap_index] = learned[swap_index], learned[1]
        return learned, backtrack_level, lbd

    def _minimize_learned(self, learned: List[int], seen: List[bool]) -> List[int]:
        """Drop recursively redundant literals from a first-UIP clause.

        ``seen`` is the analysis marking: True exactly for the variables of
        ``learned[1:]``.  Redundancy exploration marks further variables;
        marks from failed explorations are undone, successful ones are kept
        (they prove later literals redundant faster).  ``seen`` is local to
        this conflict, so no global cleanup pass is needed.
        """
        levels = self._levels
        abstract_levels = 0
        for lit in learned[1:]:
            abstract_levels |= 1 << (levels[abs(lit)] & 31)
        toclear: List[int] = []
        kept = [learned[0]]
        for lit in learned[1:]:
            if self._reasons[abs(lit)] is None or not self._lit_redundant(
                lit, seen, abstract_levels, toclear
            ):
                kept.append(lit)
        return kept

    def _lit_redundant(
        self, literal: int, seen: List[bool], abstract_levels: int, toclear: List[int]
    ) -> bool:
        levels = self._levels
        reasons = self._reasons
        stack = [literal]
        top = len(toclear)
        while stack:
            reason = reasons[abs(stack.pop())]
            assert reason is not None
            for antecedent in reason.lits[1:]:
                variable = abs(antecedent)
                if seen[variable] or levels[variable] == 0:
                    continue
                if (
                    reasons[variable] is None
                    or not (1 << (levels[variable] & 31)) & abstract_levels
                ):
                    # Reaches a decision/assumption, or a level no clause
                    # literal lives on: not redundant.  Undo this
                    # exploration's marks.
                    for undone in toclear[top:]:
                        seen[undone] = False
                    del toclear[top:]
                    return False
                seen[variable] = True
                stack.append(antecedent)
                toclear.append(variable)
        return True

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_limits[level]
        for literal in reversed(self._trail[limit:]):
            variable = abs(literal)
            self._assigns[variable] = self._UNASSIGNED
            self._reasons[variable] = None
            self._heap_insert(variable)
        del self._trail[limit:]
        del self._trail_limits[level:]
        self._propagation_head = len(self._trail)

    def _learn(self, clause: List[int], lbd: int) -> None:
        self._learned_total += 1
        if len(clause) == 1:
            self._enqueue(clause[0], reason=None)
            return
        handle = self._attach_new(clause, learned=True, lbd=lbd)
        self._enqueue(clause[0], reason=handle)

    # ------------------------------------------------------------------ #
    # Learned-tier reduction
    # ------------------------------------------------------------------ #

    def _reduce_limit(self) -> int:
        return self._reduce_base + self._reductions * self._reduce_increment

    def reduce_learned(self) -> int:
        """Delete the worst half of the deletable learned clauses.

        Kept unconditionally: *glue* clauses (LBD <= ``GLUE_LBD``), binary
        clauses, and *locked* clauses (currently the reason of an assigned
        variable — identified through the stable handle itself, so no index
        bookkeeping can go stale).  The deletable rest is ranked by
        (LBD, size, age) and the worse half is marked deleted; watch lists
        purge the marks lazily.  Returns the number of clauses deleted.
        """
        reasons = self._reasons
        keep: List[Clause] = []
        deletable: List[Clause] = []
        for clause in self._learned:
            if clause.deleted:
                continue
            lits = clause.lits
            locked = reasons[abs(lits[0])] is clause
            if locked or clause.lbd <= GLUE_LBD or len(lits) <= 2:
                keep.append(clause)
            else:
                deletable.append(clause)
        # Stable sort: among equal (lbd, size) the *older* clause sorts
        # first and survives — deterministic without tracking timestamps.
        deletable.sort(key=lambda clause: (clause.lbd, len(clause.lits)))
        cut = len(deletable) // 2
        for clause in deletable[cut:]:
            clause.deleted = True
        deleted = len(deletable) - cut
        self._deleted_total += deleted
        self._learned = keep + deletable[:cut]
        self._reductions += 1
        return deleted

    # ------------------------------------------------------------------ #
    # Branching
    # ------------------------------------------------------------------ #

    def _pick_branch_variable(self) -> Optional[int]:
        # Assigned variables are discarded lazily; _backtrack re-inserts them.
        while self._heap:
            variable = self._heap_pop()
            if self._assigns[variable] == self._UNASSIGNED and not self._eliminated[variable]:
                return variable
        return None

    # ------------------------------------------------------------------ #
    # Main solve loop
    # ------------------------------------------------------------------ #

    def solve(
        self,
        assumptions: Optional[Iterable[int]] = None,
        conflict_limit: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> SatResult:
        """Solve the current formula under optional assumptions.

        Assumptions are applied as pseudo-decisions below every real decision
        level and are fully retracted before the call returns: the clause
        database (including clauses learned during this call), the VSIDS
        activities and the saved phases all persist, so subsequent calls —
        with different assumptions or none — resume from the accumulated
        state instead of starting over.

        ``deadline_s`` is an absolute ``time.monotonic()`` deadline, polled
        at the conflict-loop seam alongside ``conflict_limit`` (every
        :data:`DEADLINE_POLL_CONFLICTS` conflicts); running past it raises
        :class:`CheckDeadlineExceeded` with the solver backtracked to level
        0 and fully reusable.
        """
        assumptions = list(assumptions or [])
        for literal in assumptions:
            if literal == 0:
                raise SolverError("literal 0 is not allowed")
            self.ensure_vars(abs(literal))
            if self._eliminated[abs(literal)]:
                raise SolverError(
                    f"assumption on variable {abs(literal)}, which inprocessing "
                    f"eliminated; re-encode it as a fresh variable instead"
                )
        self._solve_calls += 1
        self._call_base = (
            self._conflicts,
            self._decisions,
            self._propagations,
            self._restarts,
            self._learned_total,
            self._deleted_total,
        )
        # Progress heartbeats (repro.obs.progress): resolved once per call,
        # so with no sink installed the conflict loop pays nothing.
        heartbeat = active_heartbeat()
        # Fault seam (repro.exec.faults, imported lazily to keep the sat
        # layer free of exec imports at module load): a planned solver_stall
        # sleeps this call past its deadline so the check_timeout_s path is
        # testable without crafting a genuinely hard formula.  Without a
        # deadline the stall is bounded so a stray plan cannot hang a run.
        from repro.exec.faults import fire as _fire_fault

        if _fire_fault("solver_stall"):
            if deadline_s is not None:
                time.sleep(max(0.0, min(deadline_s - time.monotonic(), 5.0)) + 0.01)
            else:
                time.sleep(0.25)
        if deadline_s is not None and time.monotonic() >= deadline_s:
            raise CheckDeadlineExceeded("check deadline exceeded")
        if self._unsat:
            return self._result(False)
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._unsat = True
            return self._result(False)

        restart_index = 0
        restart_budget = 64 * _luby(restart_index)
        conflicts_at_restart = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self._conflicts += 1
                conflicts_at_restart += 1
                if (
                    heartbeat is not None
                    and (self._conflicts - self._call_base[0]) % heartbeat.interval == 0
                ):
                    heartbeat.emit(
                        conflicts=self._conflicts - self._call_base[0],
                        restarts=self._restarts - self._call_base[3],
                        learned_clauses=self._learned_total - self._call_base[4],
                        decision_level=self._decision_level(),
                    )
                if conflict_limit is not None and self._conflicts - self._call_base[0] >= conflict_limit:
                    # Leave the persistent solver in a reusable state.
                    self._backtrack(0)
                    raise ConflictLimitExceeded("conflict limit exceeded")
                if (
                    deadline_s is not None
                    and (self._conflicts - self._call_base[0]) % DEADLINE_POLL_CONFLICTS == 0
                    and time.monotonic() >= deadline_s
                ):
                    self._backtrack(0)
                    raise CheckDeadlineExceeded("check deadline exceeded")
                if self._decision_level() <= len(assumptions):
                    # Conflict under assumptions only: UNSAT under assumptions.
                    self._backtrack(0)
                    return self._result(False)
                learned, backtrack_level, lbd = self._analyze(conflict)
                self._backtrack(max(backtrack_level, len(assumptions)))
                if backtrack_level < len(assumptions):
                    # The learned clause forces a flip below the assumption levels.
                    self._backtrack(0)
                    if len(learned) == 1:
                        self._learned_total += 1
                        self.add_clause(learned)
                        if self._unsat:
                            return self._result(False)
                        continue
                    self._learned_total += 1
                    self._attach_new(learned, learned=True, lbd=lbd)
                    continue
                self._learn(learned, lbd)
                self._decay_activities()
                if len(self._learned) >= self._reduce_limit():
                    self.reduce_learned()
                continue

            if conflicts_at_restart >= restart_budget:
                restart_index += 1
                restart_budget = 64 * _luby(restart_index)
                conflicts_at_restart = 0
                self._restarts += 1
                self._backtrack(len(assumptions))

            # Apply pending assumptions as pseudo-decisions.
            level = self._decision_level()
            if level < len(assumptions):
                literal = assumptions[level]
                value = self._literal_value(literal)
                if value == 0:
                    self._backtrack(0)
                    return self._result(False)
                self._trail_limits.append(len(self._trail))
                if value == self._UNASSIGNED:
                    self._enqueue(literal, reason=None)
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                result = self._result(True)
                self._backtrack(0)
                return result
            self._decisions += 1
            self._trail_limits.append(len(self._trail))
            literal = variable if self._phases[variable] else -variable
            self._enqueue(literal, reason=None)

    def _result(self, satisfiable: bool) -> SatResult:
        model: Dict[int, bool] = {}
        if satisfiable:
            for variable in range(1, self._num_vars + 1):
                value = self._assigns[variable]
                model[variable] = (value == 1) if value != self._UNASSIGNED else self._phases[variable]
            self._reconstruct_model(model)
        base = self._call_base
        return SatResult(
            satisfiable=satisfiable,
            model=model,
            conflicts=self._conflicts - base[0],
            decisions=self._decisions - base[1],
            propagations=self._propagations - base[2],
            restarts=self._restarts - base[3],
            learned_clauses=self._learned_total - base[4],
            deleted_clauses=self._deleted_total - base[5],
        )

    def _reconstruct_model(self, model: Dict[int, bool]) -> None:
        """Extend a model over eliminated variables (solution restoration).

        Processed in reverse elimination order: each variable's saved
        occurrence clauses mention only variables that were still live when
        it was eliminated, so every other literal already has a final model
        value.  If some saved clause is satisfied by no other literal, the
        eliminated variable is set to satisfy it; the resolvents added at
        elimination time guarantee no two saved clauses pull in opposite
        directions.
        """
        for variable, clauses in reversed(self._elim_stack):
            value = self._phases[variable]
            for lits in clauses:
                satisfied = False
                own_literal = 0
                for literal in lits:
                    other = abs(literal)
                    if other == variable:
                        own_literal = literal
                        if value == (literal > 0):
                            satisfied = True
                            break
                    elif model.get(other, False) == (literal > 0):
                        satisfied = True
                        break
                if not satisfied and own_literal != 0:
                    value = own_literal > 0
            model[variable] = value

    # ------------------------------------------------------------------ #
    # Inprocessing: vivification + bounded variable elimination (level 0)
    # ------------------------------------------------------------------ #

    def inprocess(
        self,
        candidate_vars: Optional[Iterable[int]] = None,
        max_vivify: int = 100,
        max_occurrences: int = 10,
    ) -> Dict[str, object]:
        """Simplify the formula between solve calls, at decision level 0.

        Two bounded passes:

        * **clause vivification** — up to ``max_vivify`` original clauses
          (round-robin across calls) are re-derived by assuming their
          literals false one by one under unit propagation; a conflict or an
          implied literal proves a shorter clause, which replaces the
          original.  Clauses satisfied at level 0 are removed outright.
        * **bounded variable elimination** — each unassigned variable in
          ``candidate_vars`` whose occurrence count is at most
          ``max_occurrences`` per polarity is resolved out when the
          non-tautological resolvents do not outnumber the clauses removed.
          Eliminated variables must never be referenced again (``solve``
          and ``add_clause`` enforce this); callers that cache CNF encodings
          must invalidate the mappings of eliminated variables.

        Returns a stats dict; ``"eliminated"`` lists the eliminated
        variables so the caller can invalidate its encodings.
        """
        stats: Dict[str, object] = {
            "vivify_checked": 0,
            "vivified": 0,
            "removed_clauses": 0,
            "eliminated": [],
            "resolvents": 0,
        }
        if self._unsat:
            return stats
        if self._decision_level() != 0:
            raise SolverError("inprocessing requires decision level 0")
        if self._propagate() is not None:
            self._unsat = True
            return stats
        self._vivify_round(max_vivify, stats)
        if not self._unsat and candidate_vars is not None:
            self._eliminate_round(candidate_vars, max_occurrences, stats)
        # Compact the original tier: drop clauses deleted by either pass.
        self._clauses = [clause for clause in self._clauses if not clause.deleted]
        return stats

    def _vivify_round(self, max_vivify: int, stats: Dict[str, object]) -> None:
        total = len(self._clauses)
        if total == 0:
            return
        checked = 0
        position = self._vivify_head % total
        while checked < min(max_vivify, total):
            clause = self._clauses[position % total]
            position += 1
            checked += 1
            if clause.deleted:
                continue
            if not self._vivify_clause(clause, stats):
                break  # formula became UNSAT
            if self._unsat:
                break
        self._vivify_head = position % max(1, len(self._clauses))
        stats["vivify_checked"] = int(stats["vivify_checked"]) + checked

    def _vivify_clause(self, clause: Clause, stats: Dict[str, object]) -> bool:
        """Shorten one clause by bounded unit propagation; False on UNSAT."""
        literal_value = self._literal_value
        # Level-0 simplification first: satisfied clauses go away entirely,
        # falsified literals are dropped before any probing.
        lits = [lit for lit in clause.lits if literal_value(lit) != 0]
        if any(literal_value(lit) == 1 for lit in lits):
            clause.deleted = True
            self._detach(clause)
            stats["removed_clauses"] = int(stats["removed_clauses"]) + 1
            return True
        # Detach while probing: a clause must never participate in deriving
        # its own replacement (that would be circular and unsound).
        self._detach(clause)
        self._trail_limits.append(len(self._trail))
        new_lits: List[int] = []
        for lit in lits:
            value = literal_value(lit)
            if value == 1:
                # The negated prefix implies this literal: the clause
                # shortens to prefix + [lit].
                new_lits.append(lit)
                break
            if value == 0:
                # The negated prefix implies NOT lit: lit is redundant.
                continue
            new_lits.append(lit)
            self._enqueue(-lit, reason=None)
            if self._propagate() is not None:
                # Negating the prefix is contradictory: the prefix itself
                # is an implied clause.
                break
        self._backtrack(0)
        if len(new_lits) < len(clause.lits):
            stats["vivified"] = int(stats["vivified"]) + 1
        if not new_lits:
            self._unsat = True
            return False
        if len(new_lits) == 1:
            clause.deleted = True
            stats["removed_clauses"] = int(stats["removed_clauses"]) + 1
            self._enqueue(new_lits[0], reason=None)
            if self._propagate() is not None:
                self._unsat = True
                return False
            return True
        clause.lits = new_lits
        self._watch(new_lits[0], clause, new_lits[1])
        self._watch(new_lits[1], clause, new_lits[0])
        return True

    def _eliminate_round(
        self,
        candidate_vars: Iterable[int],
        max_occurrences: int,
        stats: Dict[str, object],
    ) -> None:
        candidates = sorted(
            {
                variable
                for variable in candidate_vars
                if 1 <= variable <= self._num_vars and not self._eliminated[variable]
            }
        )
        if not candidates:
            return
        candidate_set = set(candidates)
        occurrences: Dict[int, List[Clause]] = {variable: [] for variable in candidates}
        for clause in self._clauses:
            if clause.deleted:
                continue
            for literal in clause.lits:
                variable = abs(literal)
                if variable in candidate_set:
                    occurrences[variable].append(clause)
        eliminated: List[int] = list(stats["eliminated"])  # type: ignore[arg-type]
        for variable in candidates:
            if self._unsat:
                break
            if self._assigns[variable] != self._UNASSIGNED:
                continue
            live = [clause for clause in occurrences[variable] if not clause.deleted]
            positive = [clause for clause in live if variable in clause.lits]
            negative = [clause for clause in live if -variable in clause.lits]
            if len(positive) > max_occurrences or len(negative) > max_occurrences:
                continue
            resolvents: List[List[int]] = []
            growth_bound = len(positive) + len(negative)
            too_many = False
            for pos_clause in positive:
                for neg_clause in negative:
                    resolvent = self._resolve(pos_clause.lits, neg_clause.lits, variable)
                    if resolvent is None:
                        continue  # tautology
                    resolvents.append(resolvent)
                    if len(resolvents) > growth_bound:
                        too_many = True
                        break
                if too_many:
                    break
            if too_many:
                continue
            # Commit: remember the removed clauses for model reconstruction,
            # delete them, add the resolvents, and retire the variable.
            saved = [list(clause.lits) for clause in positive + negative]
            for clause in positive + negative:
                clause.deleted = True
                self._detach(clause)
            stats["removed_clauses"] = int(stats["removed_clauses"]) + len(saved)
            attached_from = len(self._clauses)
            for resolvent in resolvents:
                self.add_clause(resolvent)
                if self._unsat:
                    break
            stats["resolvents"] = int(stats["resolvents"]) + len(resolvents)
            for clause in self._clauses[attached_from:]:
                # Keep occurrence lists complete for later candidates: a
                # missed occurrence would make a later elimination unsound.
                if clause.deleted:
                    continue
                for literal in clause.lits:
                    other = abs(literal)
                    if other in candidate_set and other != variable:
                        occurrences[other].append(clause)
            self._elim_stack.append((variable, saved))
            self._eliminated[variable] = True
            eliminated.append(variable)
            if not self._unsat and self._propagate() is not None:
                self._unsat = True
        # Learned clauses mentioning an eliminated variable are no longer
        # implied by the reduced formula; drop them (one pass, lazily purged
        # from watch lists like every other deletion).
        if eliminated:
            doomed = set(eliminated) - set(stats["eliminated"])  # type: ignore[arg-type]
            survivors: List[Clause] = []
            for clause in self._learned:
                if clause.deleted:
                    continue
                if any(abs(literal) in doomed for literal in clause.lits):
                    clause.deleted = True
                else:
                    survivors.append(clause)
            self._learned = survivors
        stats["eliminated"] = eliminated

    @staticmethod
    def _resolve(
        positive_lits: List[int], negative_lits: List[int], variable: int
    ) -> Optional[List[int]]:
        """The resolvent on ``variable``, or None when it is a tautology."""
        merged = {lit for lit in positive_lits if lit != variable}
        for lit in negative_lits:
            if lit == -variable:
                continue
            if -lit in merged:
                return None
            merged.add(lit)
        return sorted(merged, key=abs)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_vars(self) -> int:
        return self._num_vars

    def is_eliminated(self, variable: int) -> bool:
        """True when inprocessing eliminated the variable (see :meth:`inprocess`)."""
        return 1 <= variable <= self._num_vars and self._eliminated[variable]

    @property
    def num_clauses(self) -> int:
        """Size of the working clause database (originals + live learned)."""
        return len(self._clauses) + len(self._learned)

    @property
    def live_learned_clauses(self) -> int:
        """Learned clauses currently alive (the reduction-bounded tier)."""
        return len(self._learned)

    @property
    def solve_calls(self) -> int:
        return self._solve_calls

    @property
    def total_conflicts(self) -> int:
        return self._conflicts

    @property
    def total_decisions(self) -> int:
        return self._decisions

    @property
    def total_propagations(self) -> int:
        return self._propagations

    @property
    def total_restarts(self) -> int:
        return self._restarts

    @property
    def total_learned_clauses(self) -> int:
        return self._learned_total

    @property
    def total_deleted_clauses(self) -> int:
        return self._deleted_total
