"""A CDCL SAT solver in pure Python.

The solver implements the standard modern architecture: two-watched-literal
propagation, first-UIP conflict analysis with clause learning, VSIDS-style
activity-based branching with phase saving, and Luby restarts.  Literals use
the DIMACS convention (non-zero signed integers, variable indices start at 1).

The property checker only hands the solver comparatively small formulas —
structural hashing discharges identical logic cones before CNF generation —
so a clean Python implementation is entirely sufficient for the workloads of
the paper's evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.errors import SolverError


@dataclass
class SatResult:
    """Outcome of a solver call.

    The ``conflicts``/``decisions``/``propagations`` counters cover *this*
    call only — a persistent solver accumulates totals across calls, exposed
    via :attr:`SatSolver.total_conflicts` and friends.
    """

    satisfiable: bool
    model: Dict[int, bool] = field(default_factory=dict)
    conflicts: int = 0
    decisions: int = 0
    propagations: int = 0

    def value(self, variable: int) -> bool:
        return self.model.get(variable, False)


def _luby(index: int) -> int:
    """Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...), 0-based index."""
    size, exponent = 1, 0
    while size < index + 1:
        exponent += 1
        size = 2 * size + 1
    while size - 1 != index:
        size = (size - 1) // 2
        exponent -= 1
        index %= size
    return 1 << exponent


class SatSolver:
    """CDCL solver with incremental clause addition and assumption support."""

    _UNASSIGNED = -1

    def __init__(self) -> None:
        self._num_vars = 0
        self._clauses: List[List[int]] = []
        self._watches: Dict[int, List[int]] = {}
        self._assigns: List[int] = [self._UNASSIGNED]  # index 0 unused
        self._levels: List[int] = [0]
        self._reasons: List[Optional[int]] = [None]
        self._phases: List[bool] = [False]
        self._activity: List[float] = [0.0]
        self._activity_increment = 1.0
        self._activity_decay = 0.95
        # Activity-ordered max-heap of branching candidates.  With one solver
        # persisting across every check of a run, a linear scan over all
        # variables ever created would make each decision O(total run vars).
        self._heap: List[int] = []
        self._heap_index: List[int] = [-1]
        self._trail: List[int] = []
        self._trail_limits: List[int] = []
        self._propagation_head = 0
        self._conflicts = 0
        self._decisions = 0
        self._propagations = 0
        self._solve_calls = 0
        self._call_base = (0, 0, 0)  # counter snapshot at solve() entry
        self._unsat = False

    # ------------------------------------------------------------------ #
    # Problem construction
    # ------------------------------------------------------------------ #

    def new_var(self) -> int:
        self._num_vars += 1
        self._assigns.append(self._UNASSIGNED)
        self._levels.append(0)
        self._reasons.append(None)
        self._phases.append(False)
        self._activity.append(0.0)
        self._heap_index.append(-1)
        self._heap_insert(self._num_vars)
        return self._num_vars

    def ensure_vars(self, count: int) -> None:
        while self._num_vars < count:
            self.new_var()

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = sorted(set(literals), key=abs)
        if not clause:
            self._unsat = True
            return
        for literal in clause:
            if literal == 0:
                raise SolverError("literal 0 is not allowed")
            self.ensure_vars(abs(literal))
        # Tautology check.
        for first, second in zip(clause, clause[1:]):
            if first == -second:
                return
        if self._decision_level() == 0:
            # The persistent solver accumulates permanent level-0 assignments
            # (unit clauses, learned units) across solve() calls.  Clauses
            # added later must be simplified against them: a watch placed on
            # an already-falsified literal would never fire again, letting
            # the solver return models that violate the new clause.
            if any(self._literal_value(literal) == 1 for literal in clause):
                return
            clause = [literal for literal in clause if self._literal_value(literal) != 0]
            if not clause:
                self._unsat = True
                return
        if len(clause) == 1:
            literal = clause[0]
            value = self._literal_value(literal)
            if value == 0:
                self._unsat = True
            elif value == self._UNASSIGNED:
                if self._decision_level() != 0:
                    raise SolverError("unit clauses must be added at decision level 0")
                self._enqueue(literal, reason=None)
            return
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watch(clause[0], index)
        self._watch(clause[1], index)

    def _watch(self, literal: int, clause_index: int) -> None:
        self._watches.setdefault(-literal, []).append(clause_index)

    # ------------------------------------------------------------------ #
    # Assignment helpers
    # ------------------------------------------------------------------ #

    def _decision_level(self) -> int:
        return len(self._trail_limits)

    def _literal_value(self, literal: int) -> int:
        assigned = self._assigns[abs(literal)]
        if assigned == self._UNASSIGNED:
            return self._UNASSIGNED
        value = assigned
        return value if literal > 0 else 1 - value

    def _enqueue(self, literal: int, reason: Optional[int]) -> bool:
        value = self._literal_value(literal)
        if value != self._UNASSIGNED:
            return value == 1
        variable = abs(literal)
        self._assigns[variable] = 1 if literal > 0 else 0
        self._levels[variable] = self._decision_level()
        self._reasons[variable] = reason
        self._phases[variable] = literal > 0
        self._trail.append(literal)
        return True

    # ------------------------------------------------------------------ #
    # Boolean constraint propagation
    # ------------------------------------------------------------------ #

    def _propagate(self) -> Optional[int]:
        """Propagate pending assignments; return a conflicting clause index or None.

        This is the solver's innermost loop, so attribute lookups are
        hoisted into locals and the per-literal watch list is rebuilt
        *lazily*: as long as no watch moves to a replacement literal, the
        existing list object is kept as-is instead of being copied element
        by element on every propagation.
        """
        watches = self._watches
        clauses = self._clauses
        trail = self._trail
        literal_value = self._literal_value
        enqueue = self._enqueue
        while self._propagation_head < len(trail):
            literal = trail[self._propagation_head]
            self._propagation_head += 1
            self._propagations += 1
            watch_list = watches.get(literal)
            if not watch_list:
                continue
            # Created on the first moved watch; None means "list unchanged".
            new_watch_list: Optional[List[int]] = None
            conflict: Optional[int] = None
            false_literal = -literal
            for position, clause_index in enumerate(watch_list):
                clause = clauses[clause_index]
                # Ensure the false literal is at position 1.
                if clause[0] == false_literal:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if literal_value(first) == 1:
                    if new_watch_list is not None:
                        new_watch_list.append(clause_index)
                    continue
                # Look for a replacement watch.
                replaced = False
                for k in range(2, len(clause)):
                    if literal_value(clause[k]) != 0:
                        clause[1], clause[k] = clause[k], clause[1]
                        watches.setdefault(-clause[1], []).append(clause_index)
                        replaced = True
                        break
                if replaced:
                    if new_watch_list is None:
                        new_watch_list = watch_list[:position]
                    continue
                if new_watch_list is not None:
                    new_watch_list.append(clause_index)
                if not enqueue(first, reason=clause_index):
                    conflict = clause_index
                    if new_watch_list is not None:
                        new_watch_list.extend(watch_list[position + 1 :])
                    break
            if new_watch_list is not None:
                watches[literal] = new_watch_list
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------ #
    # Conflict analysis
    # ------------------------------------------------------------------ #

    def _bump_activity(self, variable: int) -> None:
        self._activity[variable] += self._activity_increment
        if self._activity[variable] > 1e100:
            # Rescaling preserves the relative order, so the heap stays valid.
            for index in range(1, self._num_vars + 1):
                self._activity[index] *= 1e-100
            self._activity_increment *= 1e-100
        if self._heap_index[variable] >= 0:
            self._heap_sift_up(self._heap_index[variable])

    def _decay_activities(self) -> None:
        self._activity_increment /= self._activity_decay

    # ------------------------------------------------------------------ #
    # Branching-order heap (max activity, ties broken by lower index)
    # ------------------------------------------------------------------ #

    def _heap_prec(self, first: int, second: int) -> bool:
        activity = self._activity
        if activity[first] != activity[second]:
            return activity[first] > activity[second]
        return first < second

    def _heap_swap(self, i: int, j: int) -> None:
        heap = self._heap
        heap[i], heap[j] = heap[j], heap[i]
        self._heap_index[heap[i]] = i
        self._heap_index[heap[j]] = j

    def _heap_sift_up(self, position: int) -> None:
        heap = self._heap
        while position > 0:
            parent = (position - 1) >> 1
            if not self._heap_prec(heap[position], heap[parent]):
                break
            self._heap_swap(position, parent)
            position = parent

    def _heap_sift_down(self, position: int) -> None:
        heap = self._heap
        size = len(heap)
        while True:
            left = 2 * position + 1
            best = position
            if left < size and self._heap_prec(heap[left], heap[best]):
                best = left
            right = left + 1
            if right < size and self._heap_prec(heap[right], heap[best]):
                best = right
            if best == position:
                break
            self._heap_swap(position, best)
            position = best

    def _heap_insert(self, variable: int) -> None:
        if self._heap_index[variable] >= 0:
            return
        self._heap.append(variable)
        self._heap_index[variable] = len(self._heap) - 1
        self._heap_sift_up(len(self._heap) - 1)

    def _heap_pop(self) -> int:
        heap = self._heap
        top = heap[0]
        last = heap.pop()
        self._heap_index[top] = -1
        if heap:
            heap[0] = last
            self._heap_index[last] = 0
            self._heap_sift_down(0)
        return top

    def _analyze(self, conflict_index: int) -> tuple[List[int], int]:
        learned: List[int] = [0]  # placeholder for the asserting literal
        seen = [False] * (self._num_vars + 1)
        counter = 0
        literal = 0
        index = len(self._trail) - 1
        clause_index: Optional[int] = conflict_index
        current_level = self._decision_level()

        while True:
            if clause_index is None:
                raise SolverError("conflict analysis reached a decision without reason")
            clause = self._clauses[clause_index]
            start = 1 if literal != 0 else 0
            for clause_literal in clause[start:] if literal != 0 else clause:
                variable = abs(clause_literal)
                if clause_literal == literal:
                    continue
                if not seen[variable] and self._levels[variable] > 0:
                    seen[variable] = True
                    self._bump_activity(variable)
                    if self._levels[variable] >= current_level:
                        counter += 1
                    else:
                        learned.append(clause_literal)
            # Find the next literal to resolve on.
            while True:
                literal = self._trail[index]
                index -= 1
                if seen[abs(literal)]:
                    break
            counter -= 1
            seen[abs(literal)] = False
            if counter == 0:
                break
            clause_index = self._reasons[abs(literal)]
        learned[0] = -literal

        if len(learned) == 1:
            return learned, 0
        # Backtrack level: second highest level in the learned clause.
        backtrack_level = 0
        swap_index = 1
        for position in range(1, len(learned)):
            level = self._levels[abs(learned[position])]
            if level > backtrack_level:
                backtrack_level = level
                swap_index = position
        learned[1], learned[swap_index] = learned[swap_index], learned[1]
        return learned, backtrack_level

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_limits[level]
        for literal in reversed(self._trail[limit:]):
            variable = abs(literal)
            self._assigns[variable] = self._UNASSIGNED
            self._reasons[variable] = None
            self._heap_insert(variable)
        del self._trail[limit:]
        del self._trail_limits[level:]
        self._propagation_head = len(self._trail)

    def _learn(self, clause: List[int]) -> None:
        if len(clause) == 1:
            self._enqueue(clause[0], reason=None)
            return
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watch(clause[0], index)
        self._watch(clause[1], index)
        self._enqueue(clause[0], reason=index)

    # ------------------------------------------------------------------ #
    # Branching
    # ------------------------------------------------------------------ #

    def _pick_branch_variable(self) -> Optional[int]:
        # Assigned variables are discarded lazily; _backtrack re-inserts them.
        while self._heap:
            variable = self._heap_pop()
            if self._assigns[variable] == self._UNASSIGNED:
                return variable
        return None

    # ------------------------------------------------------------------ #
    # Main solve loop
    # ------------------------------------------------------------------ #

    def solve(
        self,
        assumptions: Optional[Iterable[int]] = None,
        conflict_limit: Optional[int] = None,
    ) -> SatResult:
        """Solve the current formula under optional assumptions.

        Assumptions are applied as pseudo-decisions below every real decision
        level and are fully retracted before the call returns: the clause
        database (including clauses learned during this call), the VSIDS
        activities and the saved phases all persist, so subsequent calls —
        with different assumptions or none — resume from the accumulated
        state instead of starting over.
        """
        assumptions = list(assumptions or [])
        self._solve_calls += 1
        self._call_base = (self._conflicts, self._decisions, self._propagations)
        if self._unsat:
            return self._result(False)
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            self._unsat = True
            return self._result(False)

        restart_index = 0
        restart_budget = 64 * _luby(restart_index)
        conflicts_at_restart = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self._conflicts += 1
                conflicts_at_restart += 1
                if conflict_limit is not None and self._conflicts - self._call_base[0] >= conflict_limit:
                    # Leave the persistent solver in a reusable state.
                    self._backtrack(0)
                    raise SolverError("conflict limit exceeded")
                if self._decision_level() <= len(assumptions):
                    # Conflict under assumptions only: UNSAT under assumptions.
                    self._backtrack(0)
                    return self._result(False)
                learned, backtrack_level = self._analyze(conflict)
                self._backtrack(max(backtrack_level, len(assumptions)))
                if backtrack_level < len(assumptions):
                    # The learned clause forces a flip below the assumption levels.
                    self._backtrack(0)
                    if len(learned) == 1:
                        self.add_clause(learned)
                        if self._unsat:
                            return self._result(False)
                        continue
                    index = len(self._clauses)
                    self._clauses.append(learned)
                    self._watch(learned[0], index)
                    self._watch(learned[1], index)
                    continue
                self._learn(learned)
                self._decay_activities()
                continue

            if conflicts_at_restart >= restart_budget:
                restart_index += 1
                restart_budget = 64 * _luby(restart_index)
                conflicts_at_restart = 0
                self._backtrack(len(assumptions))

            # Apply pending assumptions as pseudo-decisions.
            level = self._decision_level()
            if level < len(assumptions):
                literal = assumptions[level]
                value = self._literal_value(literal)
                if value == 0:
                    self._backtrack(0)
                    return self._result(False)
                self._trail_limits.append(len(self._trail))
                if value == self._UNASSIGNED:
                    self._enqueue(literal, reason=None)
                continue

            variable = self._pick_branch_variable()
            if variable is None:
                result = self._result(True)
                self._backtrack(0)
                return result
            self._decisions += 1
            self._trail_limits.append(len(self._trail))
            literal = variable if self._phases[variable] else -variable
            self._enqueue(literal, reason=None)

    def _result(self, satisfiable: bool) -> SatResult:
        model: Dict[int, bool] = {}
        if satisfiable:
            for variable in range(1, self._num_vars + 1):
                value = self._assigns[variable]
                model[variable] = (value == 1) if value != self._UNASSIGNED else self._phases[variable]
        conflicts_base, decisions_base, propagations_base = self._call_base
        return SatResult(
            satisfiable=satisfiable,
            model=model,
            conflicts=self._conflicts - conflicts_base,
            decisions=self._decisions - decisions_base,
            propagations=self._propagations - propagations_base,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def num_vars(self) -> int:
        return self._num_vars

    @property
    def num_clauses(self) -> int:
        return len(self._clauses)

    @property
    def solve_calls(self) -> int:
        return self._solve_calls

    @property
    def total_conflicts(self) -> int:
        return self._conflicts

    @property
    def total_decisions(self) -> int:
        return self._decisions

    @property
    def total_propagations(self) -> int:
        return self._propagations
