"""Sequential trojan benchmarks: trojans the combinational flow *misses*.

The paper's combinational 2-safety flow compares a design against itself
over a symbolic starting state, so any output dependence on prior state
shows up — *unless a verification engineer waives that dependence as
legitimate*.  Waivers are trust decisions, and these benchmarks model the
false-negative that a wrong one creates: each trojan's trigger state is a
small input-driven counter that masquerades as a plausible piece of control
logic (a line-break detector on the UART, an operation counter on AES), and
the benchmark's recommended waivers include it — exactly what an engineer
who bought the masquerade would do.  With the trigger waived, every
combinational property proves (the corrupted output is corrupted
*identically* in both instances), the trigger register itself is covered by
the fanout partition (it observes a primary input), and the verdict is
SECURE.

The sequential mode (``--mode sequential``) closes the gap from the other
side: against a golden model and a concrete reset state, waivers play no
role, and the SAT solver finds the input sequence that drives the counter
to its threshold — each benchmark diverges at exactly its trigger depth, so
a ``--depth`` at or beyond the threshold detects it and a smaller bound
provably cannot.

Triggers saturate at their threshold (the payload stays active), keeping
the divergence persistent once reached — the classic time-bomb shape.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.trusthub.aes_core import aes_library_verilog, aes_top_verilog
from repro.trusthub.uart_core import uart_library_verilog, uart_top_verilog


@dataclass(frozen=True)
class SeqTrojanSpec:
    """One sequential (counter time-bomb / cycle-gated) benchmark."""

    name: str
    family_core: str  # "RS232" or "AES" — which clean core it wraps
    payload_label: str
    trigger_label: str
    threshold: int  # trigger depth in cycles == the minimal detecting bound
    trojan_registers: Tuple[str, ...]  # state the (wrong) waivers disqualify
    description: str = ""


def top_module_name(spec: SeqTrojanSpec) -> str:
    return spec.name.lower().replace("-", "_")


def _uart_timebomb_verilog(spec: SeqTrojanSpec, payload: str) -> str:
    """UART wrapper: an rxd-driven counter arms after ``threshold`` cycles.

    The counter increments while the line is held low — structurally
    indistinguishable from a break-condition detector, which is the cover
    story behind its recommended waiver.  Because it observes ``rxd``, the
    fanout partition covers it (no coverage-check alarm), and because it is
    waived, every combinational property proves.
    """
    module_name = top_module_name(spec)
    width = max(4, spec.threshold.bit_length() + 1)
    limit = f"{width}'d{spec.threshold}"
    lines = [
        f"module {module_name}(",
        "  input clk,",
        "  input rst,",
        "  input [7:0] tx_data,",
        "  input tx_send,",
        "  output txd,",
        "  output tx_busy,",
        "  input rxd,",
        "  output [7:0] rx_data,",
        "  output rx_valid",
        ");",
        "  wire core_txd;",
        "  wire [7:0] core_rx_data;",
        "  wire core_rx_valid;",
        "  rs232 u_core (.clk(clk), .rst(rst), .tx_data(tx_data), .tx_send(tx_send),"
        " .txd(core_txd), .tx_busy(tx_busy), .rxd(rxd), .rx_data(core_rx_data),"
        " .rx_valid(core_rx_valid));",
        "  // ---- hardware trojan: trigger (masquerades as break detection) ----",
        f"  reg [{width - 1}:0] tj_count;",
        "  always @(posedge clk) begin",
        f"    if (!rxd && tj_count != {limit})",
        f"      tj_count <= tj_count + {width}'d1;",
        "  end",
        f"  wire tj_trigger = (tj_count == {limit});",
        "  // ---- hardware trojan: payload ----",
    ]
    lines.extend(payload.splitlines())
    lines.append("endmodule")
    return "\n".join(lines)


def _aes_gated_leaker_verilog(spec: SeqTrojanSpec) -> str:
    """AES wrapper: key bits leak onto the ciphertext once the operation
    counter saturates.

    The counter increments whenever a new plaintext block is presented
    (``state`` changes), mimicking a legitimate throughput/operation
    counter; gating the leak behind it keeps the payload dormant for every
    bounded campaign shorter than the threshold.
    """
    module_name = top_module_name(spec)
    width = max(3, spec.threshold.bit_length() + 1)
    limit = f"{width}'d{spec.threshold}"
    lines = [
        f"module {module_name}(",
        "  input clk,",
        "  input  [127:0] state,",
        "  input  [127:0] key,",
        "  output [127:0] out",
        ");",
        "  wire [127:0] core_out;",
        "  aes128 u_core (.clk(clk), .state(state), .key(key), .out(core_out));",
        "  // ---- hardware trojan: trigger (masquerades as an op counter) ----",
        "  reg [127:0] tj_prev_state;",
        f"  reg [{width - 1}:0] tj_op_count;",
        "  always @(posedge clk) begin",
        "    tj_prev_state <= state;",
        f"    if (state != tj_prev_state && tj_op_count != {limit})",
        f"      tj_op_count <= tj_op_count + {width}'d1;",
        "  end",
        f"  wire tj_trigger = (tj_op_count == {limit});",
        "  // ---- hardware trojan: payload (key byte onto the ciphertext) ----",
        "  assign out = tj_trigger ? (core_out ^ {120'h0, key[7:0]}) : core_out;",
        "endmodule",
    ]
    return "\n".join(lines)


def trojan_top_verilog(spec: SeqTrojanSpec) -> str:
    """Verilog of one sequential benchmark's Trojan wrapper."""
    if spec.family_core == "AES":
        return _aes_gated_leaker_verilog(spec)
    if spec.name.endswith("T3100"):
        # Transmit-side bomb: once armed, the serial line is forced idle —
        # frames silently never leave the chip.
        payload = (
            "  assign txd = tj_trigger ? 1'b1 : core_txd;\n"
            "  assign rx_data = core_rx_data;\n"
            "  assign rx_valid = core_rx_valid;"
        )
    else:
        # Receive-side bomb: bit 5 of every received byte flips once armed.
        payload = (
            "  assign txd = core_txd;\n"
            "  assign rx_data = tj_trigger ? (core_rx_data ^ 8'h20) : core_rx_data;\n"
            "  assign rx_valid = core_rx_valid;"
        )
    return _uart_timebomb_verilog(spec, payload)


def benchmark_verilog(spec: SeqTrojanSpec) -> str:
    """Complete source: clean core library + clean top + Trojan wrapper."""
    if spec.family_core == "AES":
        parts = [aes_library_verilog(), aes_top_verilog("aes128")]
    else:
        parts = [uart_library_verilog(), uart_top_verilog("rs232")]
    return "\n\n".join(parts + [trojan_top_verilog(spec)])


def golden_top_name(spec: SeqTrojanSpec) -> str:
    """Top module of the benchmark's golden model (inside the same source)."""
    return "aes128" if spec.family_core == "AES" else "rs232"


SEQ_TROJAN_SPECS: Dict[str, SeqTrojanSpec] = {
    spec.name: spec
    for spec in [
        SeqTrojanSpec(
            name="RS232-SEQ-T3000",
            family_core="RS232",
            payload_label="bit flip",
            trigger_label="rxd-low counter (waived)",
            threshold=6,
            trojan_registers=("tj_count",),
            description=(
                "counter time-bomb: an rxd-driven counter posing as a "
                "break-condition detector arms after 6 low cycles and flips "
                "bit 5 of every received byte; invisible to the "
                "combinational flow once the counter is waived"
            ),
        ),
        SeqTrojanSpec(
            name="RS232-SEQ-T3100",
            family_core="RS232",
            payload_label="DoS",
            trigger_label="rxd-low counter (waived)",
            threshold=9,
            trojan_registers=("tj_count",),
            description=(
                "transmit-side time-bomb: the same masqueraded counter arms "
                "after 9 low cycles and forces txd idle, silently dropping "
                "all outgoing frames"
            ),
        ),
        SeqTrojanSpec(
            name="AES-SEQ-T3000",
            family_core="AES",
            payload_label="key leak",
            trigger_label="operation counter (waived)",
            threshold=2,
            trojan_registers=("tj_prev_state", "tj_op_count"),
            description=(
                "cycle-gated leaker: an operation counter posing as a "
                "throughput monitor arms after 2 plaintext changes and XORs "
                "a key byte onto the ciphertext"
            ),
        ),
    ]
}
