"""Trojan-infested variants of the BasicRSA core (BasicRSA-T200/T300/T400)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import DesignError
from repro.trusthub.rsa_core import (
    RSA_DATA_WIDTH,
    RSA_EXP_WIDTH,
    rsa_library_verilog,
    rsa_top_verilog,
)


@dataclass(frozen=True)
class RsaTrojanSpec:
    """One BasicRSA Trust-Hub benchmark."""

    name: str
    payload_label: str
    trigger_label: str
    expected_detection: str
    trigger_kind: str  # "sequence" or "encryptions"
    sequence: Tuple[int, ...] = ()
    threshold: int = 0
    payload_kind: str = "dos"  # "dos" or "leak_exp" or "leak_mod"
    description: str = ""


def _sequence_trigger(spec: RsaTrojanSpec) -> Tuple[list, str]:
    states = len(spec.sequence)
    if states < 2:
        raise DesignError("plaintext-sequence trigger needs at least two values")
    state_width = max(1, states.bit_length())
    lines = [f"  reg [{state_width - 1}:0] tj_seq_state;"]
    for index, value in enumerate(spec.sequence):
        lines.append(f"  wire tj_match{index} = (indata == {RSA_DATA_WIDTH}'h{value:04x}) & ds;")
    lines.append("  always @(posedge clk) begin")
    lines.append("    case (tj_seq_state)")
    for index in range(states):
        lines.append(
            f"      {state_width}'d{index}: if (tj_match{index}) "
            f"tj_seq_state <= {state_width}'d{index + 1};"
        )
    lines.append("      default: tj_seq_state <= tj_seq_state;")
    lines.append("    endcase")
    lines.append("  end")
    lines.append(f"  wire tj_trigger = (tj_seq_state == {state_width}'d{states});")
    return lines, "tj_trigger"


def _encryption_counter_trigger(spec: RsaTrojanSpec) -> Tuple[list, str]:
    width = max(4, spec.threshold.bit_length() + 1)
    lines = [
        f"  reg [{width - 1}:0] tj_enc_count;",
        "  always @(posedge clk) begin",
        "    if (ds)",
        f"      tj_enc_count <= tj_enc_count + {width}'d1;",
        "  end",
        f"  wire tj_trigger = (tj_enc_count == {width}'d{spec.threshold});",
    ]
    return lines, "tj_trigger"


def _payload(spec: RsaTrojanSpec, trigger_wire: str) -> list:
    if spec.payload_kind == "dos":
        # Denial of service: force the published result to zero once triggered.
        return [f"  assign cypher = {trigger_wire} ? {RSA_DATA_WIDTH}'h0 : core_cypher;",
                "  assign ready = core_ready;"]
    if spec.payload_kind == "leak_exp":
        # Leak the secret exponent on the cypher output pins.
        return [
            f"  reg [{RSA_EXP_WIDTH - 1}:0] tj_exp_shadow;",
            "  always @(posedge clk) begin",
            "    if (ds)",
            "      tj_exp_shadow <= inExp;",
            "  end",
            f"  assign cypher = {trigger_wire} ? "
            f"{{{RSA_DATA_WIDTH - RSA_EXP_WIDTH}'h0, tj_exp_shadow}} : core_cypher;",
            "  assign ready = core_ready;",
        ]
    if spec.payload_kind == "leak_mod":
        # Leak the modulus (factorisation hint) interleaved with the exponent.
        return [
            f"  reg [{RSA_DATA_WIDTH - 1}:0] tj_mod_shadow;",
            "  always @(posedge clk) begin",
            "    if (ds)",
            "      tj_mod_shadow <= inMod ^ {8'h00, inExp};",
            "  end",
            f"  assign cypher = {trigger_wire} ? tj_mod_shadow : core_cypher;",
            "  assign ready = core_ready;",
        ]
    raise DesignError(f"unknown RSA payload kind {spec.payload_kind!r}")


def trojan_top_verilog(spec: RsaTrojanSpec) -> str:
    """Verilog of the Trojan-infested BasicRSA top level."""
    if spec.trigger_kind == "sequence":
        trigger_lines, trigger_wire = _sequence_trigger(spec)
    elif spec.trigger_kind == "encryptions":
        trigger_lines, trigger_wire = _encryption_counter_trigger(spec)
    else:
        raise DesignError(f"unknown RSA trigger kind {spec.trigger_kind!r}")
    module_name = top_module_name(spec)
    lines = [
        f"module {module_name}(",
        "  input clk,",
        "  input ds,",
        f"  input  [{RSA_DATA_WIDTH - 1}:0] indata,",
        f"  input  [{RSA_EXP_WIDTH - 1}:0] inExp,",
        f"  input  [{RSA_DATA_WIDTH - 1}:0] inMod,",
        f"  output [{RSA_DATA_WIDTH - 1}:0] cypher,",
        "  output ready",
        ");",
        f"  wire [{RSA_DATA_WIDTH - 1}:0] core_cypher;",
        "  wire core_ready;",
        "  basicrsa u_core (.clk(clk), .ds(ds), .indata(indata), .inExp(inExp), .inMod(inMod),"
        " .cypher(core_cypher), .ready(core_ready));",
        "  // ---- hardware trojan: trigger ----",
    ]
    lines.extend(trigger_lines)
    lines.append("  // ---- hardware trojan: payload ----")
    lines.extend(_payload(spec, trigger_wire))
    lines.append("endmodule")
    return "\n".join(lines)


def benchmark_verilog(spec: RsaTrojanSpec) -> str:
    """Complete source (multiplier + stages + clean core + Trojan wrapper)."""
    return "\n\n".join(
        [rsa_library_verilog(), rsa_top_verilog("basicrsa"), trojan_top_verilog(spec)]
    )


def top_module_name(spec: RsaTrojanSpec) -> str:
    return spec.name.lower().replace("-", "_")


RSA_TROJAN_SPECS: Dict[str, RsaTrojanSpec] = {
    spec.name: spec
    for spec in [
        RsaTrojanSpec(
            name="BasicRSA-T200",
            payload_label="DoS",
            trigger_label="plaintext seq.",
            expected_detection="init property",
            trigger_kind="sequence",
            sequence=(0x1234, 0xBEEF, 0x0001),
            payload_kind="dos",
            description="message-sequence trigger, denial of service on the result",
        ),
        RsaTrojanSpec(
            name="BasicRSA-T300",
            payload_label="OUT",
            trigger_label="# encryptions",
            expected_detection="init property",
            trigger_kind="encryptions",
            threshold=50,
            payload_kind="leak_exp",
            description="after 50 encryptions the private exponent is leaked on the output",
        ),
        RsaTrojanSpec(
            name="BasicRSA-T400",
            payload_label="OUT",
            trigger_label="# encryptions",
            expected_detection="init property",
            trigger_kind="encryptions",
            threshold=200,
            payload_kind="leak_mod",
            description="after 200 encryptions modulus and exponent material is leaked",
        ),
    ]
}
