"""The RS232-T2400-style UART Trojan used by the paper's additional case study."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.trusthub.uart_core import uart_library_verilog, uart_top_verilog


@dataclass(frozen=True)
class UartTrojanSpec:
    """The UART benchmark definition."""

    name: str
    payload_label: str
    trigger_label: str
    expected_detection: str
    threshold: int
    description: str = ""


def trojan_top_verilog(spec: UartTrojanSpec) -> str:
    """Trojan wrapper: counts received frames, then corrupts the received data.

    The trigger is a counter of completed receptions (``rx_valid`` pulses of
    the embedded receiver), i.e. it taps state deep inside the IP rather than
    a primary input; the payload flips bit 5 of the received byte presented on
    ``rx_data``.  This mirrors the Trust-Hub RS232-T2400 Trojan, which is
    detected by a failed *fanout* property (not the init property) because the
    corrupted signal sits several clock cycles away from the primary inputs.
    """
    module_name = top_module_name(spec)
    width = max(4, spec.threshold.bit_length() + 1)
    lines = [
        f"module {module_name}(",
        "  input clk,",
        "  input rst,",
        "  input [7:0] tx_data,",
        "  input tx_send,",
        "  output txd,",
        "  output tx_busy,",
        "  input rxd,",
        "  output [7:0] rx_data,",
        "  output rx_valid",
        ");",
        "  wire [7:0] core_rx_data;",
        "  wire core_rx_valid;",
        "  rs232 u_core (.clk(clk), .rst(rst), .tx_data(tx_data), .tx_send(tx_send),"
        " .txd(txd), .tx_busy(tx_busy), .rxd(rxd), .rx_data(core_rx_data),"
        " .rx_valid(core_rx_valid));",
        "  // ---- hardware trojan: trigger (received-frame counter) ----",
        f"  reg [{width - 1}:0] tj_frame_count;",
        "  always @(posedge clk) begin",
        "    if (core_rx_valid)",
        f"      tj_frame_count <= tj_frame_count + {width}'d1;",
        "  end",
        f"  wire tj_trigger = (tj_frame_count >= {width}'d{spec.threshold});",
        "  // ---- hardware trojan: payload (corrupt the received byte) ----",
        "  assign rx_data = tj_trigger ? (core_rx_data ^ 8'h20) : core_rx_data;",
        "  assign rx_valid = core_rx_valid;",
        "endmodule",
    ]
    return "\n".join(lines)


def benchmark_verilog(spec: UartTrojanSpec) -> str:
    """Complete source (tx + rx + clean transceiver + Trojan wrapper)."""
    return "\n\n".join(
        [uart_library_verilog(), uart_top_verilog("rs232"), trojan_top_verilog(spec)]
    )


def top_module_name(spec: UartTrojanSpec) -> str:
    return spec.name.lower().replace("-", "_")


UART_TROJAN_SPECS: Dict[str, UartTrojanSpec] = {
    spec.name: spec
    for spec in [
        UartTrojanSpec(
            name="RS232-T2400",
            payload_label="bit flip",
            trigger_label="# received frames",
            expected_detection="fanout property",
            threshold=100,
            description="received-frame counter trigger, received-data corruption payload",
        )
    ]
}
