"""Generator for the pipelined AES-128 encryption core.

The core mirrors the structure of the open-source pipelined AES used by the
Trust-Hub AES-T* benchmarks: a fully unrolled data path with *two* register
stages per round (the S-box stage and the MixColumns/AddRoundKey stage) plus
registered inputs, giving 22 register stages from the plaintext input to the
ciphertext register.  One encryption can be started every clock cycle and the
result appears after a fixed latency of :data:`AES_LATENCY` cycles.

Byte ordering follows FIPS-197: byte 0 of the specification is the most
significant byte of the 128-bit ``state``/``key``/``out`` ports, so the core's
results are directly comparable with
:func:`repro.crypto.aes_ref.aes128_encrypt_block`.
"""

from __future__ import annotations

from typing import List

from repro.crypto.aes_ref import SBOX

#: Clock cycles from presenting ``state``/``key`` to the ciphertext appearing on ``out``.
AES_LATENCY = 23

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _byte_slice(bus: str, byte_index: int) -> str:
    """Verilog part select of byte ``byte_index`` (0 = most significant byte)."""
    msb = 127 - 8 * byte_index
    return f"{bus}[{msb}:{msb - 7}]"


def sbox_verilog() -> str:
    """The AES S-box as a combinational 256-entry case statement."""
    lines = [
        "module aes_sbox(",
        "  input  [7:0] a,",
        "  output reg [7:0] q",
        ");",
        "  always @(*) begin",
        "    case (a)",
    ]
    for value, substituted in enumerate(SBOX):
        lines.append(f"      8'h{value:02x}: q = 8'h{substituted:02x};")
    lines.append("      default: q = 8'h00;")
    lines.append("    endcase")
    lines.append("  end")
    lines.append("endmodule")
    return "\n".join(lines)


def sub_bytes_verilog() -> str:
    """SubBytes over the full 128-bit state (16 S-box instances)."""
    lines = [
        "module aes_sub_bytes(",
        "  input  [127:0] a,",
        "  output [127:0] q",
        ");",
    ]
    for byte_index in range(16):
        lines.append(
            f"  aes_sbox u_sbox_{byte_index} (.a({_byte_slice('a', byte_index)}), "
            f".q({_byte_slice('q', byte_index)}));"
        )
    lines.append("endmodule")
    return "\n".join(lines)


def shift_rows_verilog() -> str:
    """ShiftRows as pure wiring.

    With the FIPS mapping ``state[row][column] = byte[4 * column + row]``,
    output byte ``4c + r`` takes input byte ``4 * ((c + r) % 4) + r``.
    """
    lines = [
        "module aes_shift_rows(",
        "  input  [127:0] a,",
        "  output [127:0] q",
        ");",
    ]
    for column in range(4):
        for row in range(4):
            destination = 4 * column + row
            source = 4 * ((column + row) % 4) + row
            lines.append(
                f"  assign {_byte_slice('q', destination)} = {_byte_slice('a', source)};"
            )
    lines.append("endmodule")
    return "\n".join(lines)


def mix_columns_verilog() -> str:
    """MixColumns: per-column GF(2^8) constant multiplication network."""
    lines = [
        "module aes_mix_columns(",
        "  input  [127:0] a,",
        "  output [127:0] q",
        ");",
    ]
    for column in range(4):
        names = [f"c{column}b{row}" for row in range(4)]
        for row, name in enumerate(names):
            lines.append(f"  wire [7:0] {name} = {_byte_slice('a', 4 * column + row)};")
        for row, name in enumerate(names):
            # xtime(x) = (x << 1) ^ (0x1b masked by the dropped MSB)
            lines.append(
                f"  wire [7:0] xt_{name} = {{{name}[6:0], 1'b0}} ^ (8'h1b & {{8{{{name}[7]}}}});"
            )
        combos = [
            ("xt_{0} ^ xt_{1} ^ {1} ^ {2} ^ {3}", (0, 1, 2, 3)),
            ("{0} ^ xt_{1} ^ xt_{2} ^ {2} ^ {3}", (0, 1, 2, 3)),
            ("{0} ^ {1} ^ xt_{2} ^ xt_{3} ^ {3}", (0, 1, 2, 3)),
            ("xt_{0} ^ {0} ^ {1} ^ {2} ^ xt_{3}", (0, 1, 2, 3)),
        ]
        for row, (template, order) in enumerate(combos):
            expression = template.format(*[names[i] for i in order])
            lines.append(f"  assign {_byte_slice('q', 4 * column + row)} = {expression};")
    lines.append("endmodule")
    return "\n".join(lines)


def key_expand_verilog() -> str:
    """One round of the AES-128 key schedule (combinational, 4 S-boxes)."""
    lines = [
        "module aes_key_expand #(parameter RCON = 8'h01) (",
        "  input  [127:0] k,",
        "  output [127:0] k_next",
        ");",
        "  wire [31:0] w0 = k[127:96];",
        "  wire [31:0] w1 = k[95:64];",
        "  wire [31:0] w2 = k[63:32];",
        "  wire [31:0] w3 = k[31:0];",
        "  wire [31:0] rot = {w3[23:0], w3[31:24]};",
        "  wire [31:0] sub;",
        "  aes_sbox u_s0 (.a(rot[31:24]), .q(sub[31:24]));",
        "  aes_sbox u_s1 (.a(rot[23:16]), .q(sub[23:16]));",
        "  aes_sbox u_s2 (.a(rot[15:8]),  .q(sub[15:8]));",
        "  aes_sbox u_s3 (.a(rot[7:0]),   .q(sub[7:0]));",
        "  wire [31:0] temp = sub ^ {RCON[7:0], 24'h000000};",
        "  wire [31:0] n0 = w0 ^ temp;",
        "  wire [31:0] n1 = w1 ^ n0;",
        "  wire [31:0] n2 = w2 ^ n1;",
        "  wire [31:0] n3 = w3 ^ n2;",
        "  assign k_next = {n0, n1, n2, n3};",
        "endmodule",
    ]
    return "\n".join(lines)


def round_verilog() -> str:
    """A middle AES round: two register stages (S-box stage, MixColumns stage)."""
    lines = [
        "module aes_round #(parameter RCON = 8'h01) (",
        "  input clk,",
        "  input  [127:0] s_in,",
        "  input  [127:0] k_in,",
        "  output [127:0] s_out,",
        "  output [127:0] k_out",
        ");",
        "  wire [127:0] sb_next;",
        "  wire [127:0] k_next;",
        "  reg  [127:0] sb_q;",
        "  reg  [127:0] ka_q;",
        "  reg  [127:0] s_q;",
        "  reg  [127:0] kb_q;",
        "  wire [127:0] sr;",
        "  wire [127:0] mc;",
        "  aes_sub_bytes  u_sb (.a(s_in), .q(sb_next));",
        "  aes_key_expand #(.RCON(RCON)) u_ke (.k(k_in), .k_next(k_next));",
        "  always @(posedge clk) begin",
        "    sb_q <= sb_next;",
        "    ka_q <= k_next;",
        "  end",
        "  aes_shift_rows  u_sr (.a(sb_q), .q(sr));",
        "  aes_mix_columns u_mc (.a(sr), .q(mc));",
        "  always @(posedge clk) begin",
        "    s_q  <= mc ^ ka_q;",
        "    kb_q <= ka_q;",
        "  end",
        "  assign s_out = s_q;",
        "  assign k_out = kb_q;",
        "endmodule",
    ]
    return "\n".join(lines)


def final_round_verilog() -> str:
    """The last AES round (no MixColumns), producing the ciphertext register."""
    lines = [
        "module aes_final_round #(parameter RCON = 8'h36) (",
        "  input clk,",
        "  input  [127:0] s_in,",
        "  input  [127:0] k_in,",
        "  output [127:0] s_out",
        ");",
        "  wire [127:0] sb_next;",
        "  wire [127:0] k_next;",
        "  reg  [127:0] sb_q;",
        "  reg  [127:0] ka_q;",
        "  reg  [127:0] s_q;",
        "  wire [127:0] sr;",
        "  aes_sub_bytes  u_sb (.a(s_in), .q(sb_next));",
        "  aes_key_expand #(.RCON(RCON)) u_ke (.k(k_in), .k_next(k_next));",
        "  always @(posedge clk) begin",
        "    sb_q <= sb_next;",
        "    ka_q <= k_next;",
        "  end",
        "  aes_shift_rows u_sr (.a(sb_q), .q(sr));",
        "  always @(posedge clk) begin",
        "    s_q <= sr ^ ka_q;",
        "  end",
        "  assign s_out = s_q;",
        "endmodule",
    ]
    return "\n".join(lines)


def aes_top_verilog(module_name: str = "aes128") -> str:
    """The pipelined AES-128 top level."""
    lines = [
        f"module {module_name}(",
        "  input clk,",
        "  input  [127:0] state,",
        "  input  [127:0] key,",
        "  output [127:0] out",
        ");",
        "  reg [127:0] state_r;",
        "  reg [127:0] key_r;",
        "  reg [127:0] s0;",
        "  reg [127:0] k0;",
        "  always @(posedge clk) begin",
        "    state_r <= state;",
        "    key_r   <= key;",
        "    s0      <= state_r ^ key_r;",
        "    k0      <= key_r;",
        "  end",
    ]
    for index in range(1, 10):
        lines.append(f"  wire [127:0] s{index};")
        lines.append(f"  wire [127:0] k{index};")
    for index in range(1, 10):
        lines.append(
            f"  aes_round #(.RCON(8'h{_RCON[index - 1]:02x})) u_r{index} "
            f"(.clk(clk), .s_in(s{index - 1}), .k_in(k{index - 1}), "
            f".s_out(s{index}), .k_out(k{index}));"
        )
    lines.append(
        f"  aes_final_round #(.RCON(8'h{_RCON[9]:02x})) u_rf "
        "(.clk(clk), .s_in(s9), .k_in(k9), .s_out(out));"
    )
    lines.append("endmodule")
    return "\n".join(lines)


def aes_library_verilog() -> str:
    """All support modules of the AES core (everything except the top level)."""
    return "\n\n".join(
        [
            sbox_verilog(),
            sub_bytes_verilog(),
            shift_rows_verilog(),
            mix_columns_verilog(),
            key_expand_verilog(),
            round_verilog(),
            final_round_verilog(),
        ]
    )


def aes_core_verilog(module_name: str = "aes128") -> str:
    """Complete Verilog source of the Trojan-free pipelined AES-128 core."""
    return aes_library_verilog() + "\n\n" + aes_top_verilog(module_name)
