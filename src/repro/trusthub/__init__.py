"""Trust-Hub-style benchmark accelerators and hardware Trojans.

The original Trust-Hub archives cannot be redistributed or downloaded in this
offline environment, so this package *regenerates* equivalent designs in the
supported Verilog subset:

* a fully pipelined AES-128 encryption core (two register stages per round,
  matching the structure of the core used by the AES-T* benchmarks),
* a pipelined BasicRSA modular-exponentiation core,
* an RS232 UART transceiver,
* one Trojan variant per row of the paper's Table I, each combining the
  trigger class (plaintext sequence, #encryptions, #clock cycles, #values)
  and payload class (PSC, RF, LC, DoS, bit flip, OUT) the table reports.

Every design is returned both as Verilog source text and as an elaborated
:class:`repro.rtl.ir.Module`, keyed by its Trust-Hub name through
:func:`repro.trusthub.registry.load_design`.
"""

from repro.trusthub.registry import (
    TrustHubDesign,
    catalog,
    design_names,
    families,
    load_design,
    load_module,
)

__all__ = [
    "TrustHubDesign",
    "catalog",
    "design_names",
    "families",
    "load_design",
    "load_module",
]
