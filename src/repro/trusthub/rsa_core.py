"""Generator for the BasicRSA modular-exponentiation accelerator.

The Trust-Hub *BasicRSA* benchmark is a textbook RSA core built around an
iterative modular multiplier.  This regeneration keeps the same interface
(``indata``/``inExp``/``inMod``/``ds`` in, ``cypher``/``ready`` out) and the
same algorithm (square-and-multiply over Blakley modular multiplication) but
implements it as a fully *pipelined* data path — one exponent bit per stage —
so the accelerator is non-interfering in the sense of the paper: the result
only depends on the operands presented with the corresponding ``ds`` strobe.

Operand widths are scaled to 16-bit data / 8-bit exponents so the pure-Python
property checker stays fast; the structure (modular multiplier, exponent
pipeline, handshake control) is unchanged.

The two sticky handshake flags (``started``/``done_seen``) intentionally keep
their value across computations: they reproduce the two legitimate
history-dependencies for which the paper reports spurious counterexamples on
the RSA designs (Sec. VI), to be disposed of with waivers.
"""

from __future__ import annotations

#: data / modulus width of the scaled-down core
RSA_DATA_WIDTH = 16
#: exponent width (one pipeline stage per exponent bit)
RSA_EXP_WIDTH = 8
#: cycles from presenting operands to the result appearing on ``cypher``
RSA_LATENCY = RSA_EXP_WIDTH + 3


def modmul_verilog(width: int = RSA_DATA_WIDTH) -> str:
    """Combinational Blakley modular multiplier ``p = (a * b) mod m``."""
    extended = width + 2
    lines = [
        "module rsa_modmul(",
        f"  input  [{width - 1}:0] a,",
        f"  input  [{width - 1}:0] b,",
        f"  input  [{width - 1}:0] m,",
        f"  output [{width - 1}:0] p",
        ");",
        f"  wire [{extended - 1}:0] mx = {{2'b00, m}};",
        f"  wire [{extended - 1}:0] ax = {{2'b00, a}};",
        f"  wire [{extended - 1}:0] r_init = {extended}'h0;",
    ]
    previous = "r_init"
    for step, bit in enumerate(range(width - 1, -1, -1)):
        doubled = f"dbl_{step}"
        added = f"add_{step}"
        reduced1 = f"red1_{step}"
        reduced2 = f"red2_{step}"
        lines.append(f"  wire [{extended - 1}:0] {doubled} = {{{previous}[{extended - 2}:0], 1'b0}};")
        lines.append(f"  wire [{extended - 1}:0] {added} = {doubled} + (b[{bit}] ? ax : {extended}'h0);")
        lines.append(f"  wire [{extended - 1}:0] {reduced1} = ({added} >= mx) ? ({added} - mx) : {added};")
        lines.append(f"  wire [{extended - 1}:0] {reduced2} = ({reduced1} >= mx) ? ({reduced1} - mx) : {reduced1};")
        previous = reduced2
    lines.append(f"  assign p = {previous}[{width - 1}:0];")
    lines.append("endmodule")
    return "\n".join(lines)


def stage_verilog(width: int = RSA_DATA_WIDTH, exp_width: int = RSA_EXP_WIDTH) -> str:
    """One square-and-multiply pipeline stage (consumes one exponent bit)."""
    lines = [
        "module rsa_stage(",
        "  input clk,",
        f"  input  [{width - 1}:0] result_in,",
        f"  input  [{width - 1}:0] base_in,",
        f"  input  [{width - 1}:0] mod_in,",
        f"  input  [{exp_width - 1}:0] exp_in,",
        "  input  valid_in,",
        f"  output [{width - 1}:0] result_out,",
        f"  output [{width - 1}:0] base_out,",
        f"  output [{width - 1}:0] mod_out,",
        f"  output [{exp_width - 1}:0] exp_out,",
        "  output valid_out",
        ");",
        f"  wire [{width - 1}:0] mult_result;",
        f"  wire [{width - 1}:0] square_result;",
        "  rsa_modmul u_mult   (.a(result_in), .b(base_in), .m(mod_in), .p(mult_result));",
        "  rsa_modmul u_square (.a(base_in),   .b(base_in), .m(mod_in), .p(square_result));",
        f"  reg [{width - 1}:0] result_q;",
        f"  reg [{width - 1}:0] base_q;",
        f"  reg [{width - 1}:0] mod_q;",
        f"  reg [{exp_width - 1}:0] exp_q;",
        "  reg valid_q;",
        "  always @(posedge clk) begin",
        "    result_q <= exp_in[0] ? mult_result : result_in;",
        "    base_q   <= square_result;",
        "    mod_q    <= mod_in;",
        f"    exp_q    <= {{1'b0, exp_in[{exp_width - 1}:1]}};",
        "    valid_q  <= valid_in;",
        "  end",
        "  assign result_out = result_q;",
        "  assign base_out   = base_q;",
        "  assign mod_out    = mod_q;",
        "  assign exp_out    = exp_q;",
        "  assign valid_out  = valid_q;",
        "endmodule",
    ]
    return "\n".join(lines)


def rsa_top_verilog(module_name: str = "basicrsa",
                    width: int = RSA_DATA_WIDTH,
                    exp_width: int = RSA_EXP_WIDTH) -> str:
    """The pipelined BasicRSA top level."""
    lines = [
        f"module {module_name}(",
        "  input clk,",
        "  input ds,",
        f"  input  [{width - 1}:0] indata,",
        f"  input  [{exp_width - 1}:0] inExp,",
        f"  input  [{width - 1}:0] inMod,",
        f"  output [{width - 1}:0] cypher,",
        "  output ready",
        ");",
        f"  reg [{width - 1}:0] base_0;",
        f"  reg [{width - 1}:0] mod_0;",
        f"  reg [{exp_width - 1}:0] exp_0;",
        "  reg valid_0;",
        "  // The running product starts at 1 (it is a constant, not state).",
        f"  wire [{width - 1}:0] result_0 = {width}'h1;",
        "  always @(posedge clk) begin",
        "    base_0   <= indata;",
        "    mod_0    <= inMod;",
        "    exp_0    <= inExp;",
        "    valid_0  <= ds;",
        "  end",
        "  // Sticky handshake flags: legitimate history dependencies that the",
        "  // detection flow reports as spurious counterexamples (cf. Sec. VI).",
        "  reg started;",
        "  reg done_seen;",
    ]
    for stage in range(1, exp_width + 1):
        lines.append(f"  wire [{width - 1}:0] result_{stage};")
        lines.append(f"  wire [{width - 1}:0] base_{stage};")
        lines.append(f"  wire [{width - 1}:0] mod_{stage};")
        lines.append(f"  wire [{exp_width - 1}:0] exp_{stage};")
        lines.append(f"  wire valid_{stage};")
    for stage in range(1, exp_width + 1):
        previous = stage - 1
        lines.append(
            f"  rsa_stage u_stage_{stage} (.clk(clk), "
            f".result_in(result_{previous}), .base_in(base_{previous}), .mod_in(mod_{previous}), "
            f".exp_in(exp_{previous}), .valid_in(valid_{previous}), "
            f".result_out(result_{stage}), .base_out(base_{stage}), .mod_out(mod_{stage}), "
            f".exp_out(exp_{stage}), .valid_out(valid_{stage}));"
        )
    lines.extend(
        [
            f"  reg [{width - 1}:0] cypher_q;",
            "  reg ready_q;",
            "  always @(posedge clk) begin",
            f"    cypher_q <= result_{exp_width};",
            f"    ready_q  <= valid_{exp_width};",
            "    started  <= started | ds;",
            f"    done_seen <= done_seen | valid_{exp_width};",
            "  end",
            "  assign cypher = cypher_q;",
            "  assign ready = ready_q & started & (done_seen | valid_" + str(exp_width) + ");",
            "endmodule",
        ]
    )
    return "\n".join(lines)


def rsa_library_verilog() -> str:
    """Support modules of the RSA core (multiplier and pipeline stage)."""
    return modmul_verilog() + "\n\n" + stage_verilog()


def rsa_core_verilog(module_name: str = "basicrsa") -> str:
    """Complete Verilog source of the Trojan-free BasicRSA core."""
    return rsa_library_verilog() + "\n\n" + rsa_top_verilog(module_name)


#: waivers a verification engineer adds after inspecting the two spurious
#: counterexamples caused by the sticky handshake flags (cf. Sec. V-B / VI).
RSA_RECOMMENDED_WAIVERS = ("started", "done_seen")
