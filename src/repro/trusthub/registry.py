"""Catalogue of all regenerated Trust-Hub-style benchmark designs.

``catalog()`` returns one :class:`TrustHubDesign` per benchmark: every Trojan
of the paper's Table I, the Trojan-free variants of each accelerator family,
and the RS232-T2400 case study.  Designs carry everything a benchmark harness
needs: the Verilog source, the top module name, the data inputs the detection
flow should trace, the waivers an engineer would apply after diagnosing the
known-legitimate history dependencies, and the detection outcome the paper
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import DesignError
from repro.rtl.elaborate import elaborate_source
from repro.rtl.ir import Module
from repro.trusthub import aes_trojans, rsa_trojans, seq_trojans, uart_trojans
from repro.trusthub.aes_core import aes_core_verilog
from repro.trusthub.rsa_core import RSA_RECOMMENDED_WAIVERS, rsa_core_verilog
from repro.trusthub.uart_core import UART_RECOMMENDED_WAIVERS, uart_core_verilog


@dataclass(frozen=True)
class TrustHubDesign:
    """Metadata and source of one benchmark design."""

    name: str
    family: str  # "AES", "BasicRSA", "RS232", "SEQ"
    top: str
    source: str = field(repr=False, default="")
    payload: str = ""
    trigger: str = ""
    expected_detection: str = ""
    has_trojan: bool = True
    data_inputs: Tuple[str, ...] = ()
    recommended_waivers: Tuple[str, ...] = ()
    description: str = ""
    #: Top module of the benchmark's golden (Trojan-free) model inside the
    #: same source — the reference the sequential detection mode unrolls
    #: against.  Every Trojan wrapper embeds the clean core it wraps, and a
    #: clean design is its own golden model.
    golden_top: Optional[str] = None

    def elaborate(self) -> Module:
        """Elaborate the design's top module into the flat RTL IR."""
        return elaborate_source(self.source, self.top)

    def elaborate_golden(self) -> Module:
        """Elaborate the benchmark's golden model (raises if none is catalogued)."""
        if not self.golden_top:
            raise DesignError(f"benchmark {self.name!r} has no catalogued golden model")
        return elaborate_source(self.source, self.golden_top)


_MODULE_CACHE: Dict[str, Module] = {}
_CATALOG_CACHE: Optional[Dict[str, TrustHubDesign]] = None


def _aes_designs() -> List[TrustHubDesign]:
    designs = [
        TrustHubDesign(
            name="AES-HT-FREE",
            family="AES",
            top="aes128",
            source=aes_core_verilog("aes128"),
            payload="-",
            trigger="-",
            expected_detection="secure",
            has_trojan=False,
            data_inputs=("state", "key"),
            description="Trojan-free pipelined AES-128 core",
            golden_top="aes128",
        )
    ]
    for spec in aes_trojans.AES_TROJAN_SPECS.values():
        designs.append(
            TrustHubDesign(
                name=spec.name,
                family="AES",
                top=aes_trojans.top_module_name(spec),
                source=aes_trojans.benchmark_verilog(spec),
                payload=spec.payload_label,
                trigger=spec.trigger_label,
                expected_detection=spec.expected_detection,
                has_trojan=True,
                data_inputs=("state", "key"),
                description=spec.description,
                golden_top="aes128",
            )
        )
    return designs


def _rsa_designs() -> List[TrustHubDesign]:
    rsa_inputs = ("ds", "indata", "inExp", "inMod")
    designs = [
        TrustHubDesign(
            name="BasicRSA-HT-FREE",
            family="BasicRSA",
            top="basicrsa",
            source=rsa_core_verilog("basicrsa"),
            payload="-",
            trigger="-",
            expected_detection="secure",
            has_trojan=False,
            data_inputs=rsa_inputs,
            recommended_waivers=tuple(RSA_RECOMMENDED_WAIVERS),
            description="Trojan-free pipelined BasicRSA core (HTs manually removed, cf. Sec. VI)",
            golden_top="basicrsa",
        )
    ]
    for spec in rsa_trojans.RSA_TROJAN_SPECS.values():
        designs.append(
            TrustHubDesign(
                name=spec.name,
                family="BasicRSA",
                top=rsa_trojans.top_module_name(spec),
                source=rsa_trojans.benchmark_verilog(spec),
                payload=spec.payload_label,
                trigger=spec.trigger_label,
                expected_detection=spec.expected_detection,
                has_trojan=True,
                data_inputs=rsa_inputs,
                recommended_waivers=tuple(f"u_core.{name}" for name in RSA_RECOMMENDED_WAIVERS),
                description=spec.description,
                golden_top="basicrsa",
            )
        )
    return designs


def _uart_designs() -> List[TrustHubDesign]:
    uart_inputs = ("tx_data", "tx_send", "rxd")
    designs = [
        TrustHubDesign(
            name="RS232-HT-FREE",
            family="RS232",
            top="rs232",
            source=uart_core_verilog("rs232"),
            payload="-",
            trigger="-",
            expected_detection="secure",
            has_trojan=False,
            data_inputs=uart_inputs,
            recommended_waivers=tuple(UART_RECOMMENDED_WAIVERS),
            description="Trojan-free RS232 transceiver",
            golden_top="rs232",
        )
    ]
    for spec in uart_trojans.UART_TROJAN_SPECS.values():
        designs.append(
            TrustHubDesign(
                name=spec.name,
                family="RS232",
                top=uart_trojans.top_module_name(spec),
                source=uart_trojans.benchmark_verilog(spec),
                payload=spec.payload_label,
                trigger=spec.trigger_label,
                expected_detection=spec.expected_detection,
                has_trojan=True,
                data_inputs=uart_inputs,
                recommended_waivers=tuple(f"u_core.{name}" for name in UART_RECOMMENDED_WAIVERS),
                description=spec.description,
                golden_top="rs232",
            )
        )
    return designs


def _seq_designs() -> List[TrustHubDesign]:
    """The sequential benchmarks: trojans the combinational flow misses.

    They live in their own ``SEQ`` family because their detection story is
    different by construction — the recommended waivers (deliberately)
    disqualify the trigger state, so the combinational flow proves them
    SECURE and only ``--mode sequential`` at a depth >= the trigger
    threshold exposes the divergence from the golden model.
    """
    inputs = {
        "RS232": ("tx_data", "tx_send", "rxd"),
        "AES": ("state", "key"),
    }
    core_waivers = {
        "RS232": tuple(f"u_core.{name}" for name in UART_RECOMMENDED_WAIVERS),
        "AES": (),
    }
    designs = []
    for spec in seq_trojans.SEQ_TROJAN_SPECS.values():
        designs.append(
            TrustHubDesign(
                name=spec.name,
                family="SEQ",
                top=seq_trojans.top_module_name(spec),
                source=seq_trojans.benchmark_verilog(spec),
                payload=spec.payload_label,
                trigger=spec.trigger_label,
                expected_detection=f"sequential mode (depth >= {spec.threshold})",
                has_trojan=True,
                data_inputs=inputs[spec.family_core],
                recommended_waivers=core_waivers[spec.family_core]
                + spec.trojan_registers,
                description=spec.description,
                golden_top=seq_trojans.golden_top_name(spec),
            )
        )
    return designs


def catalog() -> Dict[str, TrustHubDesign]:
    """All benchmark designs keyed by their Trust-Hub-style name."""
    global _CATALOG_CACHE
    if _CATALOG_CACHE is None:
        designs = _aes_designs() + _rsa_designs() + _uart_designs() + _seq_designs()
        _CATALOG_CACHE = {design.name: design for design in designs}
    return dict(_CATALOG_CACHE)


def families() -> List[str]:
    """The benchmark families in the catalogue (``AES``, ``BasicRSA``, ``RS232``, ``SEQ``)."""
    return sorted({design.family for design in catalog().values()})


def design_names(family: Optional[str] = None, with_trojan: Optional[bool] = None) -> List[str]:
    """Names of catalogued designs, optionally filtered by family / Trojan presence."""
    names = []
    for name, design in catalog().items():
        if family is not None and design.family != family:
            continue
        if with_trojan is not None and design.has_trojan != with_trojan:
            continue
        names.append(name)
    return sorted(names)


def load_design(name: str) -> TrustHubDesign:
    """Look up one benchmark by name (raises :class:`DesignError` if unknown)."""
    designs = catalog()
    if name not in designs:
        raise DesignError(
            f"unknown benchmark {name!r}; available: {', '.join(sorted(designs))}"
        )
    return designs[name]


def load_module(name: str) -> Module:
    """Elaborated flat module of one benchmark (cached across calls)."""
    if name not in _MODULE_CACHE:
        _MODULE_CACHE[name] = load_design(name).elaborate()
    return _MODULE_CACHE[name]
