"""Generator for the RS232 UART used by the paper's additional case study.

The UART is *not* a non-interfering accelerator — its baud-rate divider, bit
counter and shift registers all carry state across frames — which is exactly
why the paper uses it to demonstrate that the method still works on IPs with
more complex control behaviour at the cost of a few spurious counterexamples
(three in the paper, resolved per Sec. V-B).

The transmitter below uses a small divider (``BAUD_DIV``) so simulations stay
short; the control structure (idle/start/data/stop, shift register, counters)
matches a textbook RS232 transmitter and receiver.
"""

from __future__ import annotations

#: clock cycles per bit used by the generated transceiver
BAUD_DIV = 4


def uart_tx_verilog(baud_div: int = BAUD_DIV) -> str:
    """RS232 transmitter: 8N1 framing, ``BAUD_DIV`` clocks per bit."""
    divider_width = max(2, (baud_div - 1).bit_length())
    lines = [
        "module uart_tx(",
        "  input clk,",
        "  input rst,",
        "  input [7:0] data,",
        "  input send,",
        "  output txd,",
        "  output busy",
        ");",
        f"  reg [{divider_width - 1}:0] baud_cnt;",
        "  reg [3:0] bit_idx;",
        "  reg [9:0] shift;",
        "  reg active;",
        "  always @(posedge clk) begin",
        "    if (rst) begin",
        "      baud_cnt <= 0;",
        "      bit_idx  <= 0;",
        "      shift    <= 10'h3ff;",
        "      active   <= 1'b0;",
        "    end else if (!active) begin",
        "      if (send) begin",
        "        shift    <= {1'b1, data, 1'b0};",
        "        active   <= 1'b1;",
        "        bit_idx  <= 0;",
        "        baud_cnt <= 0;",
        "      end",
        "    end else begin",
        f"      if (baud_cnt == {divider_width}'d{baud_div - 1}) begin",
        "        baud_cnt <= 0;",
        "        shift    <= {1'b1, shift[9:1]};",
        "        if (bit_idx == 4'd9) begin",
        "          active  <= 1'b0;",
        "          bit_idx <= 0;",
        "        end else begin",
        "          bit_idx <= bit_idx + 4'd1;",
        "        end",
        "      end else begin",
        f"        baud_cnt <= baud_cnt + {divider_width}'d1;",
        "      end",
        "    end",
        "  end",
        "  assign txd = shift[0];",
        "  assign busy = active;",
        "endmodule",
    ]
    return "\n".join(lines)


def uart_rx_verilog(baud_div: int = BAUD_DIV) -> str:
    """RS232 receiver: mid-bit sampling, 8N1 framing."""
    divider_width = max(2, (baud_div - 1).bit_length())
    lines = [
        "module uart_rx(",
        "  input clk,",
        "  input rst,",
        "  input rxd,",
        "  output [7:0] data,",
        "  output valid",
        ");",
        f"  reg [{divider_width - 1}:0] baud_cnt;",
        "  reg [3:0] bit_idx;",
        "  reg [7:0] shift;",
        "  reg [7:0] data_q;",
        "  reg valid_q;",
        "  reg receiving;",
        "  always @(posedge clk) begin",
        "    if (rst) begin",
        "      baud_cnt  <= 0;",
        "      bit_idx   <= 0;",
        "      shift     <= 0;",
        "      data_q    <= 0;",
        "      valid_q   <= 1'b0;",
        "      receiving <= 1'b0;",
        "    end else if (!receiving) begin",
        "      valid_q <= 1'b0;",
        "      if (!rxd) begin",
        "        receiving <= 1'b1;",
        f"        baud_cnt  <= {divider_width}'d{baud_div // 2};",
        "        bit_idx   <= 0;",
        "      end",
        "    end else begin",
        f"      if (baud_cnt == {divider_width}'d{baud_div - 1}) begin",
        "        baud_cnt <= 0;",
        "        if (bit_idx == 4'd9) begin",
        "          receiving <= 1'b0;",
        "          data_q    <= shift;",
        "          valid_q   <= 1'b1;",
        "        end else begin",
        "          // bit_idx 0 samples the middle of the start bit (discarded),",
        "          // bit_idx 1..8 sample the eight data bits.",
        "          if (bit_idx != 4'd0)",
        "            shift <= {rxd, shift[7:1]};",
        "          bit_idx <= bit_idx + 4'd1;",
        "        end",
        "      end else begin",
        f"        baud_cnt <= baud_cnt + {divider_width}'d1;",
        "      end",
        "    end",
        "  end",
        "  assign data = data_q;",
        "  assign valid = valid_q;",
        "endmodule",
    ]
    return "\n".join(lines)


def uart_top_verilog(module_name: str = "rs232") -> str:
    """Transceiver top level combining transmitter and receiver."""
    lines = [
        f"module {module_name}(",
        "  input clk,",
        "  input rst,",
        "  input [7:0] tx_data,",
        "  input tx_send,",
        "  output txd,",
        "  output tx_busy,",
        "  input rxd,",
        "  output [7:0] rx_data,",
        "  output rx_valid",
        ");",
        "  uart_tx u_tx (.clk(clk), .rst(rst), .data(tx_data), .send(tx_send),"
        " .txd(txd), .busy(tx_busy));",
        "  uart_rx u_rx (.clk(clk), .rst(rst), .rxd(rxd), .data(rx_data), .valid(rx_valid));",
        "endmodule",
    ]
    return "\n".join(lines)


def uart_library_verilog() -> str:
    return uart_tx_verilog() + "\n\n" + uart_rx_verilog()


def uart_core_verilog(module_name: str = "rs232") -> str:
    """Complete Verilog source of the Trojan-free RS232 transceiver."""
    return uart_library_verilog() + "\n\n" + uart_top_verilog(module_name)


#: control registers a verification engineer disqualifies after inspecting the
#: counterexamples of the Trojan-free UART (legitimate cross-frame state).
UART_RECOMMENDED_WAIVERS = (
    "u_tx.active",
    "u_tx.baud_cnt",
    "u_tx.bit_idx",
    "u_tx.shift",
    "u_rx.receiving",
    "u_rx.baud_cnt",
    "u_rx.bit_idx",
    "u_rx.shift",
    "u_rx.data_q",
    "u_rx.valid_q",
)
