"""Trojan-infested variants of the pipelined AES-128 core (AES-T100 .. T2800).

Every benchmark of the paper's Table I is regenerated as a wrapper module
around the Trojan-free core of :mod:`repro.trusthub.aes_core`, combining the
trigger class and payload class the table reports:

Triggers
    ``plaintext seq.``   — a small FSM that advances when the plaintext input
    matches a predefined sequence of values (the 4-state FSM of Fig. 6).

    ``# encryptions``    — a counter of encryption requests.  The pipelined
    core accepts one block per cycle, so the counter increments whenever a new
    plaintext (different from the previous cycle) is presented.

    ``# clock cycles``   — a free-running counter that simply counts cycles
    from power-on / reset and never observes the inputs.

    ``# values``         — a counter of occurrences of a specific data value
    observed ``K`` pipeline stages deep (modelled by a K-stage delay line on a
    plaintext byte), mirroring the Trust-Hub Trojans whose trigger taps deep
    internal signals.

Payloads
    ``PSC``  — a code-spread shift register toggled with key bits (power side
    channel), ``RF`` — key bits serialised onto an otherwise unused output pin
    (``antena``), ``LC`` — a wide register bank loaded with key bits (leakage
    current), ``DoS`` — battery-draining toggle logic, ``bit flip`` — XOR on
    the ciphertext output.  Each payload is expressed through its RTL
    manifestation, exactly as Sec. IV-C argues every payload with security
    impact must be.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import DesignError
from repro.trusthub.aes_core import aes_library_verilog, aes_top_verilog


@dataclass(frozen=True)
class TriggerSpec:
    """Trigger description for one benchmark."""

    kind: str  # "sequence", "encryptions", "cycles", "values"
    sequence: Tuple[int, ...] = ()
    threshold: int = 0
    counter_width: int = 8
    tap_depth: int = 0  # for "values": pipeline depth of the observed signal


@dataclass(frozen=True)
class PayloadSpec:
    """Payload description for one benchmark."""

    kind: str  # "psc", "rf", "lc", "dos", "bitflip"
    width: int = 64
    flip_mask: int = 1
    input_coupled: bool = True  # False => the payload never touches the input cone


@dataclass(frozen=True)
class AesTrojanSpec:
    """A complete Trust-Hub-style AES benchmark definition."""

    name: str
    trigger: TriggerSpec
    payload: PayloadSpec
    payload_label: str
    trigger_label: str
    expected_detection: str
    description: str = ""


# --------------------------------------------------------------------------- #
# Verilog generation helpers
# --------------------------------------------------------------------------- #


def _sequence_trigger(trigger: TriggerSpec) -> Tuple[List[str], str]:
    """FSM advancing on a predefined plaintext sequence (Fig. 6)."""
    states = len(trigger.sequence)
    if states < 2:
        raise DesignError("a plaintext-sequence trigger needs at least two values")
    state_width = max(1, (states).bit_length())
    lines = [f"  reg [{state_width - 1}:0] tj_seq_state;"]
    for index, value in enumerate(trigger.sequence):
        lines.append(f"  wire tj_match{index} = (state == 128'h{value:032x});")
    lines.append("  always @(posedge clk) begin")
    lines.append("    case (tj_seq_state)")
    for index in range(states):
        advance = f"{state_width}'d{index + 1}"
        lines.append(f"      {state_width}'d{index}:")
        lines.append(f"        if (tj_match{index}) tj_seq_state <= {advance};")
        if index > 0:
            lines.append(f"        else if (!tj_match{index}) tj_seq_state <= tj_seq_state;")
    lines.append(f"      {state_width}'d{states}: tj_seq_state <= tj_seq_state;")
    lines.append("      default: tj_seq_state <= tj_seq_state;")
    lines.append("    endcase")
    lines.append("  end")
    lines.append(f"  wire tj_trigger = (tj_seq_state == {state_width}'d{states});")
    return lines, "tj_trigger"


def _encryption_counter_trigger(trigger: TriggerSpec) -> Tuple[List[str], str]:
    """Counter of encryption requests (new plaintext presented)."""
    width = trigger.counter_width
    lines = [
        "  reg [127:0] tj_prev_state;",
        f"  reg [{width - 1}:0] tj_enc_count;",
        "  always @(posedge clk) begin",
        "    tj_prev_state <= state;",
        "    if (state != tj_prev_state)",
        f"      tj_enc_count <= tj_enc_count + {width}'d1;",
        "  end",
        f"  wire tj_trigger = (tj_enc_count == {width}'d{trigger.threshold});",
    ]
    return lines, "tj_trigger"


def _cycle_counter_trigger(trigger: TriggerSpec) -> Tuple[List[str], str]:
    """Free-running cycle counter; never observes the IP inputs."""
    width = trigger.counter_width
    lines = [
        f"  reg [{width - 1}:0] tj_cyc_count;",
        "  always @(posedge clk) begin",
        f"    tj_cyc_count <= tj_cyc_count + {width}'d1;",
        "  end",
        f"  wire tj_trigger = (tj_cyc_count == {width}'d{trigger.threshold});",
    ]
    return lines, "tj_trigger"


def _value_counter_trigger(trigger: TriggerSpec) -> Tuple[List[str], str]:
    """Counter of occurrences of a specific value ``tap_depth`` stages deep."""
    depth = trigger.tap_depth
    if depth < 1:
        raise DesignError("value-counter triggers need a tap depth of at least 1")
    width = trigger.counter_width
    lines = [f"  reg [7:0] tj_delay_1;"]
    lines.extend(f"  reg [7:0] tj_delay_{stage};" for stage in range(2, depth + 1))
    lines.append(f"  reg [{width - 1}:0] tj_val_count;")
    lines.append("  always @(posedge clk) begin")
    lines.append("    tj_delay_1 <= state[7:0];")
    for stage in range(2, depth + 1):
        lines.append(f"    tj_delay_{stage} <= tj_delay_{stage - 1};")
    lines.append(f"    if (tj_delay_{depth} == 8'ha5)")
    lines.append(f"      tj_val_count <= tj_val_count + {width}'d1;")
    lines.append("  end")
    lines.append(f"  wire tj_trigger = (tj_val_count == {width}'d{trigger.threshold});")
    return lines, "tj_trigger"


_TRIGGER_BUILDERS = {
    "sequence": _sequence_trigger,
    "encryptions": _encryption_counter_trigger,
    "cycles": _cycle_counter_trigger,
    "values": _value_counter_trigger,
}


def _psc_payload(payload: PayloadSpec, trigger_wire: str) -> Tuple[List[str], List[str], str]:
    """Code-spread shift register toggled with key bits (power side channel)."""
    width = payload.width
    lines = [
        f"  reg [{width - 1}:0] tj_psc_shift;",
        "  always @(posedge clk) begin",
        f"    if ({trigger_wire})",
        f"      tj_psc_shift <= {{tj_psc_shift[{width - 2}:0], key[0] ^ key[64] ^ state[0]}};",
        "    else",
        f"      tj_psc_shift <= {width}'h0;",
        "  end",
        "  assign out = core_out;",
    ]
    return [], lines, "out = core_out (leak via shift-register switching activity)"


def _rf_payload(payload: PayloadSpec, trigger_wire: str) -> Tuple[List[str], List[str], str]:
    """Key bits serialised onto an unused pin, creating an RF side channel."""
    width = payload.width
    ports = ["  output antena"]
    lines = [
        f"  reg [{max(1, (width - 1).bit_length()) - 1}:0] tj_rf_index;",
        "  reg tj_antena_reg;",
        "  always @(posedge clk) begin",
        f"    if ({trigger_wire}) begin",
        "      tj_rf_index <= tj_rf_index + 1'b1;",
        "      tj_antena_reg <= key[tj_rf_index];",
        "    end else begin",
        "      tj_antena_reg <= 1'b0;",
        "    end",
        "  end",
        "  assign antena = tj_antena_reg;",
        "  assign out = core_out;",
    ]
    return ports, lines, "key bits modulated on the unused 'antena' pin"


def _lc_payload(payload: PayloadSpec, trigger_wire: str) -> Tuple[List[str], List[str], str]:
    """Wide register bank loaded with key bits (leakage-current channel)."""
    width = payload.width
    lines = [
        f"  reg [{width - 1}:0] tj_leak_cells;",
        "  always @(posedge clk) begin",
        f"    if ({trigger_wire})",
        f"      tj_leak_cells <= key[{width - 1}:0];",
        "    else",
        f"      tj_leak_cells <= {width}'h0;",
        "  end",
        "  assign out = core_out;",
    ]
    return [], lines, "key-dependent leakage-current cells"


def _dos_payload(payload: PayloadSpec, trigger_wire: str) -> Tuple[List[str], List[str], str]:
    """Battery-draining toggle bank (denial of service)."""
    width = payload.width
    if payload.input_coupled:
        lines = [
            f"  reg [{width - 1}:0] tj_dos_toggle;",
            "  always @(posedge clk) begin",
            f"    if ({trigger_wire})",
            "      tj_dos_toggle <= ~tj_dos_toggle;",
            "  end",
            "  assign out = core_out;",
        ]
    else:
        # Payload completely outside the input fanout cone (AES-T1900): the
        # toggle bank depends only on the trigger counter and itself.
        lines = [
            f"  reg [{width - 1}:0] tj_dos_toggle;",
            "  always @(posedge clk) begin",
            f"    if ({trigger_wire})",
            "      tj_dos_toggle <= ~tj_dos_toggle;",
            "  end",
            "  assign out = core_out;",
        ]
    return [], lines, "battery-draining toggle bank"


def _bitflip_payload(payload: PayloadSpec, trigger_wire: str) -> Tuple[List[str], List[str], str]:
    """Ciphertext corruption: XOR a mask onto the output once triggered."""
    lines = [
        f"  assign out = {trigger_wire} ? (core_out ^ 128'h{payload.flip_mask:032x}) : core_out;",
    ]
    return [], lines, "ciphertext bit flip"


_PAYLOAD_BUILDERS = {
    "psc": _psc_payload,
    "rf": _rf_payload,
    "lc": _lc_payload,
    "dos": _dos_payload,
    "bitflip": _bitflip_payload,
}


def trojan_top_verilog(spec: AesTrojanSpec) -> str:
    """Verilog of the Trojan-infested top level (wraps the clean core)."""
    trigger_builder = _TRIGGER_BUILDERS.get(spec.trigger.kind)
    payload_builder = _PAYLOAD_BUILDERS.get(spec.payload.kind)
    if trigger_builder is None:
        raise DesignError(f"unknown trigger kind {spec.trigger.kind!r}")
    if payload_builder is None:
        raise DesignError(f"unknown payload kind {spec.payload.kind!r}")
    trigger_lines, trigger_wire = trigger_builder(spec.trigger)
    extra_ports, payload_lines, _ = payload_builder(spec.payload, trigger_wire)

    module_name = spec.name.lower().replace("-", "_")
    port_list = [
        "  input clk",
        "  input  [127:0] state",
        "  input  [127:0] key",
        "  output [127:0] out",
    ]
    port_list.extend(extra_ports)
    lines = [f"module {module_name}("]
    lines.append(",\n".join(port_list))
    lines.append(");")
    lines.append("  wire [127:0] core_out;")
    lines.append("  aes128 u_core (.clk(clk), .state(state), .key(key), .out(core_out));")
    lines.append("  // ---- hardware trojan: trigger ----")
    lines.extend(trigger_lines)
    lines.append("  // ---- hardware trojan: payload ----")
    lines.extend(payload_lines)
    lines.append("endmodule")
    return "\n".join(lines)


def benchmark_verilog(spec: AesTrojanSpec) -> str:
    """Complete source (core library + clean core + Trojan wrapper)."""
    return "\n\n".join([aes_library_verilog(), aes_top_verilog("aes128"), trojan_top_verilog(spec)])


def top_module_name(spec: AesTrojanSpec) -> str:
    return spec.name.lower().replace("-", "_")


# --------------------------------------------------------------------------- #
# Benchmark catalogue (one entry per Table I row)
# --------------------------------------------------------------------------- #


def _seq(*values: int) -> Tuple[int, ...]:
    return tuple(values)


_SEQ_A = _seq(0x3243F6A8885A308D313198A2E0370734, 0x00112233445566778899AABBCCDDEEFF)
_SEQ_B = _seq(
    0x0123456789ABCDEF0123456789ABCDEF,
    0xFEDCBA9876543210FEDCBA9876543210,
    0x00000000000000000000000000000001,
)
_SEQ_FIG6 = _seq(  # the 4-plaintext sequence of the AES-T1400 example (Fig. 6)
    0x3243F6A8885A308D313198A2E0370734,
    0x00112233445566778899AABBCCDDEEFF,
    0x0123456789ABCDEF0123456789ABCDEF,
    0x00000000000000000000000000000000,
)


def _spec(
    name: str,
    payload_label: str,
    trigger_label: str,
    expected: str,
    trigger: TriggerSpec,
    payload: PayloadSpec,
    description: str = "",
) -> AesTrojanSpec:
    return AesTrojanSpec(
        name=name,
        trigger=trigger,
        payload=payload,
        payload_label=payload_label,
        trigger_label=trigger_label,
        expected_detection=expected,
        description=description,
    )


AES_TROJAN_SPECS: Dict[str, AesTrojanSpec] = {
    spec.name: spec
    for spec in [
        # -- first-generation benchmarks (T100 .. T900) -------------------- #
        _spec("AES-T100", "PSC", "plaintext seq.", "init property",
              TriggerSpec("sequence", sequence=_SEQ_A), PayloadSpec("psc", width=64),
              "CDMA code-spread power side channel leaking key bits"),
        _spec("AES-T200", "PSC", "plaintext seq.", "init property",
              TriggerSpec("sequence", sequence=_SEQ_B), PayloadSpec("psc", width=32)),
        _spec("AES-T300", "PSC", "plaintext seq.", "init property",
              TriggerSpec("sequence", sequence=_SEQ_A[:2]), PayloadSpec("psc", width=128)),
        _spec("AES-T400", "RF", "plaintext seq.", "init property",
              TriggerSpec("sequence", sequence=_SEQ_B), PayloadSpec("rf", width=128)),
        _spec("AES-T500", "DoS", "plaintext seq.", "init property",
              TriggerSpec("sequence", sequence=_SEQ_A), PayloadSpec("dos", width=32)),
        _spec("AES-T600", "LC", "plaintext seq.", "init property",
              TriggerSpec("sequence", sequence=_SEQ_B), PayloadSpec("lc", width=64)),
        _spec("AES-T700", "PSC", "plaintext seq.", "init property",
              TriggerSpec("sequence", sequence=_SEQ_A), PayloadSpec("psc", width=48)),
        _spec("AES-T800", "PSC", "plaintext seq.", "init property",
              TriggerSpec("sequence", sequence=_SEQ_FIG6), PayloadSpec("psc", width=96)),
        _spec("AES-T900", "PSC", "# encryptions", "init property",
              TriggerSpec("encryptions", threshold=128, counter_width=8), PayloadSpec("psc", width=64)),
        # -- second-generation benchmarks (T1000 .. T2100) ------------------ #
        _spec("AES-T1000", "PSC", "plaintext seq.", "init property",
              TriggerSpec("sequence", sequence=_SEQ_A[:2]), PayloadSpec("psc", width=64)),
        _spec("AES-T1100", "PSC", "plaintext seq.", "init property",
              TriggerSpec("sequence", sequence=_SEQ_B), PayloadSpec("psc", width=64)),
        _spec("AES-T1200", "PSC", "# encryptions", "init property",
              TriggerSpec("encryptions", threshold=200, counter_width=10), PayloadSpec("psc", width=64)),
        _spec("AES-T1300", "PSC", "plaintext seq.", "init property",
              TriggerSpec("sequence", sequence=_SEQ_A), PayloadSpec("psc", width=80)),
        _spec("AES-T1400", "PSC", "plaintext seq.", "init property",
              TriggerSpec("sequence", sequence=_SEQ_FIG6), PayloadSpec("psc", width=64),
              "the worked example of Fig. 6: 4-state FSM trigger, round-key/PSC payload"),
        _spec("AES-T1500", "PSC", "# encryptions", "init property",
              TriggerSpec("encryptions", threshold=77, counter_width=8), PayloadSpec("psc", width=64)),
        _spec("AES-T1600", "RF", "plaintext seq.", "init property",
              TriggerSpec("sequence", sequence=_SEQ_A), PayloadSpec("rf", width=128)),
        _spec("AES-T1700", "RF", "# encryptions", "init property",
              TriggerSpec("encryptions", threshold=255, counter_width=8), PayloadSpec("rf", width=128)),
        _spec("AES-T1800", "DoS", "plaintext seq.", "init property",
              TriggerSpec("sequence", sequence=_SEQ_B), PayloadSpec("dos", width=64)),
        _spec("AES-T1900", "DoS", "# encryptions", "coverage check",
              TriggerSpec("cycles", threshold=(1 << 19), counter_width=20),
              PayloadSpec("dos", width=64, input_coupled=False),
              "trigger counter and payload lie completely outside the input fanout cone"),
        _spec("AES-T2000", "LC", "plaintext seq.", "init property",
              TriggerSpec("sequence", sequence=_SEQ_A), PayloadSpec("lc", width=128)),
        _spec("AES-T2100", "LC", "# encryptions", "init property",
              TriggerSpec("encryptions", threshold=99, counter_width=8), PayloadSpec("lc", width=64)),
        # -- ciphertext-corruption benchmarks (T2500 .. T2800) -------------- #
        _spec("AES-T2500", "bit flip", "# clock cycles", "fanout property 21",
              TriggerSpec("cycles", threshold=10, counter_width=4), PayloadSpec("bitflip", flip_mask=0x1),
              "the worked example of Fig. 7: counter-triggered LSB flip of the ciphertext"),
        _spec("AES-T2600", "bit flip", "# values", "fanout property 7",
              TriggerSpec("values", tap_depth=7, threshold=255, counter_width=8),
              PayloadSpec("bitflip", flip_mask=0x1)),
        _spec("AES-T2700", "bit flip", "# clock cycles", "fanout property 21",
              TriggerSpec("cycles", threshold=(1 << 15), counter_width=16),
              PayloadSpec("bitflip", flip_mask=0x8000000000000000)),
        _spec("AES-T2800", "bit flip", "# values", "fanout property 11",
              TriggerSpec("values", tap_depth=11, threshold=100, counter_width=8),
              PayloadSpec("bitflip", flip_mask=0x3)),
    ]
}
