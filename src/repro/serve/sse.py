"""Server-Sent Events framing (encoder + incremental parser).

The daemon streams an audit's typed run events over ``text/event-stream``
(`WHATWG HTML § 9.2`_): each frame is an optional ``id:`` line, an optional
``event:`` line, one or more ``data:`` lines, and a blank-line terminator.
The encoder here produces frames; the parser consumes a byte stream back
into ``(event, data, id)`` triples — it is what :class:`repro.serve.client
.ServeClient` and the CI smoke test use, so the two sides exercise each
other.

Only the subset the service needs is implemented (no ``retry:``, UTF-8
only), but the framing is standard: any off-the-shelf EventSource client
can consume the daemon's stream.

.. _WHATWG HTML § 9.2: https://html.spec.whatwg.org/multipage/server-sent-events.html
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, IO, Iterator, Optional

#: Event names used on the wire, beyond per-run event frames (whose name is
#: the RunEvent class name, e.g. ``CexFound``).
END_EVENT = "end"
ERROR_EVENT = "error"
STATE_EVENT = "state"
KEEPALIVE_COMMENT = b": keepalive\n\n"


def encode_event(
    data: Any, event: Optional[str] = None, event_id: Optional[int] = None
) -> bytes:
    """Encode one SSE frame; ``data`` is JSON-serialized onto ``data:`` lines."""
    lines = []
    if event_id is not None:
        lines.append(f"id: {event_id}")
    if event is not None:
        lines.append(f"event: {event}")
    payload = json.dumps(data, sort_keys=True, separators=(",", ":"))
    for chunk in payload.splitlines() or [""]:
        lines.append(f"data: {chunk}")
    return ("\n".join(lines) + "\n\n").encode("utf-8")


@dataclass(frozen=True)
class ServerEvent:
    """One parsed SSE frame."""

    event: Optional[str]
    data: str
    id: Optional[str] = None

    def json(self) -> Any:
        return json.loads(self.data)


def iter_events(stream: IO[bytes]) -> Iterator[ServerEvent]:
    """Parse an SSE byte stream into frames; stops cleanly at EOF.

    Comment lines (``:`` prefix — the daemon's keepalives) are skipped.
    Multiple ``data:`` lines concatenate with newlines, per spec.
    """
    event: Optional[str] = None
    event_id: Optional[str] = None
    data_lines: list = []
    for raw in stream:
        line = raw.decode("utf-8", errors="replace").rstrip("\r\n")
        if not line:
            if data_lines:
                yield ServerEvent(event=event, data="\n".join(data_lines), id=event_id)
            event, event_id, data_lines = None, None, []
            continue
        if line.startswith(":"):
            continue
        field, _, value = line.partition(":")
        if value.startswith(" "):
            value = value[1:]
        if field == "event":
            event = value
        elif field == "data":
            data_lines.append(value)
        elif field == "id":
            event_id = value
    if data_lines:
        yield ServerEvent(event=event, data="\n".join(data_lines), id=event_id)
