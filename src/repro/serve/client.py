"""Typed stdlib client of the audit daemon.

:class:`ServeClient` wraps :mod:`urllib.request` so scripts (and the
``repro submit`` subcommand, and the CI smoke test) talk to ``repro serve``
without a third-party HTTP library::

    from repro.serve.client import ServeClient

    client = ServeClient("http://127.0.0.1:8321", token="ci")
    handle = client.submit({"benchmark": "RS232-T1000"})
    for event in client.stream_events(handle["job"]["id"]):
        print(type(event).__name__)
    report = client.report(handle["job"]["id"])   # a DetectionReport

The event stream yields the same typed :class:`repro.api.events.RunEvent`
objects a local :meth:`DetectionSession.iter_results` does — decoded from
the SSE feed via the event wire format — so streaming consumers are
source-compatible between in-process and served audits.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, Optional

from repro.core.events import RunEvent, event_from_dict
from repro.core.report import DetectionReport
from repro.errors import ReproError
from repro.serve import sse


class ServeError(ReproError):
    """An HTTP-level failure talking to the daemon."""

    def __init__(self, message: str, status: Optional[int] = None) -> None:
        super().__init__(message)
        self.status = status


class AuditFailedError(ServeError):
    """The daemon reported the audit job itself as failed."""


class ServeClient:
    """Minimal blocking client of one audit daemon."""

    def __init__(self, base_url: str, token: Optional[str] = None, timeout: float = 60.0) -> None:
        self._base = base_url.rstrip("/")
        self._token = token
        self._timeout = timeout

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def _request(
        self,
        path: str,
        body: Optional[Dict[str, Any]] = None,
        stream: bool = False,
        timeout: Optional[float] = None,
    ):
        headers = {"Accept": "application/json"}
        if self._token:
            headers["X-Repro-Token"] = self._token
        data = None
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self._base + path, data=data, headers=headers
        )
        try:
            response = urllib.request.urlopen(
                request, timeout=self._timeout if timeout is None else timeout
            )
        except urllib.error.HTTPError as error:
            detail = ""
            try:
                payload = json.loads(error.read().decode("utf-8"))
                detail = payload.get("error", "")
            except (ValueError, OSError):
                pass
            raise ServeError(
                f"{path}: HTTP {error.code}" + (f": {detail}" if detail else ""),
                status=error.code,
            ) from error
        except urllib.error.URLError as error:
            raise ServeError(f"{path}: {error.reason}") from error
        if stream:
            return response
        with response:
            return json.loads(response.read().decode("utf-8"))

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #

    def health(self) -> Dict[str, Any]:
        return self._request("/v1/health")

    def stats(self) -> Dict[str, Any]:
        return self._request("/v1/stats")

    def jobs(self) -> Dict[str, Any]:
        return self._request("/v1/audits")

    def job(self, job_id: str) -> Dict[str, Any]:
        return self._request(f"/v1/audits/{job_id}")

    def submit(self, submission: Dict[str, Any]) -> Dict[str, Any]:
        """POST one submission body; returns ``{"job": ..., "deduplicated": ...}``."""
        return self._request("/v1/audits", body=submission)

    def report_dict(self, job_id: str) -> Dict[str, Any]:
        return self._request(f"/v1/audits/{job_id}/report")

    def report(self, job_id: str) -> DetectionReport:
        return DetectionReport.from_dict(self.report_dict(job_id))

    def stream_events(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Iterator[RunEvent]:
        """Stream the job's run events live, as typed event objects.

        Terminates when the daemon sends the ``end`` frame; raises
        :class:`AuditFailedError` on the ``error`` frame.  Frames that are
        not run events (the initial ``state`` frame, keepalives) are
        skipped.
        """
        response = self._request(
            f"/v1/audits/{job_id}/events",
            stream=True,
            timeout=timeout if timeout is not None else max(self._timeout, 600.0),
        )
        with response:
            for frame in sse.iter_events(response):
                if frame.event == sse.END_EVENT:
                    return
                if frame.event == sse.ERROR_EVENT:
                    payload = frame.json()
                    raise AuditFailedError(
                        f"job {job_id} failed: {payload.get('error')}"
                    )
                if frame.event == sse.STATE_EVENT or frame.event is None:
                    continue
                yield event_from_dict(frame.json())
        raise ServeError(f"event stream of job {job_id} ended without an end frame")

    def wait(self, job_id: str, timeout: float = 600.0, poll_s: float = 0.25) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the job dict."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in ("done", "failed"):
                return job
            if time.monotonic() >= deadline:
                raise ServeError(
                    f"job {job_id} still {job['state']} after {timeout:.0f}s"
                )
            time.sleep(poll_s)
