"""The audit daemon: HTTP front end, worker pool, shared warm cache.

``repro serve`` runs one :class:`AuditServer`: a stdlib
:class:`http.server.ThreadingHTTPServer` front end over the persistent
:class:`repro.serve.queue.JobQueue`, with ``--jobs`` worker threads pulling
claimed jobs through the existing scheduler/executor stack.  Every audit is
forced to ``jobs=1`` internally — the worker pool is the parallelism, and
forking solver processes out of a multi-threaded daemon is a correctness
hazard — and every audit shares one warm
:class:`repro.exec.cache.ResultCache` instance, so a resubmitted design (or
a journal-recovered job after a crash) replays its settled property classes
instead of re-solving them.

Endpoints (all JSON unless noted)::

    GET  /v1/health               liveness + protocol/schema versions
    GET  /v1/stats                daemon counters, queue + cache stats
    POST /v1/audits               submit an audit (returns the job, 429 on quota)
    GET  /v1/audits               list jobs
    GET  /v1/audits/<id>          one job
    GET  /v1/audits/<id>/events   live Server-Sent-Events stream of run events
    GET  /v1/audits/<id>/report   the finished schema-v5 detection report
    GET  /metrics                 Prometheus text exposition (queue, cache,
                                  solver and job counters; not JSON)

Live SSE streams additionally carry transient ``SolverProgress`` heartbeats
emitted by the solver every few thousand conflicts, so a client watching a
hard solve sees it move; heartbeats are never journaled and never appear in
terminal-job replays.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time as _time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import urlsplit

from repro.core.events import RunFinished
from repro.core.report import SCHEMA_VERSION
from repro.errors import ReproError
from repro.exec.cache import ResultCache
from repro.exec.executor import create_executor
from repro.exec.scheduler import DesignPlan, run_plans
from repro.obs.metrics import MetricsRegistry
from repro.obs.progress import progress_sink
from repro.serve import sse
from repro.serve.protocol import (
    SERVE_PROTOCOL_VERSION,
    ProtocolError,
    QuotaExceededError,
    build_design,
    effective_config,
    prepare_submission,
    submission_from_dict,
)
from repro.serve.queue import DEFAULT_LEASE_S, JobQueue

logger = logging.getLogger("repro.serve")

#: Reject submission bodies larger than this (a full Verilog design fits
#: comfortably; anything bigger is a client bug or abuse).
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Seconds of stream inactivity between SSE keepalive comments.
KEEPALIVE_INTERVAL_S = 15.0


class _JobRuntime:
    """Live event feed of one running job, shared worker -> streamers.

    The worker appends wire payloads as the scheduler yields events; any
    number of SSE streamers replay from index 0 and block on the condition
    for more.  Once finished, the journal owns the durable copy and this
    object only confirms completion to already-attached streamers.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._more = threading.Condition(self._lock)
        self._events: List[Dict[str, Any]] = []
        self._finished = False

    def append(self, payload: Dict[str, Any]) -> None:
        with self._lock:
            self._events.append(payload)
            self._more.notify_all()

    def finish(self) -> None:
        with self._lock:
            self._finished = True
            self._more.notify_all()

    def wait_beyond(self, index: int, timeout: float) -> Tuple[List[Dict[str, Any]], bool]:
        """Events past ``index`` (may be empty after ``timeout``), + finished."""
        with self._lock:
            if len(self._events) <= index and not self._finished:
                self._more.wait(timeout=timeout)
            return list(self._events[index:]), self._finished


class AuditServer:
    """The long-lived detection service (see module docstring)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        queue_dir: str = ".repro-serve",
        jobs: int = 2,
        cache_dir: Optional[str] = None,
        use_cache: bool = True,
        default_quota: int = 0,
        quotas: Optional[Dict[str, int]] = None,
        max_body_bytes: int = MAX_BODY_BYTES,
        owner: Optional[str] = None,
        lease_s: float = DEFAULT_LEASE_S,
    ) -> None:
        """``jobs`` is the worker-thread count; ``0`` accepts jobs without
        running them (journal-only mode, for handover/testing).  The result
        cache defaults to ``<queue_dir>/cache``.  ``owner``/``lease_s``
        name this daemon on lease files and set the claim lease duration —
        several daemons pointed at one ``queue_dir`` share the work, each
        job running exactly once."""
        self._host = host
        self._requested_port = port
        self._jobs = max(0, jobs)
        self._use_cache = use_cache
        self._cache_dir = cache_dir or os.path.join(queue_dir, "cache")
        self._max_body_bytes = max_body_bytes
        self.queue = JobQueue(
            queue_dir,
            default_quota=default_quota,
            quotas=quotas,
            owner=owner,
            lease_s=lease_s,
        )
        self.cache: Optional[ResultCache] = (
            ResultCache(self._cache_dir) if use_cache else None
        )
        self._runtimes: Dict[str, _JobRuntime] = {}
        self._runtimes_lock = threading.Lock()
        self._counters = {"submitted": 0, "deduplicated": 0, "completed": 0, "failed": 0}
        self._counters_lock = threading.Lock()
        #: Jobs this daemon is executing right now (lease heartbeats).
        self._active_jobs: set = set()
        self._active_lock = threading.Lock()
        #: Last queue counter values already folded into the metrics, so the
        #: maintenance loop can export monotonic deltas.
        self._queue_counter_base = {"corrupt_journals": 0, "leases_expired": 0}
        self.metrics = MetricsRegistry()
        self._register_metrics()
        self._reconcile_queue_counters()
        self._stopping = threading.Event()
        self._workers: List[threading.Thread] = []
        self._maintenance_thread: Optional[threading.Thread] = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None

    def _register_metrics(self) -> None:
        """Pre-declare every series so a scrape before the first job already
        sees them at zero (Prometheus counters must exist to be monotonic)."""
        metrics = self.metrics
        for state in ("submitted", "deduplicated", "completed", "failed"):
            metrics.counter(f"repro_jobs_{state}_total", f"Jobs {state} since daemon start")
        metrics.gauge(
            "repro_queue_depth",
            "Jobs currently waiting in the queue",
            fn=self.queue.queued_depth,
        )
        metrics.histogram(
            "repro_queue_wait_seconds", "Seconds jobs waited between submit and claim"
        )
        metrics.histogram(
            "repro_audit_run_seconds", "Wall seconds per audit, claim to verdict"
        )
        metrics.counter("repro_cache_hits_total", "Result-cache class replays")
        metrics.counter("repro_cache_misses_total", "Result-cache class misses")
        metrics.counter("repro_solver_conflicts_total", "CDCL conflicts across served audits")
        metrics.counter("repro_solver_restarts_total", "CDCL restarts across served audits")
        metrics.counter(
            "repro_solver_learned_clauses_total", "Learned clauses across served audits"
        )
        metrics.counter(
            "repro_preprocess_nodes_removed_total",
            "AIG cone nodes removed by preprocessing across served audits",
        )
        metrics.counter(
            "repro_classes_split_total",
            "Property classes fanned out into cube tasks across served audits",
        )
        metrics.counter(
            "repro_cubes_total", "Cube tasks reduced across served audits"
        )
        metrics.counter(
            "repro_cubes_cached_total",
            "Cube verdicts replayed from the result cache across served audits",
        )
        metrics.counter(
            "repro_workers_lost_total",
            "Pool worker processes lost mid-task across served audits",
        )
        metrics.counter(
            "repro_tasks_retried_total",
            "Tasks re-queued after a worker loss across served audits",
        )
        metrics.counter(
            "repro_leases_expired_total",
            "Job leases this daemon reaped or stole after expiry",
        )
        metrics.counter(
            "repro_journal_corrupt_total",
            "Corrupt or unreadable job journals skipped (counted, never silent)",
        )

    def _reconcile_queue_counters(self) -> None:
        """Export the queue's fault counters as monotonic metric deltas."""
        for attr, metric in (
            ("corrupt_journals", "repro_journal_corrupt_total"),
            ("leases_expired", "repro_leases_expired_total"),
        ):
            current = int(getattr(self.queue, attr))
            delta = current - self._queue_counter_base[attr]
            if delta > 0:
                self.metrics.inc(metric, delta)
                self._queue_counter_base[attr] = current

    # ------------------------------------------------------------------ #
    # life cycle
    # ------------------------------------------------------------------ #

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` after :meth:`start`)."""
        if self._httpd is None:
            return self._requested_port
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self._host}:{self.port}"

    def start(self) -> None:
        handler = _make_handler(self)
        self._httpd = ThreadingHTTPServer((self._host, self._requested_port), handler)
        self._httpd.daemon_threads = True
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve-http", daemon=True
        )
        self._http_thread.start()
        for index in range(self._jobs):
            worker = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{index}", daemon=True
            )
            worker.start()
            self._workers.append(worker)
        self._maintenance_thread = threading.Thread(
            target=self._maintenance_loop, name="repro-serve-maintenance", daemon=True
        )
        self._maintenance_thread.start()
        logger.info(
            "serving on %s (%d worker(s), %d job(s) recovered from journal)",
            self.url,
            self._jobs,
            self.queue.recovered_jobs,
        )

    def stop(self) -> None:
        self._stopping.set()
        self.queue.close()
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
        for worker in self._workers:
            worker.join(timeout=10.0)
        if self._maintenance_thread is not None:
            self._maintenance_thread.join(timeout=10.0)
        if self._http_thread is not None:
            self._http_thread.join(timeout=10.0)

    def serve_forever(self) -> None:
        """:meth:`start` + block until interrupted (the CLI entry point)."""
        self.start()
        try:
            while not self._stopping.wait(timeout=0.5):
                pass
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    # ------------------------------------------------------------------ #
    # workers
    # ------------------------------------------------------------------ #

    def _runtime_for(self, job_id: str) -> _JobRuntime:
        with self._runtimes_lock:
            runtime = self._runtimes.get(job_id)
            if runtime is None:
                runtime = self._runtimes[job_id] = _JobRuntime()
            return runtime

    def _worker_loop(self) -> None:
        # Transient claim failures (a full disk, a queue-dir hiccup on
        # shared storage) retry with capped exponential backoff instead of
        # spinning or killing the worker thread.
        backoff = 0.0
        while not self._stopping.is_set():
            try:
                job = self.queue.claim(timeout=0.25)
            except (OSError, ReproError):
                backoff = min(5.0, backoff * 2 if backoff else 0.1)
                logger.warning(
                    "claim failed; retrying in %.1fs", backoff, exc_info=True
                )
                self._stopping.wait(backoff)
                continue
            backoff = 0.0
            if job is None:
                continue
            try:
                self._run_audit(job)
            except Exception:  # pragma: no cover - defensive backstop
                logger.exception("worker crashed on job %s", job.id)

    def _maintenance_loop(self) -> None:
        """Heartbeat + reaper: renew our leases, adopt orphaned jobs.

        Runs every ``lease_s / 3`` seconds so a healthy daemon renews each
        lease twice before it can expire, while a crashed peer's jobs are
        re-queued at most one lease period after the crash.
        """
        interval = max(0.2, self.queue.lease_s / 3.0)
        while not self._stopping.wait(timeout=interval):
            with self._active_lock:
                active = list(self._active_jobs)
            for job_id in active:
                try:
                    if not self.queue.renew_lease(job_id):
                        logger.warning(
                            "lost the lease on job %s (reaped by a peer daemon); "
                            "its result here will be discarded",
                            job_id,
                        )
                except OSError:
                    logger.warning("lease renewal failed for job %s", job_id, exc_info=True)
            try:
                self.queue.reap_expired()
            except OSError:  # pragma: no cover - defensive (shared-fs hiccup)
                logger.warning("lease reap pass failed", exc_info=True)
            self._reconcile_queue_counters()

    def _run_audit(self, job) -> None:
        runtime = self._runtime_for(job.id)
        with self._active_lock:
            self._active_jobs.add(job.id)
        events: List[Dict[str, Any]] = []
        if job.started_s is not None and job.created_s:
            self.metrics.observe(
                "repro_queue_wait_seconds", max(0.0, job.started_s - job.created_s)
            )
        run_started = _time.perf_counter()
        elapsed_observed = False
        try:
            submission = submission_from_dict(job.submission)
            design = build_design(submission)
            config = effective_config(
                design, submission, self._cache_dir, self._use_cache
            )
            golden = design.golden_module() if config.mode == "sequential" else None
            plan = DesignPlan.build(
                key=job.id,
                name=design.name,
                module=design.module,
                config=config,
                cache=self.cache,
                golden=golden,
            )
            executor = create_executor(1, {plan.key: plan.work_unit})
            report: Optional[Dict[str, Any]] = None
            # Solver heartbeats feed the live SSE stream only: they are
            # transient progress, never journaled with the run's events.
            with progress_sink(lambda event: runtime.append(event.to_dict())):
                for event in run_plans([plan], executor):
                    payload = event.to_dict()
                    events.append(payload)
                    runtime.append(payload)
                    if isinstance(event, RunFinished):
                        report = event.report.to_dict()
            # Record every metric before queue.finish publishes the terminal
            # state: a client that saw the job finish (and immediately
            # scraped /metrics) must already find it counted.
            elapsed_observed = True
            self.metrics.observe(
                "repro_audit_run_seconds", _time.perf_counter() - run_started
            )
            self._bump("completed")
            self._observe_report(report)
            self.queue.finish(job.id, report, events)
            logger.info("job %s done (%s)", job.id, job.design_name)
        except Exception as error:
            if not elapsed_observed:
                self.metrics.observe(
                    "repro_audit_run_seconds", _time.perf_counter() - run_started
                )
            self._bump("failed")
            self.queue.fail(job.id, f"{type(error).__name__}: {error}", events)
            logger.exception("job %s failed", job.id)
        finally:
            with self._active_lock:
                self._active_jobs.discard(job.id)
            # The runtime stays registered: late-attaching streamers of a
            # finished job replay the journal, but one that raced the
            # completion still needs the finished flag to terminate.
            runtime.finish()

    def _bump(self, counter: str) -> None:
        with self._counters_lock:
            self._counters[counter] += 1
        self.metrics.inc(f"repro_jobs_{counter}_total")

    def _observe_report(self, report: Optional[Dict[str, Any]]) -> None:
        """Fold one finished report's accounting into the daemon counters."""
        if not report:
            return
        solver = report.get("solver") or {}
        self.metrics.inc("repro_solver_conflicts_total", solver.get("conflicts", 0))
        self.metrics.inc("repro_solver_restarts_total", solver.get("restarts", 0))
        self.metrics.inc(
            "repro_solver_learned_clauses_total", solver.get("learned_clauses", 0)
        )
        execution = report.get("execution") or {}
        self.metrics.inc("repro_cache_hits_total", execution.get("cache_hits", 0))
        self.metrics.inc("repro_cache_misses_total", execution.get("cache_misses", 0))
        self.metrics.inc("repro_workers_lost_total", execution.get("workers_lost", 0))
        self.metrics.inc("repro_tasks_retried_total", execution.get("tasks_retried", 0))
        preprocess = report.get("preprocess") or {}
        removed = preprocess.get("nodes_before", 0) - preprocess.get("nodes_after", 0)
        if removed > 0:
            self.metrics.inc("repro_preprocess_nodes_removed_total", removed)
        outcomes = report.get("outcomes") or []
        split_classes = sum(1 for outcome in outcomes if outcome.get("cubes", 0) > 1)
        if split_classes:
            self.metrics.inc("repro_classes_split_total", split_classes)
            self.metrics.inc(
                "repro_cubes_total", sum(o.get("cubes", 0) for o in outcomes)
            )
            self.metrics.inc(
                "repro_cubes_cached_total",
                sum(o.get("cubes_cached", 0) for o in outcomes),
            )

    # ------------------------------------------------------------------ #
    # request-side helpers (called from handler threads)
    # ------------------------------------------------------------------ #

    def submit(self, body: Dict[str, Any], header_token: Optional[str]) -> Tuple[Dict[str, Any], bool]:
        """Admit one POST body; returns ``(response_dict, deduplicated)``."""
        submission, design, config, fingerprint = prepare_submission(
            body, self._cache_dir, self._use_cache
        )
        token = header_token if header_token is not None else submission.token
        stored = submission.to_dict()
        stored["token"] = token
        job, deduplicated = self.queue.submit(
            fingerprint,
            stored,
            design_name=design.name,
            mode=config.mode,
            priority=submission.priority,
            token=token,
        )
        self._bump("deduplicated" if deduplicated else "submitted")
        return (
            {
                "protocol": SERVE_PROTOCOL_VERSION,
                "job": job.summary_dict(),
                "deduplicated": deduplicated,
            },
            deduplicated,
        )

    def stats(self) -> Dict[str, Any]:
        with self._counters_lock:
            counters = dict(self._counters)
        data = {
            "protocol": SERVE_PROTOCOL_VERSION,
            "report_schema": SCHEMA_VERSION,
            "workers": self._jobs,
            "counters": counters,
            "queue": self.queue.stats(),
        }
        if self.cache is not None:
            data["cache"] = self.cache.stats()
        return data


def _make_handler(server: AuditServer):
    """Bind a request-handler class to one :class:`AuditServer`."""

    class Handler(BaseHTTPRequestHandler):
        server_version = "repro-serve/" + str(SERVE_PROTOCOL_VERSION)

        # -------------------------------------------------------------- #
        # plumbing
        # -------------------------------------------------------------- #

        def log_message(self, format: str, *args) -> None:  # noqa: A002
            logger.debug("%s - %s", self.address_string(), format % args)

        def _send_json(self, status: int, payload: Dict[str, Any]) -> None:
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _send_error_json(self, status: int, message: str) -> None:
            self._send_json(status, {"error": message})

        def _send_metrics(self) -> None:
            body = server.metrics.render().encode("utf-8")
            self.send_response(200)
            self.send_header(
                "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
            )
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        # -------------------------------------------------------------- #
        # routing
        # -------------------------------------------------------------- #

        def do_GET(self) -> None:  # noqa: N802
            try:
                path = urlsplit(self.path).path.rstrip("/")
                if path == "/v1/health":
                    self._send_json(
                        200,
                        {
                            "status": "ok",
                            "protocol": SERVE_PROTOCOL_VERSION,
                            "report_schema": SCHEMA_VERSION,
                        },
                    )
                elif path == "/v1/stats":
                    self._send_json(200, server.stats())
                elif path == "/metrics":
                    self._send_metrics()
                elif path == "/v1/audits":
                    self._send_json(
                        200,
                        {"jobs": [job.summary_dict() for job in server.queue.jobs()]},
                    )
                elif path.startswith("/v1/audits/"):
                    parts = path[len("/v1/audits/"):].split("/")
                    if len(parts) == 1:
                        self._get_job(parts[0])
                    elif len(parts) == 2 and parts[1] == "report":
                        self._get_report(parts[0])
                    elif len(parts) == 2 and parts[1] == "events":
                        self._stream_events(parts[0])
                    else:
                        self._send_error_json(404, f"no such endpoint: {path}")
                else:
                    self._send_error_json(404, f"no such endpoint: {path}")
            except (BrokenPipeError, ConnectionResetError):
                pass
            except Exception as error:  # pragma: no cover - defensive
                logger.exception("GET %s failed", self.path)
                try:
                    self._send_error_json(500, f"internal error: {error}")
                except OSError:
                    pass

        def do_POST(self) -> None:  # noqa: N802
            try:
                path = urlsplit(self.path).path.rstrip("/")
                if path != "/v1/audits":
                    self._send_error_json(404, f"no such endpoint: {path}")
                    return
                self._post_audit()
            except (BrokenPipeError, ConnectionResetError):
                pass
            except Exception as error:  # pragma: no cover - defensive
                logger.exception("POST %s failed", self.path)
                try:
                    self._send_error_json(500, f"internal error: {error}")
                except OSError:
                    pass

        # -------------------------------------------------------------- #
        # endpoints
        # -------------------------------------------------------------- #

        def _post_audit(self) -> None:
            length = int(self.headers.get("Content-Length") or 0)
            if length > server._max_body_bytes:
                self._send_error_json(
                    413, f"submission body exceeds {server._max_body_bytes} bytes"
                )
                return
            raw = self.rfile.read(length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, ValueError) as error:
                self._send_error_json(400, f"submission body is not valid JSON: {error}")
                return
            header_token = self.headers.get("X-Repro-Token")
            try:
                payload, deduplicated = server.submit(body, header_token)
            except QuotaExceededError as error:
                self._send_error_json(429, str(error))
                return
            except ReproError as error:
                self._send_error_json(400, str(error))
                return
            self._send_json(200 if deduplicated else 201, payload)

        def _get_job(self, job_id: str) -> None:
            job = server.queue.get(job_id)
            if job is None:
                self._send_error_json(404, f"unknown job {job_id!r}")
                return
            self._send_json(200, job.summary_dict())

        def _get_report(self, job_id: str) -> None:
            job = server.queue.get(job_id)
            if job is None:
                self._send_error_json(404, f"unknown job {job_id!r}")
                return
            if job.state != "done":
                self._send_json(
                    409,
                    {
                        "error": f"job {job_id} is {job.state}, no report yet"
                        + (f": {job.error}" if job.error else ""),
                        "state": job.state,
                    },
                )
                return
            report = server.queue.report_for(job_id)
            if report is None:  # pragma: no cover - done jobs always store one
                self._send_error_json(500, f"job {job_id} finished without a report")
                return
            self._send_json(200, report)

        def _stream_events(self, job_id: str) -> None:
            job = server.queue.get(job_id)
            if job is None:
                self._send_error_json(404, f"unknown job {job_id!r}")
                return
            self.send_response(200)
            self.send_header("Content-Type", "text/event-stream")
            self.send_header("Cache-Control", "no-cache")
            self.end_headers()
            # Streams run on HTTP/1.0 semantics: no Content-Length, the
            # closed connection marks the end of the stream.
            self.wfile.write(
                sse.encode_event(job.summary_dict(), event=sse.STATE_EVENT)
            )
            if job.terminal:
                self._replay_terminal(job_id)
                return
            self._stream_live(job_id)

        def _replay_terminal(self, job_id: str) -> None:
            job = server.queue.get(job_id)
            for index, payload in enumerate(server.queue.events_for(job_id)):
                self.wfile.write(
                    sse.encode_event(
                        payload, event=payload.get("event"), event_id=index
                    )
                )
            self._finish_stream(job)

        def _stream_live(self, job_id: str) -> None:
            runtime = server._runtime_for(job_id)
            index = 0
            while True:
                payloads, finished = runtime.wait_beyond(
                    index, timeout=KEEPALIVE_INTERVAL_S
                )
                for payload in payloads:
                    self.wfile.write(
                        sse.encode_event(
                            payload, event=payload.get("event"), event_id=index
                        )
                    )
                    index += 1
                if finished and not payloads:
                    break
                if not payloads:
                    self.wfile.write(sse.KEEPALIVE_COMMENT)
                self.wfile.flush()
            self._finish_stream(server.queue.get(job_id))

        def _finish_stream(self, job) -> None:
            if job is not None and job.state == "failed":
                self.wfile.write(
                    sse.encode_event(
                        {"job": job.id, "error": job.error}, event=sse.ERROR_EVENT
                    )
                )
            else:
                summary = job.summary_dict() if job is not None else {}
                self.wfile.write(sse.encode_event(summary, event=sse.END_EVENT))
            self.wfile.flush()

    return Handler
