"""Persistent, priority-ordered job queue of the audit daemon.

Every job lives in one journal file, ``<root>/jobs/<id>.json``::

    {"serve_schema": 1,
     "job":     {... Job.to_dict() ...},
     "events":  [... RunEvent.to_dict() payloads, once finished ...],
     "report":  {... DetectionReport.to_dict(), once finished ...}}

Journal writes reuse the result cache's crash-safety discipline
(:mod:`repro.exec.cache`): serialize to a temp file in the same directory,
``os.replace`` into place.  A reader therefore sees either the previous
record or the new one, never a torn write — which is what makes restart
recovery trivial: on startup :meth:`JobQueue.recover` walks the journal and
re-queues every ``queued``/``running`` job (the daemon died mid-audit), while
``done``/``failed`` jobs keep serving their stored events and reports.

The in-memory side is a priority heap ordered by ``(-priority, seq)`` —
higher client priority first, FIFO within a priority — guarded by one lock
and a condition variable that :meth:`claim` blocks on.  Deduplication is a
fingerprint index consulted *before* enqueue: a submission whose fingerprint
matches a live (non-failed) job attaches to it instead of creating work.
"""

from __future__ import annotations

import heapq
import json
import logging
import os
import tempfile
import threading
import uuid
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.serve.protocol import (
    Job,
    QUEUE_SCHEMA_VERSION,
    QuotaExceededError,
    now_s,
)

logger = logging.getLogger("repro.serve.queue")


class JobQueue:
    """Journaled job store + priority queue (thread-safe, multi-reader)."""

    def __init__(
        self,
        root: str,
        default_quota: int = 0,
        quotas: Optional[Dict[str, int]] = None,
    ) -> None:
        """``root`` is the queue directory (created on demand).

        ``default_quota`` caps how many *incomplete* (queued or running)
        jobs one client token may hold at once; ``0`` means unlimited.
        ``quotas`` overrides the cap per token.
        """
        self._root = root
        self._jobs_dir = os.path.join(root, "jobs")
        os.makedirs(self._jobs_dir, exist_ok=True)
        self._default_quota = default_quota
        self._quotas = dict(quotas or {})
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._events: Dict[str, List[Dict[str, Any]]] = {}
        self._reports: Dict[str, Optional[Dict[str, Any]]] = {}
        self._by_fingerprint: Dict[str, str] = {}
        self._heap: List[Tuple[int, int, str]] = []
        self._seq = 0
        self._closed = False
        self._recovered = self._load()

    # ------------------------------------------------------------------ #
    # journal I/O
    # ------------------------------------------------------------------ #

    def _journal_path(self, job_id: str) -> str:
        return os.path.join(self._jobs_dir, f"{job_id}.json")

    def _write_journal_locked(self, job: Job) -> None:
        record = {
            "serve_schema": QUEUE_SCHEMA_VERSION,
            "job": job.to_dict(),
            "events": self._events.get(job.id, []),
            "report": self._reports.get(job.id),
        }
        payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
        fd, tmp_path = tempfile.mkstemp(
            prefix=f".{job.id}-", suffix=".tmp", dir=self._jobs_dir
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_path, self._journal_path(job.id))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def _load(self) -> int:
        """Replay the journal; returns how many incomplete jobs were re-queued."""
        recovered = 0
        for entry in sorted(os.listdir(self._jobs_dir)):
            if not entry.endswith(".json"):
                continue
            path = os.path.join(self._jobs_dir, entry)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    record = json.load(handle)
                if record.get("serve_schema") != QUEUE_SCHEMA_VERSION:
                    logger.warning("ignoring journal %s: schema mismatch", entry)
                    continue
                job = Job.from_dict(record["job"])
            except (OSError, ValueError, KeyError, ReproError) as error:
                logger.warning("ignoring corrupt journal %s: %s", entry, error)
                continue
            if job.state == "running" or job.state == "queued":
                if job.state == "running":
                    job.restarts += 1
                job.state = "queued"
                job.started_s = None
                recovered += 1
            self._jobs[job.id] = job
            self._events[job.id] = record.get("events") or []
            self._reports[job.id] = record.get("report")
            if job.state != "failed":
                self._by_fingerprint.setdefault(job.fingerprint, job.id)
            if job.state == "queued":
                self._push_locked(job)
                self._write_journal_locked(job)
        if recovered:
            logger.info("recovered %d incomplete job(s) from the journal", recovered)
        return recovered

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def _push_locked(self, job: Job) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (-job.priority, self._seq, job.id))

    def _quota_for(self, token: str) -> int:
        return self._quotas.get(token, self._default_quota)

    def _incomplete_for_token_locked(self, token: str) -> int:
        return sum(
            1
            for job in self._jobs.values()
            if job.token == token and not job.terminal
        )

    def submit(
        self,
        fingerprint: str,
        submission: Dict[str, Any],
        design_name: str,
        mode: str,
        priority: int = 0,
        token: str = "",
    ) -> Tuple[Job, bool]:
        """Admit one submission; returns ``(job, deduplicated)``.

        A matching live fingerprint attaches to the existing job — the
        attachment still counts a submission and may *raise* the job's
        priority (never lower it), so an urgent resubmission jumps the
        queue.  Failed jobs do not absorb resubmissions: a client retrying
        a failed audit gets a fresh job.
        """
        with self._lock:
            if self._closed:
                raise ReproError("job queue is closed")
            existing_id = self._by_fingerprint.get(fingerprint)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if not (existing.state == "failed"):
                    existing.submissions += 1
                    if priority > existing.priority:
                        existing.priority = priority
                        if existing.state == "queued":
                            self._push_locked(existing)
                    self._write_journal_locked(existing)
                    self._available.notify_all()
                    return existing, True
            quota = self._quota_for(token)
            if quota > 0 and self._incomplete_for_token_locked(token) >= quota:
                raise QuotaExceededError(
                    f"token {token or '<anonymous>'!r} already has {quota} "
                    f"incomplete job(s); wait for one to finish"
                )
            job = Job(
                id=uuid.uuid4().hex[:12],
                fingerprint=fingerprint,
                state="queued",
                submission=dict(submission),
                design_name=design_name,
                mode=mode,
                priority=priority,
                token=token,
                created_s=now_s(),
            )
            self._jobs[job.id] = job
            self._events[job.id] = []
            self._reports[job.id] = None
            self._by_fingerprint[fingerprint] = job.id
            self._push_locked(job)
            self._write_journal_locked(job)
            self._available.notify()
            return job, False

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #

    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the highest-priority queued job and mark it running.

        Blocks up to ``timeout`` seconds (forever when ``None``); returns
        ``None`` on timeout or queue shutdown.
        """
        with self._lock:
            while True:
                job = self._pop_locked()
                if job is not None:
                    job.state = "running"
                    job.started_s = now_s()
                    self._write_journal_locked(job)
                    return job
                if self._closed:
                    return None
                if not self._available.wait(timeout=timeout):
                    return None

    def _pop_locked(self) -> Optional[Job]:
        while self._heap:
            neg_priority, _, job_id = heapq.heappop(self._heap)
            job = self._jobs.get(job_id)
            # Skip stale heap entries: the job was claimed already, or a
            # priority bump re-pushed it with a better key.
            if job is None or job.state != "queued" or -neg_priority != job.priority:
                continue
            return job
        return None

    def finish(
        self,
        job_id: str,
        report: Optional[Dict[str, Any]],
        events: List[Dict[str, Any]],
    ) -> Job:
        with self._lock:
            job = self._require_locked(job_id)
            job.state = "done"
            job.finished_s = now_s()
            job.error = None
            self._events[job_id] = list(events)
            self._reports[job_id] = report
            self._write_journal_locked(job)
            self._available.notify_all()
            return job

    def fail(self, job_id: str, error: str, events: Optional[List[Dict[str, Any]]] = None) -> Job:
        with self._lock:
            job = self._require_locked(job_id)
            job.state = "failed"
            job.finished_s = now_s()
            job.error = error
            if events is not None:
                self._events[job_id] = list(events)
            # Failed jobs stop absorbing resubmissions so retries re-run.
            if self._by_fingerprint.get(job.fingerprint) == job_id:
                del self._by_fingerprint[job.fingerprint]
            self._write_journal_locked(job)
            self._available.notify_all()
            return job

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def _require_locked(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ReproError(f"unknown job {job_id!r}")
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.created_s)

    def events_for(self, job_id: str) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events.get(job_id, []))

    def report_for(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            report = self._reports.get(job_id)
            return dict(report) if report is not None else None

    @property
    def recovered_jobs(self) -> int:
        """How many incomplete jobs the constructor replayed from disk."""
        return self._recovered

    def queued_depth(self) -> int:
        """Jobs currently waiting to be claimed (the ``/metrics`` gauge)."""
        with self._lock:
            return sum(1 for job in self._jobs.values() if job.state == "queued")

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            counts = {state: 0 for state in ("queued", "running", "done", "failed")}
            for job in self._jobs.values():
                counts[job.state] += 1
            return {
                "jobs": len(self._jobs),
                "by_state": counts,
                "recovered": self._recovered,
            }

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is queued or running (True) or timeout (False)."""
        deadline = None if timeout is None else now_s() + timeout
        with self._lock:
            while any(not job.terminal for job in self._jobs.values()):
                remaining = None if deadline is None else deadline - now_s()
                if remaining is not None and remaining <= 0:
                    return False
                self._available.wait(timeout=remaining)
            return True

    def close(self) -> None:
        """Wake every blocked :meth:`claim` and refuse new submissions."""
        with self._lock:
            self._closed = True
            self._available.notify_all()
