"""Persistent, priority-ordered job queue of the audit daemon.

Every job lives in one journal file, ``<root>/jobs/<id>.json``::

    {"serve_schema": 1,
     "job":     {... Job.to_dict() ...},
     "events":  [... RunEvent.to_dict() payloads, once finished ...],
     "report":  {... DetectionReport.to_dict(), once finished ...}}

Journal writes reuse the result cache's crash-safety discipline
(:mod:`repro.exec.cache`): serialize to a temp file in the same directory,
``os.replace`` into place.  A reader therefore sees either the previous
record or the new one, never a torn write — which is what makes restart
recovery trivial: on startup :meth:`JobQueue.recover` walks the journal and
re-queues every ``queued``/``running`` job (the daemon died mid-audit), while
``done``/``failed`` jobs keep serving their stored events and reports.

The in-memory side is a priority heap ordered by ``(-priority, seq)`` —
higher client priority first, FIFO within a priority — guarded by one lock
and a condition variable that :meth:`claim` blocks on.  Deduplication is a
fingerprint index consulted *before* enqueue: a submission whose fingerprint
matches a live (non-failed) job attaches to it instead of creating work.

Multiple daemons may serve one queue directory.  Execution is arbitrated by
*lease files* (``<root>/leases/<id>.lease``), never by the in-memory state:

* claiming a job atomically materializes its lease via ``os.link`` (an
  exclusive create that makes the owner + expiry visible in one step — no
  reader ever sees a half-written lease);
* the owner renews the lease while the audit runs (:meth:`renew_lease`);
* an *expired* lease is stolen with ``os.rename`` — the rename succeeds for
  exactly one process, so concurrent reapers (or claimants) of the same
  orphaned job cannot double-run it;
* :meth:`reap_expired` re-syncs from the shared journal, re-queues every
  running job whose lease expired (``restarts += 1``), and is the one path
  by which a surviving daemon adopts a crashed peer's work.
"""

from __future__ import annotations

import heapq
import json
import logging
import os
import tempfile
import threading
import time
import uuid
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ReproError
from repro.serve.protocol import (
    Job,
    QUEUE_SCHEMA_VERSION,
    QuotaExceededError,
    now_s,
)

logger = logging.getLogger("repro.serve.queue")

#: Default lease duration.  Must be comfortably larger than the owner's
#: heartbeat interval (the daemon renews about every ``lease_s / 3``
#: seconds), so one missed heartbeat never orphans a healthy job.
DEFAULT_LEASE_S = 30.0


class JobQueue:
    """Journaled job store + priority queue (thread-safe, multi-reader)."""

    def __init__(
        self,
        root: str,
        default_quota: int = 0,
        quotas: Optional[Dict[str, int]] = None,
        owner: Optional[str] = None,
        lease_s: float = DEFAULT_LEASE_S,
    ) -> None:
        """``root`` is the queue directory (created on demand).

        ``default_quota`` caps how many *incomplete* (queued or running)
        jobs one client token may hold at once; ``0`` means unlimited.
        ``quotas`` overrides the cap per token.  ``owner`` names this
        queue instance on lease files (defaults to a pid-qualified unique
        id); ``lease_s`` is how long a claim stays valid without renewal.
        """
        self._root = root
        self._jobs_dir = os.path.join(root, "jobs")
        self._leases_dir = os.path.join(root, "leases")
        os.makedirs(self._jobs_dir, exist_ok=True)
        os.makedirs(self._leases_dir, exist_ok=True)
        self._default_quota = default_quota
        self._quotas = dict(quotas or {})
        self._owner = owner or f"{os.getpid()}-{uuid.uuid4().hex[:8]}"
        self._lease_s = float(lease_s)
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._events: Dict[str, List[Dict[str, Any]]] = {}
        self._reports: Dict[str, Optional[Dict[str, Any]]] = {}
        self._by_fingerprint: Dict[str, str] = {}
        self._heap: List[Tuple[int, int, str]] = []
        self._seq = 0
        self._closed = False
        #: Journal files that could not be replayed (corrupt JSON, schema
        #: mismatch, unusable job record).  Never silently absorbed: each
        #: one is logged with its path, counted here, and exported as the
        #: ``repro_journal_corrupt_total`` metric.
        self.corrupt_journals = 0
        #: Expired leases this instance reaped or stole (orphaned jobs it
        #: re-queued or adopted); exported as ``repro_leases_expired_total``.
        self.leases_expired = 0
        self._recovered = self._load()

    # ------------------------------------------------------------------ #
    # journal I/O
    # ------------------------------------------------------------------ #

    def _journal_path(self, job_id: str) -> str:
        return os.path.join(self._jobs_dir, f"{job_id}.json")

    def _write_journal_locked(self, job: Job) -> None:
        record = {
            "serve_schema": QUEUE_SCHEMA_VERSION,
            "job": job.to_dict(),
            "events": self._events.get(job.id, []),
            "report": self._reports.get(job.id),
        }
        payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
        fd, tmp_path = tempfile.mkstemp(
            prefix=f".{job.id}-", suffix=".tmp", dir=self._jobs_dir
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_path, self._journal_path(job.id))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def _read_journal(self, job_id: str) -> Optional[Dict[str, Any]]:
        """The on-disk journal record of ``job_id``, or None when unusable."""
        path = self._journal_path(job_id)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
            if record.get("serve_schema") != QUEUE_SCHEMA_VERSION:
                return None
            if not isinstance(record.get("job"), dict):
                return None
            return record
        except (OSError, ValueError):
            return None

    # ------------------------------------------------------------------ #
    # lease files (the multi-daemon arbitration primitive)
    # ------------------------------------------------------------------ #

    def _lease_path(self, job_id: str) -> str:
        return os.path.join(self._leases_dir, f"{job_id}.lease")

    def _read_lease(self, job_id: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._lease_path(job_id), "r", encoding="utf-8") as handle:
                lease = json.load(handle)
            if not isinstance(lease, dict):
                return None
            return lease
        except FileNotFoundError:
            return None
        except (OSError, ValueError):
            # Unreadable is treated as *live*: leases are created atomically
            # with their content (os.link), so an unreadable file is a
            # filesystem hiccup, not a half-written claim — erring towards
            # "owned" can only delay a reap, never double-run a job.
            return {"owner": "<unreadable>", "expires_s": float("inf")}

    def _lease_expired(self, lease: Optional[Dict[str, Any]]) -> bool:
        if lease is None:
            return True
        expires = lease.get("expires_s")
        if not isinstance(expires, (int, float)):
            return False
        return now_s() >= float(expires)

    def _try_acquire_lease(self, job_id: str) -> Optional[float]:
        """Atomically claim ``job_id``'s lease; returns the expiry or None.

        The claim is an ``os.link`` of a fully written temp file onto the
        lease path — an exclusive create, so exactly one contender wins and
        no reader ever observes a lease without its owner/expiry.  An
        *expired* lease is first stolen with ``os.rename`` (again: exactly
        one winner) before the fresh link is attempted.
        """
        path = self._lease_path(job_id)
        expires_s = now_s() + self._lease_s
        payload = json.dumps(
            {"owner": self._owner, "job": job_id, "expires_s": expires_s},
            sort_keys=True,
        )
        fd, tmp_path = tempfile.mkstemp(
            prefix=f".{job_id}-", suffix=".lease-tmp", dir=self._leases_dir
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            for _ in range(2):
                try:
                    os.link(tmp_path, path)
                    return expires_s
                except FileExistsError:
                    if not self._lease_expired(self._read_lease(job_id)):
                        return None
                    # Expired: steal it.  The rename succeeds for exactly
                    # one contender; the loser sees FileNotFoundError and
                    # retries the link (which then loses to the winner).
                    stolen = os.path.join(
                        self._leases_dir, f".{job_id}-stolen-{uuid.uuid4().hex[:8]}"
                    )
                    try:
                        os.rename(path, stolen)
                    except OSError:
                        continue
                    self.leases_expired += 1
                    try:
                        os.unlink(stolen)
                    except OSError:
                        pass
                except OSError:
                    return None
            return None
        finally:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass

    def _release_lease(self, job_id: str) -> None:
        """Drop the lease if this instance owns it (no-op otherwise)."""
        lease = self._read_lease(job_id)
        if lease is not None and lease.get("owner") == self._owner:
            try:
                os.unlink(self._lease_path(job_id))
            except OSError:
                pass

    def renew_lease(self, job_id: str) -> bool:
        """Heartbeat: extend this instance's lease on a running job.

        Returns False when the lease is no longer ours — the job was reaped
        by another daemon after an expiry (the caller should abandon the
        audit: its result would double one already re-queued elsewhere).
        """
        path = self._lease_path(job_id)
        lease = self._read_lease(job_id)
        if lease is None or lease.get("owner") != self._owner:
            return False
        expires_s = now_s() + self._lease_s
        payload = json.dumps(
            {"owner": self._owner, "job": job_id, "expires_s": expires_s},
            sort_keys=True,
        )
        try:
            fd, tmp_path = tempfile.mkstemp(
                prefix=f".{job_id}-", suffix=".lease-tmp", dir=self._leases_dir
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_path, path)
        except OSError:
            return False
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None and job.state == "running":
                job.lease_expires_s = expires_s
        return True

    def _load(self) -> int:
        """Replay the journal; returns how many incomplete jobs were re-queued.

        A ``running`` job whose lease is still live belongs to another
        daemon sharing the directory: it stays ``running`` in memory and is
        *not* re-queued.  Running jobs with an expired (or missing) lease
        are orphans of a crashed daemon; they re-queue with ``restarts``
        bumped, going through the atomic lease steal so that two daemons
        starting at once cannot both adopt the same orphan.
        """
        recovered = 0
        for entry in sorted(os.listdir(self._jobs_dir)):
            if not entry.endswith(".json"):
                continue
            path = os.path.join(self._jobs_dir, entry)
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    record = json.load(handle)
                if record.get("serve_schema") != QUEUE_SCHEMA_VERSION:
                    self.corrupt_journals += 1
                    logger.warning("ignoring journal %s: schema mismatch", path)
                    continue
                job = Job.from_dict(record["job"])
            except (OSError, ValueError, KeyError, ReproError) as error:
                self.corrupt_journals += 1
                logger.warning("ignoring corrupt journal %s: %s", path, error)
                continue
            if job.state == "running" or job.state == "queued":
                lease = self._read_lease(job.id)
                if job.state == "running" and not self._lease_expired(lease):
                    # Live lease: a peer daemon is running it right now.
                    pass
                else:
                    if job.state == "running":
                        # Orphan: adopt it through the atomic steal so only
                        # one starting daemon re-queues it.
                        if lease is not None and self._try_acquire_lease(job.id) is None:
                            # Lost the steal race; the winner re-queues it.
                            self._jobs[job.id] = job
                            self._events[job.id] = record.get("events") or []
                            self._reports[job.id] = record.get("report")
                            self._by_fingerprint.setdefault(job.fingerprint, job.id)
                            continue
                        self._release_lease(job.id)
                        job.restarts += 1
                    job.state = "queued"
                    job.started_s = None
                    job.owner = None
                    job.lease_expires_s = None
                    recovered += 1
            self._jobs[job.id] = job
            self._events[job.id] = record.get("events") or []
            self._reports[job.id] = record.get("report")
            if job.state != "failed":
                self._by_fingerprint.setdefault(job.fingerprint, job.id)
            if job.state == "queued":
                self._push_locked(job)
                self._write_journal_locked(job)
        if recovered:
            logger.info("recovered %d incomplete job(s) from the journal", recovered)
        return recovered

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #

    def _push_locked(self, job: Job) -> None:
        self._seq += 1
        heapq.heappush(self._heap, (-job.priority, self._seq, job.id))

    def _quota_for(self, token: str) -> int:
        return self._quotas.get(token, self._default_quota)

    def _incomplete_for_token_locked(self, token: str) -> int:
        return sum(
            1
            for job in self._jobs.values()
            if job.token == token and not job.terminal
        )

    def submit(
        self,
        fingerprint: str,
        submission: Dict[str, Any],
        design_name: str,
        mode: str,
        priority: int = 0,
        token: str = "",
    ) -> Tuple[Job, bool]:
        """Admit one submission; returns ``(job, deduplicated)``.

        A matching live fingerprint attaches to the existing job — the
        attachment still counts a submission and may *raise* the job's
        priority (never lower it), so an urgent resubmission jumps the
        queue.  Failed jobs do not absorb resubmissions: a client retrying
        a failed audit gets a fresh job.
        """
        with self._lock:
            if self._closed:
                raise ReproError("job queue is closed")
            existing_id = self._by_fingerprint.get(fingerprint)
            if existing_id is not None:
                existing = self._jobs[existing_id]
                if not (existing.state == "failed"):
                    existing.submissions += 1
                    if priority > existing.priority:
                        existing.priority = priority
                        if existing.state == "queued":
                            self._push_locked(existing)
                    self._write_journal_locked(existing)
                    self._available.notify_all()
                    return existing, True
            quota = self._quota_for(token)
            if quota > 0 and self._incomplete_for_token_locked(token) >= quota:
                raise QuotaExceededError(
                    f"token {token or '<anonymous>'!r} already has {quota} "
                    f"incomplete job(s); wait for one to finish"
                )
            job = Job(
                id=uuid.uuid4().hex[:12],
                fingerprint=fingerprint,
                state="queued",
                submission=dict(submission),
                design_name=design_name,
                mode=mode,
                priority=priority,
                token=token,
                created_s=now_s(),
            )
            self._jobs[job.id] = job
            self._events[job.id] = []
            self._reports[job.id] = None
            self._by_fingerprint[fingerprint] = job.id
            self._push_locked(job)
            self._write_journal_locked(job)
            self._available.notify()
            return job, False

    # ------------------------------------------------------------------ #
    # worker side
    # ------------------------------------------------------------------ #

    def claim(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Pop the highest-priority queued job, lease it, mark it running.

        Blocks up to ``timeout`` seconds (forever when ``None``); returns
        ``None`` on timeout or queue shutdown.  The claim only stands once
        the job's *lease file* is acquired and the on-disk journal still
        agrees the job is claimable — the two checks that make N daemons
        over one queue directory run every job exactly once.
        """
        with self._lock:
            while True:
                job = self._pop_locked()
                if job is not None:
                    claimed = self._claim_job_locked(job)
                    if claimed is not None:
                        return claimed
                    current = self._jobs.get(job.id)
                    if current is not None and current.state == "queued":
                        # The lease was held by someone else while the job is
                        # still queued — e.g. a reaper mid-steal, ours or a
                        # peer's.  Dropping the heap entry here would strand
                        # the job forever; keep it claimable and back off.
                        self._push_locked(current)
                        if self._closed or not self._available.wait(timeout=timeout):
                            return None
                    # Otherwise a peer ran (or finished) it; keep popping.
                    continue
                if self._closed:
                    return None
                if not self._available.wait(timeout=timeout):
                    return None

    def _claim_job_locked(self, job: Job) -> Optional[Job]:
        """Lease ``job`` and transition it to running, or None if a peer won."""
        expires_s = self._try_acquire_lease(job.id)
        if expires_s is None:
            return None
        # Revalidate against the shared journal: our in-memory copy may
        # predate a peer finishing (or failing) the job.
        record = self._read_journal(job.id)
        if record is not None:
            try:
                on_disk = Job.from_dict(record["job"])
            except ReproError:
                on_disk = None
            if on_disk is not None and on_disk.terminal:
                self._release_lease(job.id)
                self._absorb_record_locked(on_disk, record)
                return None
        job.state = "running"
        job.started_s = now_s()
        job.owner = self._owner
        job.lease_expires_s = expires_s
        self._write_journal_locked(job)
        return job

    def _absorb_record_locked(self, job: Job, record: Dict[str, Any]) -> None:
        """Adopt a peer daemon's journal record into the in-memory view."""
        self._jobs[job.id] = job
        self._events[job.id] = record.get("events") or []
        self._reports[job.id] = record.get("report")
        if job.state == "failed":
            if self._by_fingerprint.get(job.fingerprint) == job.id:
                del self._by_fingerprint[job.fingerprint]
        else:
            self._by_fingerprint.setdefault(job.fingerprint, job.id)
        self._available.notify_all()

    def _pop_locked(self) -> Optional[Job]:
        while self._heap:
            neg_priority, _, job_id = heapq.heappop(self._heap)
            job = self._jobs.get(job_id)
            # Skip stale heap entries: the job was claimed already, or a
            # priority bump re-pushed it with a better key.
            if job is None or job.state != "queued" or -neg_priority != job.priority:
                continue
            return job
        return None

    def finish(
        self,
        job_id: str,
        report: Optional[Dict[str, Any]],
        events: List[Dict[str, Any]],
    ) -> Job:
        with self._lock:
            job = self._require_locked(job_id)
            job.state = "done"
            job.finished_s = now_s()
            job.error = None
            job.owner = None
            job.lease_expires_s = None
            self._events[job_id] = list(events)
            self._reports[job_id] = report
            self._write_journal_locked(job)
            self._available.notify_all()
        self._release_lease(job_id)
        return job

    def fail(self, job_id: str, error: str, events: Optional[List[Dict[str, Any]]] = None) -> Job:
        with self._lock:
            job = self._require_locked(job_id)
            job.state = "failed"
            job.finished_s = now_s()
            job.error = error
            job.owner = None
            job.lease_expires_s = None
            if events is not None:
                self._events[job_id] = list(events)
            # Failed jobs stop absorbing resubmissions so retries re-run.
            if self._by_fingerprint.get(job.fingerprint) == job_id:
                del self._by_fingerprint[job.fingerprint]
            self._write_journal_locked(job)
            self._available.notify_all()
        self._release_lease(job_id)
        return job

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #

    def _require_locked(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ReproError(f"unknown job {job_id!r}")
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.created_s)

    def events_for(self, job_id: str) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events.get(job_id, []))

    def report_for(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            report = self._reports.get(job_id)
            return dict(report) if report is not None else None

    @property
    def recovered_jobs(self) -> int:
        """How many incomplete jobs the constructor replayed from disk."""
        return self._recovered

    @property
    def owner_id(self) -> str:
        """This instance's identity on lease files."""
        return self._owner

    @property
    def lease_s(self) -> float:
        """How long this instance's claims stay valid without renewal."""
        return self._lease_s

    # ------------------------------------------------------------------ #
    # reaper (multi-daemon liveness)
    # ------------------------------------------------------------------ #

    def reap_expired(self) -> int:
        """Re-queue running jobs whose lease expired; returns how many.

        Also re-syncs this instance's view from the shared journal
        directory (peers' submissions and finishes become visible), so a
        surviving daemon both *learns about* and *adopts* the work of a
        crashed one.  Intended to run periodically from the daemon's
        reaper thread; safe to call concurrently from several daemons —
        the lease steal arbitrates, so each orphan is re-queued once.
        """
        self._sync_from_disk()
        reaped = 0
        with self._lock:
            running = [job for job in self._jobs.values() if job.state == "running"]
        for job in running:
            lease = self._read_lease(job.id)
            if not self._lease_expired(lease):
                continue
            # Steal the expired lease (or, when the lease file is already
            # gone, take a fresh one) so exactly one daemon re-queues.
            # The steal path counts itself in ``leases_expired``; a job
            # whose lease file vanished entirely is counted here.
            missing = lease is None
            if self._try_acquire_lease(job.id) is None:
                continue
            if missing:
                self.leases_expired += 1
            with self._lock:
                current = self._jobs.get(job.id)
                if current is None or current.state != "running":
                    self._release_lease(job.id)
                    continue
                current.state = "queued"
                current.started_s = None
                current.owner = None
                current.lease_expires_s = None
                current.restarts += 1
                self._write_journal_locked(current)
                # Release the steal-lease *before* waking claimers: a worker
                # woken by the notify must be able to take the lease at once.
                self._release_lease(job.id)
                self._push_locked(current)
                self._available.notify_all()
            reaped += 1
            logger.warning(
                "lease expired on job %s (%s); re-queued with restarts=%d",
                job.id, job.design_name, current.restarts,
            )
        return reaped

    def _sync_from_disk(self) -> None:
        """Absorb journal records written by peer daemons since startup."""
        try:
            entries = sorted(os.listdir(self._jobs_dir))
        except OSError:
            return
        for entry in entries:
            if not entry.endswith(".json"):
                continue
            job_id = entry[: -len(".json")]
            record = self._read_journal(job_id)
            if record is None:
                continue
            try:
                on_disk = Job.from_dict(record["job"])
            except ReproError:
                continue
            with self._lock:
                known = self._jobs.get(job_id)
                if known is None:
                    # A peer's submission we have never seen: absorb it and
                    # make it claimable here too when it is queued.
                    self._absorb_record_locked(on_disk, record)
                    if on_disk.state == "queued":
                        self._push_locked(on_disk)
                    continue
                if known.state == on_disk.state:
                    continue
                if known.state == "running" and known.owner == self._owner:
                    # Never let a peer's stale write clobber our own run.
                    continue
                if known.terminal and not on_disk.terminal:
                    # Terminal states are final: the on-disk record was read
                    # outside the lock and predates our own finish.
                    continue
                self._absorb_record_locked(on_disk, record)
                if on_disk.state == "queued":
                    self._push_locked(on_disk)

    def queued_depth(self) -> int:
        """Jobs currently waiting to be claimed (the ``/metrics`` gauge)."""
        with self._lock:
            return sum(1 for job in self._jobs.values() if job.state == "queued")

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            counts = {state: 0 for state in ("queued", "running", "done", "failed")}
            for job in self._jobs.values():
                counts[job.state] += 1
            return {
                "jobs": len(self._jobs),
                "by_state": counts,
                "recovered": self._recovered,
                "corrupt_journals": self.corrupt_journals,
                "leases_expired": self.leases_expired,
                "owner": self._owner,
            }

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until no job is queued or running (True) or timeout (False)."""
        # Monotonic, not wall-clock: an NTP step (or a test patching
        # ``now_s``) must never stretch or collapse the timeout.
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            while any(not job.terminal for job in self._jobs.values()):
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._available.wait(timeout=remaining)
            return True

    def close(self) -> None:
        """Wake every blocked :meth:`claim` and refuse new submissions."""
        with self._lock:
            self._closed = True
            self._available.notify_all()
