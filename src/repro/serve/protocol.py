"""Wire protocol of the audit service: submissions, jobs, fingerprints.

One *submission* is the JSON body a client POSTs to ``/v1/audits``: a design
(a catalogued benchmark name, or inline Verilog source plus a top module), an
optional :class:`repro.core.config.DetectionConfig` overlay, and admission
metadata (priority, client token).  The daemon validates and elaborates the
submission eagerly — a bad design or config is a ``400`` at the door, never a
mid-queue failure — and reduces it to a *job*: the durable unit the
persistent queue journals through its life cycle::

    queued -> running -> done
                      -> failed

Identical submissions deduplicate before they are enqueued: the job
fingerprint reuses the execution subsystem's content-addressed keys
(:func:`repro.exec.fingerprint.module_fingerprint` over the elaborated
netlist — the pair fingerprint when a golden model is involved — plus
:func:`repro.exec.fingerprint.config_fingerprint` over the semantic config),
so a resubmitted design attaches to the in-flight or completed job instead
of re-solving, exactly like the per-class result cache replays settled
classes.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from repro.api.design import Design
from repro.core.config import DetectionConfig, Waiver
from repro.errors import ReproError
from repro.exec.fingerprint import (
    config_fingerprint,
    module_fingerprint,
    pair_module_fingerprint,
)
from repro.exec.worker import resolved_backend_name
from repro.rtl.ir import Module

#: Version of the HTTP/JSON wire protocol; served by ``/v1/health`` and
#: stamped on every submission response so clients can detect skew.
SERVE_PROTOCOL_VERSION = 1

#: Version of the journaled job-record layout on disk (see
#: :mod:`repro.serve.queue`).  Records of a different version are ignored at
#: startup instead of being misread.
QUEUE_SCHEMA_VERSION = 1

#: The complete job life cycle.  ``queued`` and ``running`` are the
#: *incomplete* states a restarted daemon replays from the journal.
JOB_STATES = ("queued", "running", "done", "failed")


class ProtocolError(ReproError):
    """A malformed or unacceptable service request (HTTP 400)."""


class QuotaExceededError(ReproError):
    """A client exceeded its admission quota (HTTP 429)."""


@dataclass(frozen=True)
class Submission:
    """One parsed audit request (the POST body of ``/v1/audits``)."""

    benchmark: Optional[str] = None
    verilog: Optional[str] = None
    top: Optional[str] = None
    golden_top: Optional[str] = None
    golden_verilog: Optional[str] = None
    config: Dict[str, Any] = field(default_factory=dict)
    use_recommended_waivers: bool = True
    priority: int = 0
    token: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "verilog": self.verilog,
            "top": self.top,
            "golden_top": self.golden_top,
            "golden_verilog": self.golden_verilog,
            "config": dict(self.config),
            "use_recommended_waivers": self.use_recommended_waivers,
            "priority": self.priority,
            "token": self.token,
        }


def submission_from_dict(data: Dict[str, Any]) -> Submission:
    """Parse and validate a submission body.

    Everything that can be rejected without elaborating the design is
    rejected here; design/config errors surface when the daemon builds the
    :class:`Design` and effective config (still at submit time).
    """
    if not isinstance(data, dict):
        raise ProtocolError(f"submission must be a JSON object, got {type(data).__name__}")
    known = {
        "benchmark", "verilog", "top", "golden_top", "golden_verilog",
        "config", "use_recommended_waivers", "priority", "token",
    }
    unknown = sorted(set(data) - known)
    if unknown:
        raise ProtocolError(
            f"unknown submission field(s) {', '.join(unknown)}; "
            f"known fields: {', '.join(sorted(known))}"
        )
    benchmark = data.get("benchmark")
    verilog = data.get("verilog")
    top = data.get("top")
    if bool(benchmark) == bool(verilog):
        raise ProtocolError(
            "a submission names exactly one design source: either "
            "'benchmark' or 'verilog' (+ 'top')"
        )
    if verilog and not top:
        raise ProtocolError("'verilog' submissions need 'top' to name the top module")
    if benchmark and (data.get("golden_top") or data.get("golden_verilog")):
        raise ProtocolError(
            "'golden_top'/'golden_verilog' apply to 'verilog' submissions only; "
            "benchmarks use their catalogued golden model"
        )
    if data.get("golden_verilog") and not data.get("golden_top"):
        raise ProtocolError("'golden_verilog' needs 'golden_top' to name the golden module")
    config = data.get("config")
    if config is None:
        config = {}
    if not isinstance(config, dict):
        raise ProtocolError(f"'config' must be a JSON object, got {type(config).__name__}")
    priority = data.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise ProtocolError(f"'priority' must be an integer, got {priority!r}")
    token = data.get("token", "")
    if not isinstance(token, str):
        raise ProtocolError(f"'token' must be a string, got {token!r}")
    use_recommended = data.get("use_recommended_waivers", True)
    if not isinstance(use_recommended, bool):
        raise ProtocolError(
            f"'use_recommended_waivers' must be a boolean, got {use_recommended!r}"
        )
    return Submission(
        benchmark=benchmark,
        verilog=verilog,
        top=top,
        golden_top=data.get("golden_top"),
        golden_verilog=data.get("golden_verilog"),
        config=config,
        use_recommended_waivers=use_recommended,
        priority=priority,
        token=token,
    )


def build_design(submission: Submission) -> Design:
    """Elaborate the submission's design (raises :class:`ReproError` subtypes)."""
    if submission.benchmark:
        return Design.from_benchmark(submission.benchmark)
    return Design.from_source(
        submission.verilog,
        top=submission.top,
        golden_top=submission.golden_top,
        golden_source=submission.golden_verilog,
    )


def effective_config(
    design: Design,
    submission: Submission,
    cache_dir: Optional[str],
    use_cache: bool,
) -> DetectionConfig:
    """The configuration the daemon actually audits ``design`` with.

    The submitted config overlay keeps every *semantic* field; the daemon
    then fills the design's own defaults the same way the CLI and
    :meth:`repro.api.BatchSession.config_for` do (traced inputs when unset,
    recommended waivers unless opted out) so a served audit and a local
    ``repro run`` of the same design produce byte-identical normalized
    reports.  Execution knobs are the daemon's to decide: audits always run
    serially inside one worker thread (the pool provides the parallelism —
    forking from a multi-threaded daemon is not safe), against the daemon's
    shared result cache.
    """
    config = DetectionConfig.from_dict(submission.config)
    if config.inputs is None and design.data_inputs:
        config = replace(config, inputs=list(design.data_inputs))
    if submission.use_recommended_waivers and design.recommended_waivers:
        waived = set(config.waived_signals())
        extra = [
            Waiver(signal=signal, reason=f"recommended for {design.name}")
            for signal in design.recommended_waivers
            if signal not in waived
        ]
        if extra:
            config = replace(config, waivers=list(config.waivers) + extra)
    if config.mode == "sequential" and design.golden_module() is None:
        raise ProtocolError(
            f"design {design.name!r} has no golden model for the sequential "
            f"mode; submit 'golden_top' (and optionally 'golden_verilog') or "
            f"pick a benchmark with a catalogued golden design"
        )
    # trace is forced off like the other execution knobs: span collection
    # is a local-CLI affair, and a served audit must stay byte-identical
    # (normalized *and* raw timing layout) to an untraced local run.
    return replace(
        config,
        jobs=1,
        cache_dir=cache_dir,
        use_cache=use_cache,
        trace=False,
    )


def submission_fingerprint(
    design: Design, config: DetectionConfig, golden: Optional[Module] = None
) -> str:
    """Content fingerprint identifying one audit job for deduplication.

    Two submissions collide exactly when the execution subsystem would
    consider every one of their property classes interchangeable: same
    canonical netlist (pair, in sequential mode), same semantic config,
    same resolved solver backend.
    """
    module_fp = module_fingerprint(design.module)
    if golden is not None:
        module_fp = pair_module_fingerprint(module_fp, module_fingerprint(golden))
    config_fp = config_fingerprint(config, resolved_backend_name(config))
    digest = hashlib.sha256()
    digest.update(b"repro-serve-job/v1\n")
    digest.update(module_fp.encode("ascii"))
    digest.update(b"\n")
    digest.update(config_fp.encode("ascii"))
    return digest.hexdigest()


@dataclass
class Job:
    """One accepted audit: the durable unit the persistent queue journals."""

    id: str
    fingerprint: str
    state: str
    submission: Dict[str, Any]
    design_name: str
    mode: str
    priority: int = 0
    token: str = ""
    created_s: float = 0.0
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    error: Optional[str] = None
    #: How many client submissions attached to this job (1 + dedup hits).
    submissions: int = 1
    #: How many times this job was re-queued after its worker went away —
    #: daemon restarts replaying the journal plus lease expiries reaped by
    #: a surviving daemon.
    restarts: int = 0
    #: Identity of the daemon currently running the job (None when queued
    #: or terminal).  Informational — the lease *file* is what arbitrates
    #: ownership between daemons sharing one queue directory.
    owner: Optional[str] = None
    #: Wall-clock time the current lease expires; a running job whose lease
    #: has expired is presumed orphaned and may be re-queued by any daemon.
    lease_expires_s: Optional[float] = None

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "fingerprint": self.fingerprint,
            "state": self.state,
            "submission": dict(self.submission),
            "design_name": self.design_name,
            "mode": self.mode,
            "priority": self.priority,
            "token": self.token,
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "error": self.error,
            "submissions": self.submissions,
            "restarts": self.restarts,
            "owner": self.owner,
            "lease_expires_s": self.lease_expires_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Job":
        try:
            state = data["state"]
            if state not in JOB_STATES:
                raise ReproError(f"unknown job state {state!r}")
            return cls(
                id=data["id"],
                fingerprint=data["fingerprint"],
                state=state,
                submission=dict(data["submission"]),
                design_name=data["design_name"],
                mode=data.get("mode", "combinational"),
                priority=data.get("priority", 0),
                token=data.get("token", ""),
                created_s=data.get("created_s", 0.0),
                started_s=data.get("started_s"),
                finished_s=data.get("finished_s"),
                error=data.get("error"),
                submissions=data.get("submissions", 1),
                restarts=data.get("restarts", 0),
                owner=data.get("owner"),
                lease_expires_s=data.get("lease_expires_s"),
            )
        except ReproError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise ReproError(f"malformed job record: {error}") from error

    #: Public view served by the HTTP API: everything but the (potentially
    #: large) submission body.
    def summary_dict(self) -> Dict[str, Any]:
        data = self.to_dict()
        del data["submission"]
        return data


def prepare_submission(
    body: Dict[str, Any],
    cache_dir: Optional[str],
    use_cache: bool,
) -> Tuple[Submission, Design, DetectionConfig, str]:
    """Parse, elaborate, and fingerprint one submission body.

    The single entry point the daemon (and tests) use to turn a raw POST
    body into everything admission needs: the parsed submission, the
    elaborated design, the effective config, and the dedup fingerprint.
    Raises :class:`ProtocolError` / :class:`ConfigError` /
    :class:`repro.errors.DesignError` — all mapped to HTTP 400.
    """
    submission = submission_from_dict(body)
    design = build_design(submission)
    config = effective_config(design, submission, cache_dir, use_cache)
    golden = design.golden_module() if config.mode == "sequential" else None
    fingerprint = submission_fingerprint(design, config, golden)
    return submission, design, config, fingerprint


def now_s() -> float:
    """Wall-clock timestamp for job bookkeeping (patchable in tests)."""
    return time.time()
