"""repro.serve — detection as a service.

A stdlib-only HTTP/JSON daemon over the library's audit stack: clients
submit designs to ``POST /v1/audits``, a persistent journaled job queue
feeds a worker pool that runs audits through the existing
scheduler/executor with one shared warm result cache, and clients stream
the typed run events live over Server-Sent Events or fetch the finished
schema-v5 report.  Start it from the command line::

    repro serve --port 8321 --jobs 4 --queue-dir ./audit-queue

and talk to it with :class:`repro.serve.client.ServeClient` (or plain
``curl``; see the README quickstart).
"""

from repro.serve.app import AuditServer
from repro.serve.client import AuditFailedError, ServeClient, ServeError
from repro.serve.protocol import (
    SERVE_PROTOCOL_VERSION,
    Job,
    ProtocolError,
    QuotaExceededError,
    Submission,
    submission_from_dict,
)
from repro.serve.queue import JobQueue

__all__ = [
    "AuditServer",
    "ServeClient",
    "ServeError",
    "AuditFailedError",
    "JobQueue",
    "Job",
    "Submission",
    "submission_from_dict",
    "ProtocolError",
    "QuotaExceededError",
    "SERVE_PROTOCOL_VERSION",
]
