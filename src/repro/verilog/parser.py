"""Recursive-descent parser for the supported Verilog subset."""

from __future__ import annotations

from typing import List, Optional, Tuple, Union

from repro.errors import UnsupportedFeatureError, VerilogSyntaxError
from repro.verilog import ast
from repro.verilog.lexer import Lexer, Token, TokenKind, parse_based_literal


def parse_source(source: str) -> ast.SourceFile:
    """Parse Verilog source text into a :class:`repro.verilog.ast.SourceFile`."""
    return Parser(Lexer(source).tokenize()).parse()


# Binary operator precedence, higher binds tighter.  The conditional operator
# is handled separately (right-associative, lowest precedence).
_BINARY_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "|": 3,
    "^": 4, "^~": 4, "~^": 4,
    "&": 5,
    "==": 6, "!=": 6, "===": 6, "!==": 6,
    "<": 7, "<=": 7, ">": 7, ">=": 7,
    "<<": 8, ">>": 8, "<<<": 8, ">>>": 8,
    "+": 9, "-": 9,
    "*": 10, "/": 10, "%": 10,
}

_UNARY_OPS = {"~", "-", "+", "!", "&", "|", "^", "~&", "~|", "~^"}


class Parser:
    """Parses a token stream produced by :class:`repro.verilog.lexer.Lexer`."""

    def __init__(self, tokens: List[Token]) -> None:
        self._tokens = tokens
        self._index = 0

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != TokenKind.EOF:
            self._index += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> VerilogSyntaxError:
        token = token or self._peek()
        return VerilogSyntaxError(f"{message}, found {token.text!r}", token.line, token.column)

    def _expect_keyword(self, word: str) -> Token:
        token = self._advance()
        if not token.is_keyword(word):
            raise self._error(f"expected keyword {word!r}", token)
        return token

    def _expect_punct(self, text: str) -> Token:
        token = self._advance()
        if not token.is_punct(text):
            raise self._error(f"expected {text!r}", token)
        return token

    def _expect_operator(self, text: str) -> Token:
        token = self._advance()
        if not token.is_operator(text):
            raise self._error(f"expected {text!r}", token)
        return token

    def _expect_ident(self) -> str:
        token = self._advance()
        if token.kind != TokenKind.IDENT:
            raise self._error("expected identifier", token)
        return token.text

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_punct(self, text: str) -> bool:
        if self._peek().is_punct(text):
            self._advance()
            return True
        return False

    def _accept_operator(self, text: str) -> bool:
        if self._peek().is_operator(text):
            self._advance()
            return True
        return False

    # ------------------------------------------------------------------ #
    # Top level
    # ------------------------------------------------------------------ #

    def parse(self) -> ast.SourceFile:
        source = ast.SourceFile()
        while not self._peek().kind == TokenKind.EOF:
            source.modules.append(self._parse_module())
        return source

    def _parse_module(self) -> ast.Module:
        self._expect_keyword("module")
        module = ast.Module(name=self._expect_ident())
        if self._accept_punct("#"):
            self._parse_parameter_port_list(module)
        if self._accept_punct("("):
            self._parse_port_list(module)
        self._expect_punct(";")
        while not self._peek().is_keyword("endmodule"):
            if self._peek().kind == TokenKind.EOF:
                raise self._error("unexpected end of file inside module")
            self._parse_module_item(module)
        self._expect_keyword("endmodule")
        return module

    def _parse_parameter_port_list(self, module: ast.Module) -> None:
        self._expect_punct("(")
        while True:
            self._accept_keyword("parameter")
            name = self._expect_ident()
            self._expect_operator("=")
            module.items.append(ast.ParamDecl(name=name, value=self._parse_expression()))
            if not self._accept_punct(","):
                break
        self._expect_punct(")")

    def _parse_port_list(self, module: ast.Module) -> None:
        if self._accept_punct(")"):
            return
        while True:
            token = self._peek()
            if token.is_keyword("input") or token.is_keyword("output") or token.is_keyword("inout"):
                direction = self._advance().text
                is_reg = self._accept_keyword("reg")
                self._accept_keyword("wire")
                self._accept_keyword("signed")
                range_ = self._parse_optional_range()
                name = self._expect_ident()
                module.ports.append(ast.Port(name=name, direction=direction, range=range_, is_reg=is_reg))
                module.port_order.append(name)
                # Additional names share direction/range until the next direction keyword.
                while self._peek().is_punct(",") and self._peek(1).kind == TokenKind.IDENT:
                    self._advance()
                    extra = self._expect_ident()
                    module.ports.append(ast.Port(name=extra, direction=direction, range=range_, is_reg=is_reg))
                    module.port_order.append(extra)
            elif token.kind == TokenKind.IDENT:
                module.port_order.append(self._expect_ident())
            else:
                raise self._error("expected port declaration")
            if not self._accept_punct(","):
                break
        self._expect_punct(")")

    # ------------------------------------------------------------------ #
    # Module items
    # ------------------------------------------------------------------ #

    def _parse_module_item(self, module: ast.Module) -> None:
        token = self._peek()
        if token.is_keyword("input") or token.is_keyword("output") or token.is_keyword("inout"):
            self._parse_port_declaration(module)
        elif token.is_keyword("wire") or token.is_keyword("reg") or token.is_keyword("integer"):
            module.items.extend(self._parse_net_declaration())
        elif token.is_keyword("parameter") or token.is_keyword("localparam"):
            module.items.extend(self._parse_parameter_declaration())
        elif token.is_keyword("assign"):
            module.items.extend(self._parse_continuous_assign())
        elif token.is_keyword("always"):
            module.items.append(self._parse_always())
        elif token.is_keyword("initial"):
            raise UnsupportedFeatureError("'initial' blocks are not part of the synthesisable subset")
        elif token.is_keyword("function") or token.is_keyword("generate") or token.is_keyword("for"):
            raise UnsupportedFeatureError(f"'{token.text}' constructs are not supported; flatten them in the source generator")
        elif token.kind == TokenKind.IDENT:
            module.items.append(self._parse_instance())
        else:
            raise self._error("unexpected token in module body")

    def _parse_port_declaration(self, module: ast.Module) -> None:
        direction = self._advance().text
        is_reg = self._accept_keyword("reg")
        self._accept_keyword("wire")
        self._accept_keyword("signed")
        range_ = self._parse_optional_range()
        names = [self._expect_ident()]
        while self._accept_punct(","):
            names.append(self._expect_ident())
        self._expect_punct(";")
        existing = {port.name: index for index, port in enumerate(module.ports)}
        for name in names:
            port = ast.Port(name=name, direction=direction, range=range_, is_reg=is_reg)
            if name in existing:
                module.ports[existing[name]] = port
            else:
                module.ports.append(port)
        if is_reg:
            module.items.append(ast.NetDecl(kind="reg", names=tuple(names), range=range_))

    def _parse_net_declaration(self) -> List[Union[ast.NetDecl, ast.ContinuousAssign]]:
        kind = self._advance().text
        self._accept_keyword("signed")
        range_ = self._parse_optional_range()
        names = []
        initialisers: List[ast.ContinuousAssign] = []
        while True:
            name = self._expect_ident()
            names.append(name)
            # Memories (e.g. ``reg [7:0] mem [0:255]``) are outside the subset.
            if self._peek().is_punct("["):
                raise UnsupportedFeatureError("memory arrays are not supported by the subset")
            if self._accept_operator("="):
                # Net declaration with initialiser: ``wire [7:0] x = expr;``
                if kind == "reg":
                    raise UnsupportedFeatureError("register initialisers are not supported")
                initialisers.append(
                    ast.ContinuousAssign(lhs=ast.Ident(name=name), rhs=self._parse_expression())
                )
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        items: List[Union[ast.NetDecl, ast.ContinuousAssign]] = [
            ast.NetDecl(kind=kind, names=tuple(names), range=range_)
        ]
        items.extend(initialisers)
        return items

    def _parse_parameter_declaration(self) -> List[ast.ParamDecl]:
        local = self._advance().text == "localparam"
        self._parse_optional_range()
        declarations = []
        while True:
            name = self._expect_ident()
            self._expect_operator("=")
            declarations.append(ast.ParamDecl(name=name, value=self._parse_expression(), local=local))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return declarations

    def _parse_continuous_assign(self) -> List[ast.ContinuousAssign]:
        self._expect_keyword("assign")
        assigns = []
        while True:
            lhs = self._parse_expression()
            self._expect_operator("=")
            rhs = self._parse_expression()
            assigns.append(ast.ContinuousAssign(lhs=lhs, rhs=rhs))
            if not self._accept_punct(","):
                break
        self._expect_punct(";")
        return assigns

    def _parse_always(self) -> ast.Always:
        self._expect_keyword("always")
        self._expect_punct("@")
        events: List[ast.EdgeEvent] = []
        is_combinational = False
        self._expect_punct("(")
        if self._accept_operator("*"):
            is_combinational = True
        else:
            while True:
                token = self._peek()
                if token.is_keyword("posedge") or token.is_keyword("negedge"):
                    edge = self._advance().text
                    events.append(ast.EdgeEvent(edge=edge, signal=self._expect_ident()))
                else:
                    # Level-sensitive list => combinational block.
                    is_combinational = True
                    events.append(ast.EdgeEvent(edge="level", signal=self._expect_ident()))
                if self._accept_keyword("or") or self._accept_punct(","):
                    continue
                break
        self._expect_punct(")")
        body = self._parse_statement()
        if events and all(event.edge == "level" for event in events):
            is_combinational = True
        return ast.Always(events=tuple(events), body=body, is_combinational=is_combinational)

    def _parse_instance(self) -> ast.Instance:
        module_name = self._expect_ident()
        parameters: List[Tuple[Optional[str], ast.Expr]] = []
        if self._accept_punct("#"):
            self._expect_punct("(")
            while True:
                if self._accept_punct("."):
                    param_name = self._expect_ident()
                    self._expect_punct("(")
                    parameters.append((param_name, self._parse_expression()))
                    self._expect_punct(")")
                else:
                    parameters.append((None, self._parse_expression()))
                if not self._accept_punct(","):
                    break
            self._expect_punct(")")
        instance_name = self._expect_ident()
        self._expect_punct("(")
        connections: List[ast.PortConnection] = []
        if not self._peek().is_punct(")"):
            while True:
                if self._accept_punct("."):
                    port_name = self._expect_ident()
                    self._expect_punct("(")
                    expr = None if self._peek().is_punct(")") else self._parse_expression()
                    self._expect_punct(")")
                    connections.append(ast.PortConnection(port=port_name, expr=expr))
                else:
                    connections.append(ast.PortConnection(port=None, expr=self._parse_expression()))
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        self._expect_punct(";")
        return ast.Instance(
            module=module_name,
            name=instance_name,
            connections=tuple(connections),
            parameters=tuple(parameters),
        )

    # ------------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------------ #

    def _parse_statement(self) -> ast.Statement:
        token = self._peek()
        if token.is_keyword("begin"):
            self._advance()
            if self._accept_punct(":"):
                self._expect_ident()
            statements = []
            while not self._peek().is_keyword("end"):
                statements.append(self._parse_statement())
            self._expect_keyword("end")
            return ast.Block(statements=tuple(statements))
        if token.is_keyword("if"):
            self._advance()
            self._expect_punct("(")
            cond = self._parse_expression()
            self._expect_punct(")")
            then = self._parse_statement()
            otherwise = None
            if self._accept_keyword("else"):
                otherwise = self._parse_statement()
            return ast.If(cond=cond, then=then, otherwise=otherwise)
        if token.is_keyword("case") or token.is_keyword("casez") or token.is_keyword("casex"):
            return self._parse_case()
        if token.is_punct(";"):
            self._advance()
            return ast.Block(statements=())
        return self._parse_procedural_assignment()

    def _parse_case(self) -> ast.Case:
        kind = self._advance().text
        self._expect_punct("(")
        subject = self._parse_expression()
        self._expect_punct(")")
        items: List[ast.CaseItem] = []
        while not self._peek().is_keyword("endcase"):
            if self._accept_keyword("default"):
                self._accept_punct(":")
                items.append(ast.CaseItem(labels=(), body=self._parse_statement()))
                continue
            labels = [self._parse_expression()]
            while self._accept_punct(","):
                labels.append(self._parse_expression())
            self._expect_punct(":")
            items.append(ast.CaseItem(labels=tuple(labels), body=self._parse_statement()))
        self._expect_keyword("endcase")
        return ast.Case(subject=subject, items=tuple(items), kind=kind)

    def _parse_procedural_assignment(self) -> ast.Assignment:
        lhs = self._parse_primary()
        token = self._advance()
        if token.is_operator("<="):
            blocking = False
        elif token.is_operator("="):
            blocking = True
        else:
            raise self._error("expected '=' or '<=' in procedural assignment", token)
        rhs = self._parse_expression()
        self._expect_punct(";")
        return ast.Assignment(lhs=lhs, rhs=rhs, blocking=blocking)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #

    def _parse_expression(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        condition = self._parse_binary(1)
        if self._accept_operator("?"):
            then = self._parse_ternary()
            self._expect_punct(":")
            otherwise = self._parse_ternary()
            return ast.Ternary(cond=condition, then=then, otherwise=otherwise)
        return condition

    def _parse_binary(self, min_precedence: int) -> ast.Expr:
        left = self._parse_unary()
        while True:
            token = self._peek()
            if token.kind != TokenKind.OPERATOR:
                return left
            precedence = _BINARY_PRECEDENCE.get(token.text)
            if precedence is None or precedence < min_precedence:
                return left
            self._advance()
            right = self._parse_binary(precedence + 1)
            left = ast.Binary(op=token.text, left=left, right=right)

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == TokenKind.OPERATOR and token.text in _UNARY_OPS:
            self._advance()
            return ast.Unary(op=token.text, operand=self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._advance()
        if token.kind == TokenKind.NUMBER:
            # A decimal size prefix of a based literal is merged by the lexer,
            # so a bare NUMBER here is always an unsized decimal literal.
            return ast.Number(value=int(token.text.replace("_", "")), width=None)
        if token.kind == TokenKind.BASED_NUMBER:
            width, value = parse_based_literal(token.text)
            return ast.Number(value=value, width=width)
        if token.is_punct("{"):
            return self._parse_concat_or_repeat()
        if token.is_punct("("):
            expr = self._parse_expression()
            self._expect_punct(")")
            return self._parse_selects(expr)
        if token.kind == TokenKind.IDENT:
            return self._parse_selects(ast.Ident(name=token.text))
        raise self._error("expected expression", token)

    def _parse_concat_or_repeat(self) -> ast.Expr:
        first = self._parse_expression()
        if self._peek().is_punct("{"):
            self._advance()
            value = self._parse_expression()
            parts = [value]
            while self._accept_punct(","):
                parts.append(self._parse_expression())
            self._expect_punct("}")
            self._expect_punct("}")
            if len(parts) == 1:
                return ast.Repeat(count=first, value=parts[0])
            return ast.Repeat(count=first, value=ast.Concat(parts=tuple(parts)))
        parts = [first]
        while self._accept_punct(","):
            parts.append(self._parse_expression())
        self._expect_punct("}")
        return ast.Concat(parts=tuple(parts))

    def _parse_selects(self, target: ast.Expr) -> ast.Expr:
        while self._peek().is_punct("["):
            self._advance()
            first = self._parse_expression()
            if self._accept_punct(":"):
                second = self._parse_expression()
                self._expect_punct("]")
                target = ast.RangeSelect(target=target, msb=first, lsb=second)
            else:
                self._expect_punct("]")
                target = ast.Index(target=target, index=first)
        return target

    def _parse_optional_range(self) -> Optional[ast.Range]:
        if not self._peek().is_punct("["):
            return None
        self._advance()
        msb = self._parse_expression()
        self._expect_punct(":")
        lsb = self._parse_expression()
        self._expect_punct("]")
        return ast.Range(msb=msb, lsb=lsb)
