"""Verilog-2001 synthesisable-subset frontend.

The frontend turns Verilog source text into an abstract syntax tree
(:mod:`repro.verilog.ast`) which :mod:`repro.rtl.elaborate` lowers into the
word-level RTL IR.  The supported subset covers everything used by the
Trust-Hub-style accelerator benchmarks shipped in :mod:`repro.trusthub`:

* module declarations with ANSI or non-ANSI ports and parameters,
* ``wire`` / ``reg`` declarations with ranges,
* continuous ``assign`` statements,
* ``always @(posedge clk)`` (optionally with an asynchronous reset edge) and
  ``always @(*)`` blocks containing ``if``/``else``, ``case`` and
  blocking/non-blocking assignments,
* module instantiations with named or positional connections and parameter
  overrides,
* the full synthesisable expression grammar (arithmetic, bitwise, logical,
  reduction, comparison, shifts, concatenation, replication, bit/part selects,
  conditional operator, sized/based literals).
"""

from repro.verilog.lexer import Lexer, Token, TokenKind
from repro.verilog.parser import parse_source, Parser
from repro.verilog import ast

__all__ = ["Lexer", "Token", "TokenKind", "parse_source", "Parser", "ast"]
