"""Abstract syntax tree for the supported Verilog subset.

The AST keeps expressions word-level and unresolved (identifiers are plain
strings, widths are expressions); :mod:`repro.rtl.elaborate` resolves
parameters, flattens hierarchy and converts processes into the RTL IR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union


# --------------------------------------------------------------------------- #
# Expressions
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Expr:
    """Base class of all AST expressions."""


@dataclass(frozen=True)
class Number(Expr):
    """Integer literal; ``width`` is ``None`` for unsized decimal literals."""

    value: int
    width: Optional[int] = None


@dataclass(frozen=True)
class Ident(Expr):
    """Reference to a net, register, port, parameter or genvar."""

    name: str


@dataclass(frozen=True)
class Unary(Expr):
    """Unary operator: ``~ - ! & | ^ ~& ~| ~^``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operator (arithmetic, bitwise, logical, relational, shift)."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Ternary(Expr):
    """Conditional operator ``cond ? then : otherwise``."""

    cond: Expr
    then: Expr
    otherwise: Expr


@dataclass(frozen=True)
class Concat(Expr):
    """Concatenation ``{a, b, c}`` (MSB-first, as written)."""

    parts: Tuple[Expr, ...]


@dataclass(frozen=True)
class Repeat(Expr):
    """Replication ``{count{expr}}``."""

    count: Expr
    value: Expr


@dataclass(frozen=True)
class Index(Expr):
    """Single-bit select ``name[index]``."""

    target: Expr
    index: Expr


@dataclass(frozen=True)
class RangeSelect(Expr):
    """Constant part select ``name[msb:lsb]``."""

    target: Expr
    msb: Expr
    lsb: Expr


# --------------------------------------------------------------------------- #
# Statements (inside always blocks)
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Statement:
    """Base class of procedural statements."""


@dataclass(frozen=True)
class Block(Statement):
    """``begin ... end`` sequence."""

    statements: Tuple[Statement, ...]


@dataclass(frozen=True)
class Assignment(Statement):
    """Procedural assignment; ``blocking`` selects ``=`` vs ``<=``."""

    lhs: Expr
    rhs: Expr
    blocking: bool


@dataclass(frozen=True)
class If(Statement):
    """``if``/``else`` statement; ``otherwise`` may be ``None``."""

    cond: Expr
    then: Statement
    otherwise: Optional[Statement]


@dataclass(frozen=True)
class CaseItem:
    """One arm of a case statement; empty ``labels`` marks the default arm."""

    labels: Tuple[Expr, ...]
    body: Statement


@dataclass(frozen=True)
class Case(Statement):
    """``case``/``casez``/``casex`` statement."""

    subject: Expr
    items: Tuple[CaseItem, ...]
    kind: str = "case"


# --------------------------------------------------------------------------- #
# Module items
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class Range:
    """Packed range ``[msb:lsb]`` with unresolved bound expressions."""

    msb: Expr
    lsb: Expr


@dataclass(frozen=True)
class Port:
    """Port declaration.  ``direction`` is ``input``/``output``/``inout``."""

    name: str
    direction: str
    range: Optional[Range] = None
    is_reg: bool = False


@dataclass(frozen=True)
class NetDecl:
    """``wire``/``reg``/``integer`` declaration for one or more names."""

    kind: str
    names: Tuple[str, ...]
    range: Optional[Range] = None


@dataclass(frozen=True)
class ParamDecl:
    """``parameter`` or ``localparam`` declaration."""

    name: str
    value: Expr
    local: bool = False


@dataclass(frozen=True)
class ContinuousAssign:
    """``assign lhs = rhs;``"""

    lhs: Expr
    rhs: Expr


@dataclass(frozen=True)
class EdgeEvent:
    """One event of a sensitivity list, e.g. ``posedge clk``."""

    edge: str  # "posedge", "negedge" or "level"
    signal: str


@dataclass(frozen=True)
class Always:
    """``always @(...) statement``.

    ``events`` is empty for combinational ``always @(*)`` blocks.
    """

    events: Tuple[EdgeEvent, ...]
    body: Statement
    is_combinational: bool


@dataclass(frozen=True)
class PortConnection:
    """A connection in an instantiation; ``port`` is ``None`` for positional."""

    port: Optional[str]
    expr: Optional[Expr]


@dataclass(frozen=True)
class Instance:
    """Module instantiation ``Type #(params) name (connections);``"""

    module: str
    name: str
    connections: Tuple[PortConnection, ...]
    parameters: Tuple[Tuple[Optional[str], Expr], ...] = ()


ModuleItem = Union[
    Port, NetDecl, ParamDecl, ContinuousAssign, Always, Instance
]


@dataclass
class Module:
    """A parsed (unelaborated) Verilog module."""

    name: str
    ports: List[Port] = field(default_factory=list)
    items: List[ModuleItem] = field(default_factory=list)
    port_order: List[str] = field(default_factory=list)

    def parameters(self) -> List[ParamDecl]:
        return [item for item in self.items if isinstance(item, ParamDecl)]

    def instances(self) -> List[Instance]:
        return [item for item in self.items if isinstance(item, Instance)]


@dataclass
class SourceFile:
    """A collection of modules parsed from one source text."""

    modules: List[Module] = field(default_factory=list)

    def module_map(self) -> dict:
        return {module.name: module for module in self.modules}


def walk_expr(expr: Expr):
    """Yield ``expr`` and all sub-expressions (pre-order)."""
    yield expr
    if isinstance(expr, Unary):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, Ternary):
        yield from walk_expr(expr.cond)
        yield from walk_expr(expr.then)
        yield from walk_expr(expr.otherwise)
    elif isinstance(expr, Concat):
        for part in expr.parts:
            yield from walk_expr(part)
    elif isinstance(expr, Repeat):
        yield from walk_expr(expr.count)
        yield from walk_expr(expr.value)
    elif isinstance(expr, (Index, RangeSelect)):
        yield from walk_expr(expr.target)
        if isinstance(expr, Index):
            yield from walk_expr(expr.index)
        else:
            yield from walk_expr(expr.msb)
            yield from walk_expr(expr.lsb)


def expr_identifiers(expr: Expr) -> set:
    """Names of all identifiers referenced by ``expr``."""
    return {node.name for node in walk_expr(expr) if isinstance(node, Ident)}
