"""Tokeniser for the supported Verilog subset."""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum, auto
from typing import Iterator, List, Optional

from repro.errors import VerilogSyntaxError


class TokenKind(Enum):
    """Lexical category of a token."""

    KEYWORD = auto()
    IDENT = auto()
    NUMBER = auto()
    BASED_NUMBER = auto()
    STRING = auto()
    OPERATOR = auto()
    PUNCT = auto()
    EOF = auto()


KEYWORDS = frozenset(
    {
        "module", "endmodule", "input", "output", "inout", "wire", "reg",
        "assign", "always", "posedge", "negedge", "or", "if", "else", "begin",
        "end", "case", "casez", "casex", "endcase", "default", "parameter",
        "localparam", "integer", "function", "endfunction", "for", "generate",
        "endgenerate", "genvar", "initial", "signed",
    }
)

# Longest-match-first operator table.
_OPERATORS = [
    "<<<", ">>>", "===", "!==",
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "~&", "~|", "~^", "^~",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=", "?",
]

_PUNCT = ["(", ")", "[", "]", "{", "}", ",", ";", ":", ".", "@", "#"]

_NUMBER_RE = re.compile(r"[0-9][0-9_]*")
_BASED_RE = re.compile(r"(?:[0-9][0-9_]*)?\s*'\s*[sS]?[bBoOdDhH][0-9a-fA-FxXzZ_?]+")
_IDENT_RE = re.compile(r"[a-zA-Z_][a-zA-Z_0-9$]*")
_ESCAPED_IDENT_RE = re.compile(r"\\[^\s]+")


@dataclass(frozen=True)
class Token:
    """A single lexical token with its source position (1-based line/column)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == word

    def is_punct(self, text: str) -> bool:
        return self.kind == TokenKind.PUNCT and self.text == text

    def is_operator(self, text: str) -> bool:
        return self.kind == TokenKind.OPERATOR and self.text == text


class Lexer:
    """Converts Verilog source text into a list of :class:`Token`.

    Comments (``//`` and ``/* */``), compiler directives starting with a
    backtick and whitespace are discarded.
    """

    def __init__(self, source: str) -> None:
        self._source = source
        self._length = len(source)
        self._pos = 0
        self._line = 1
        self._column = 1

    def tokenize(self) -> List[Token]:
        tokens = list(self._iter_tokens())
        tokens.append(Token(TokenKind.EOF, "", self._line, self._column))
        return tokens

    def _iter_tokens(self) -> Iterator[Token]:
        while True:
            self._skip_trivia()
            if self._pos >= self._length:
                return
            token = self._next_token()
            if token is not None:
                yield token

    def _skip_trivia(self) -> None:
        while self._pos < self._length:
            char = self._source[self._pos]
            if char in " \t\r":
                self._advance(1)
            elif char == "\n":
                self._advance(1)
            elif self._source.startswith("//", self._pos):
                end = self._source.find("\n", self._pos)
                self._advance((end - self._pos) if end != -1 else (self._length - self._pos))
            elif self._source.startswith("/*", self._pos):
                end = self._source.find("*/", self._pos + 2)
                if end == -1:
                    raise VerilogSyntaxError("unterminated block comment", self._line, self._column)
                self._advance(end + 2 - self._pos)
            elif char == "`":
                # Compiler directives (`timescale, `define, ...) are skipped to
                # the end of the line; benchmark sources do not rely on macros.
                end = self._source.find("\n", self._pos)
                self._advance((end - self._pos) if end != -1 else (self._length - self._pos))
            else:
                return

    def _next_token(self) -> Optional[Token]:
        line, column = self._line, self._column
        match = _BASED_RE.match(self._source, self._pos)
        if match:
            text = match.group(0)
            self._advance(len(text))
            return Token(TokenKind.BASED_NUMBER, text, line, column)
        match = _NUMBER_RE.match(self._source, self._pos)
        if match:
            text = match.group(0)
            self._advance(len(text))
            return Token(TokenKind.NUMBER, text, line, column)
        match = _ESCAPED_IDENT_RE.match(self._source, self._pos)
        if match:
            text = match.group(0)
            self._advance(len(text))
            return Token(TokenKind.IDENT, text[1:], line, column)
        match = _IDENT_RE.match(self._source, self._pos)
        if match:
            text = match.group(0)
            self._advance(len(text))
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            return Token(kind, text, line, column)
        if self._source[self._pos] == '"':
            end = self._source.find('"', self._pos + 1)
            if end == -1:
                raise VerilogSyntaxError("unterminated string literal", line, column)
            text = self._source[self._pos + 1 : end]
            self._advance(end + 1 - self._pos)
            return Token(TokenKind.STRING, text, line, column)
        for operator in _OPERATORS:
            if self._source.startswith(operator, self._pos):
                self._advance(len(operator))
                return Token(TokenKind.OPERATOR, operator, line, column)
        char = self._source[self._pos]
        if char in _PUNCT:
            self._advance(1)
            return Token(TokenKind.PUNCT, char, line, column)
        raise VerilogSyntaxError(f"unexpected character {char!r}", line, column)

    def _advance(self, count: int) -> None:
        for _ in range(count):
            if self._pos >= self._length:
                return
            if self._source[self._pos] == "\n":
                self._line += 1
                self._column = 1
            else:
                self._column += 1
            self._pos += 1


def parse_based_literal(text: str) -> tuple[Optional[int], int]:
    """Decode a based literal like ``8'hFF`` into ``(width, value)``.

    The width is ``None`` when the literal does not carry an explicit size
    (e.g. ``'d15``).  ``x``/``z``/``?`` digits are treated as zero; the
    synthesisable benchmark subset never relies on their tri-state semantics.
    """
    compact = text.replace("_", "").replace(" ", "")
    size_text, _, rest = compact.partition("'")
    width = int(size_text) if size_text else None
    rest = rest.lstrip("sS")
    base_char = rest[0].lower()
    digits = rest[1:].replace("?", "0").replace("x", "0").replace("X", "0")
    digits = digits.replace("z", "0").replace("Z", "0")
    base = {"b": 2, "o": 8, "d": 10, "h": 16}[base_char]
    value = int(digits, base) if digits else 0
    if width is not None:
        value &= (1 << width) - 1
    return width, value
