"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish frontend, elaboration and verification failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all exceptions raised by the repro library."""


class VerilogSyntaxError(ReproError):
    """Raised by the Verilog frontend on malformed source text."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", col {column}" if column is not None else "") + ")"
        super().__init__(message + location)


class ElaborationError(ReproError):
    """Raised when an AST cannot be elaborated into the RTL IR.

    Typical causes: unknown module instantiated, port width mismatch,
    combinational loops, or inferred latches.
    """


class UnsupportedFeatureError(ReproError):
    """Raised for Verilog constructs outside the supported synthesisable subset."""


class BitblastError(ReproError):
    """Raised when a word-level expression cannot be lowered to the AIG."""


class SolverError(ReproError):
    """Raised on internal SAT-solver failures (inconsistent clause database, ...)."""


class ConflictLimitExceeded(SolverError):
    """Raised when a budgeted SAT call exhausts its conflict limit.

    The persistent solver is left backtracked to level 0 and fully reusable;
    the caller decides how to proceed (typically by splitting the check into
    cube tasks, see :mod:`repro.sat.cubes`).
    """


class CheckDeadlineExceeded(SolverError):
    """Raised when a budgeted SAT call exceeds its wall-clock deadline.

    The persistent solver is left backtracked to level 0 and fully reusable;
    the caller settles the affected property class as an inconclusive
    ``timeout`` outcome carrying whatever telemetry the aborted call gathered
    (see ``DetectionConfig.check_timeout_s``).
    """


class PropertyError(ReproError):
    """Raised when an interval property is malformed (e.g. empty prove part)."""


class SimulationError(ReproError):
    """Raised by the RTL simulator on missing stimuli or X-propagation issues."""


class ConfigError(ReproError):
    """Raised when a :class:`repro.core.config.DetectionConfig` is invalid.

    Misconfiguration (unknown solver backend, negative class bound, malformed
    input lists) fails at construction time so that a bad config never makes
    it into the middle of a long verification run.
    """


class DesignError(ReproError):
    """Raised when a benchmark design cannot be generated or validated."""
