"""Pure-Python reference models of the algorithms the benchmark IPs implement.

These behavioural models are used **only** to validate that the generated RTL
cores are real cryptographic accelerators (via simulation) and to drive the
dynamic-testing baseline.  The detection method itself never consults them —
it is golden-free by construction.
"""

from repro.crypto.aes_ref import aes128_encrypt_block, expand_key_128, SBOX
from repro.crypto.rsa_ref import mod_exp, rsa_encrypt

__all__ = ["aes128_encrypt_block", "expand_key_128", "SBOX", "mod_exp", "rsa_encrypt"]
