"""Reference AES-128 block encryption (FIPS-197).

The implementation follows the specification directly (state as a 4x4 byte
matrix, column-major).  Block and key values are 128-bit integers with the
first byte of the standard test vectors in the most significant position,
matching how the RTL core's 128-bit ports are laid out.
"""

from __future__ import annotations

from typing import List, Tuple


def _generate_sbox() -> Tuple[int, ...]:
    """Compute the AES S-box from the finite-field definition."""

    def gf_mul(a: int, b: int) -> int:
        product = 0
        for _ in range(8):
            if b & 1:
                product ^= a
            high = a & 0x80
            a = (a << 1) & 0xFF
            if high:
                a ^= 0x1B
            b >>= 1
        return product

    # Multiplicative inverses via exponentiation (a^254).
    def gf_inverse(a: int) -> int:
        if a == 0:
            return 0
        result = 1
        base = a
        exponent = 254
        while exponent:
            if exponent & 1:
                result = gf_mul(result, base)
            base = gf_mul(base, base)
            exponent >>= 1
        return result

    sbox = []
    for value in range(256):
        inverse = gf_inverse(value)
        transformed = 0
        for bit in range(8):
            new_bit = (
                (inverse >> bit)
                ^ (inverse >> ((bit + 4) % 8))
                ^ (inverse >> ((bit + 5) % 8))
                ^ (inverse >> ((bit + 6) % 8))
                ^ (inverse >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            transformed |= new_bit << bit
        sbox.append(transformed)
    return tuple(sbox)


SBOX: Tuple[int, ...] = _generate_sbox()

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36)


def _bytes_of(block: int) -> List[int]:
    """128-bit integer -> 16 bytes, most significant byte first."""
    return [(block >> (8 * (15 - index))) & 0xFF for index in range(16)]


def _block_of(data: List[int]) -> int:
    value = 0
    for byte in data:
        value = (value << 8) | (byte & 0xFF)
    return value


def _xtime(value: int) -> int:
    value <<= 1
    if value & 0x100:
        value = (value ^ 0x1B) & 0xFF
    return value


def _mul(a: int, b: int) -> int:
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        a = _xtime(a)
        b >>= 1
    return result


def expand_key_128(key: int) -> List[List[int]]:
    """Expand a 128-bit key into 11 round keys (each a list of 16 bytes)."""
    key_bytes = _bytes_of(key)
    words = [key_bytes[4 * i : 4 * i + 4] for i in range(4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= _RCON[i // 4 - 1]
        words.append([a ^ b for a, b in zip(words[i - 4], temp)])
    return [sum((words[4 * r + c] for c in range(4)), []) for r in range(11)]


def _sub_bytes(state: List[int]) -> List[int]:
    return [SBOX[b] for b in state]


def _shift_rows(state: List[int]) -> List[int]:
    # state is column-major: state[4*c + r] is row r, column c.
    shifted = list(state)
    for row in range(1, 4):
        row_bytes = [state[4 * column + row] for column in range(4)]
        row_bytes = row_bytes[row:] + row_bytes[:row]
        for column in range(4):
            shifted[4 * column + row] = row_bytes[column]
    return shifted


def _mix_columns(state: List[int]) -> List[int]:
    mixed = list(state)
    for column in range(4):
        a = state[4 * column : 4 * column + 4]
        mixed[4 * column + 0] = _mul(a[0], 2) ^ _mul(a[1], 3) ^ a[2] ^ a[3]
        mixed[4 * column + 1] = a[0] ^ _mul(a[1], 2) ^ _mul(a[2], 3) ^ a[3]
        mixed[4 * column + 2] = a[0] ^ a[1] ^ _mul(a[2], 2) ^ _mul(a[3], 3)
        mixed[4 * column + 3] = _mul(a[0], 3) ^ a[1] ^ a[2] ^ _mul(a[3], 2)
    return mixed


def _add_round_key(state: List[int], round_key: List[int]) -> List[int]:
    return [a ^ b for a, b in zip(state, round_key)]


def aes128_encrypt_block(plaintext: int, key: int) -> int:
    """Encrypt one 128-bit block with a 128-bit key; returns the ciphertext."""
    round_keys = expand_key_128(key)
    state = _add_round_key(_bytes_of(plaintext), round_keys[0])
    for round_index in range(1, 10):
        state = _sub_bytes(state)
        state = _shift_rows(state)
        state = _mix_columns(state)
        state = _add_round_key(state, round_keys[round_index])
    state = _sub_bytes(state)
    state = _shift_rows(state)
    state = _add_round_key(state, round_keys[10])
    return _block_of(state)
