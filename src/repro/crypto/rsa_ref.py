"""Reference model of the BasicRSA accelerator: modular exponentiation.

The Trust-Hub *BasicRSA* benchmark implements textbook RSA on small (32-bit)
operands via square-and-multiply with an iterative modular multiplier.  The
reference below mirrors that behaviour so the RTL core can be validated by
simulation.
"""

from __future__ import annotations


def mod_mul(a: int, b: int, modulus: int) -> int:
    """Modular multiplication ``(a * b) mod modulus`` (shift-and-add form)."""
    if modulus == 0:
        return 0
    result = 0
    a %= modulus
    while b:
        if b & 1:
            result = (result + a) % modulus
        a = (a << 1) % modulus
        b >>= 1
    return result


def mod_exp(base: int, exponent: int, modulus: int) -> int:
    """Modular exponentiation ``base ** exponent mod modulus`` (LSB-first)."""
    if modulus == 0:
        return 0
    result = 1 % modulus
    base %= modulus
    while exponent:
        if exponent & 1:
            result = mod_mul(result, base, modulus)
        base = mod_mul(base, base, modulus)
        exponent >>= 1
    return result


def rsa_encrypt(message: int, exponent: int, modulus: int) -> int:
    """Textbook RSA encryption of ``message`` (no padding, small operands)."""
    return mod_exp(message, exponent, modulus)


def rsa_decrypt(ciphertext: int, private_exponent: int, modulus: int) -> int:
    """Textbook RSA decryption (inverse of :func:`rsa_encrypt`)."""
    return mod_exp(ciphertext, private_exponent, modulus)
