"""Fraig-style SAT sweeping: merge simulation-equivalent nodes by proof.

Classic functionally-reduced-AIG (fraig) preprocessing in the ABC lineage:
bit-parallel random simulation (:mod:`repro.aig.simvec`) partitions the
nodes of a cone into *equivalence candidates* — nodes whose signatures are
equal (or complementary) under every pattern — and a persistent
:class:`repro.sat.context.SolverContext` then proves or refutes each
candidate merge:

* **proved** (the XOR of the pair is UNSAT): the later node is merged onto
  the earlier one; every cone rebuilt afterwards
  (:func:`repro.aig.simplify.simplify_cone`) substitutes the representative
  and usually shrinks — the SAT solver never sees the duplicated logic.
* **refuted** (the XOR is satisfiable): the distinguishing model becomes a
  *new simulation pattern*, which splits every candidate class the pattern
  tells apart — counterexample-guided refinement.  Refuted pairs are
  remembered and never re-proved.

Nodes whose signature is constant-0/constant-1 are candidates against the
constants themselves; proving one merges it to FALSE/TRUE and constant
folding collapses its fanout cone.  This is the common hardware-Trojan
shape: a trigger cone that random simulation never activates is *proved*
constant (cheap UNSAT), or the refuting model is precisely a
trigger-activating pattern — which then feeds straight back into sim-first
falsification of the miter.

Proof effort is bounded (``conflict_limit`` per proof, ``max_proofs`` per
sweep); a proof that exceeds its budget is simply skipped — sweeping is an
optimisation, never a soundness obligation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.aig.aig import AIG, FALSE, TRUE, negate
from repro.aig.simplify import SimplifyResult, resolve_merge, simplify_cone
from repro.aig.simvec import PatternSet, node_signatures
from repro.errors import SolverError
from repro.obs.trace import span as _span
from repro.sat.context import SolverContext

#: Per-proof conflict budget.  Equivalences inside one cone are usually
#: trivial for the solver; anything harder is not worth proving here.
DEFAULT_CONFLICT_LIMIT = 200

#: Per-sweep cap on SAT proof attempts, so a cone with thousands of
#: accidental signature collisions cannot turn preprocessing into the
#: dominant cost.
DEFAULT_MAX_PROOFS = 64


@dataclass
class FraigStats:
    """Accounting of one :meth:`FraigContext.sweep` call."""

    merged_nodes: int = 0
    proofs_unsat: int = 0
    proofs_sat: int = 0
    proofs_unknown: int = 0
    refinement_patterns: int = 0
    rounds: int = 0


@dataclass
class FraigContext:
    """Persistent sweeping state over one shared AIG + solver context.

    One context lives as long as its engine (per worker, per design), so
    merges proved while sweeping one property class keep shrinking the
    cones of every later class, and refinement patterns sharpen the
    signatures run-wide.
    """

    aig: AIG
    context: SolverContext
    patterns: PatternSet
    rounds: int = 1
    conflict_limit: int = DEFAULT_CONFLICT_LIMIT
    max_proofs: int = DEFAULT_MAX_PROOFS
    merges: Dict[int, int] = field(default_factory=dict)
    _refuted: Set[Tuple[int, int]] = field(default_factory=set)

    # ------------------------------------------------------------------ #
    # Proof machinery
    # ------------------------------------------------------------------ #

    def _prove_equal(
        self, rep_literal: int, node_literal: int
    ) -> Tuple[Optional[bool], bool]:
        """UNSAT check of ``rep XOR node``.

        Returns ``(verdict, pattern_added)``: verdict True = equal, False =
        refuted, None = proof budget hit.  ``pattern_added`` is True only
        when a refuting *model* was recorded as a refinement pattern — a
        structurally refuted pair (the XOR folds to TRUE) yields no new
        pattern, so it must not trigger another refinement round.
        """
        goal = self.aig.xor(rep_literal, node_literal)
        if goal == FALSE:
            return True, False
        if goal == TRUE:
            return False, False
        cnf_goal = self.context.literal_of(goal)
        try:
            outcome = self.context.solve([cnf_goal], conflict_limit=self.conflict_limit)
        except SolverError:
            return None, False
        if not outcome.satisfiable:
            return True, False
        assignment: Dict[int, int] = {}
        model = outcome.result.model
        for node in self.aig.cone_nodes([goal]):
            if not self.aig.is_input(node):
                continue
            literal = self.context.literal_of(node << 1)
            value = model.get(abs(literal))
            if value is not None:
                assignment[node] = int(value if literal > 0 else not value)
        self.patterns.add_pattern(assignment)
        return False, True

    def _resolved(self, node: int) -> int:
        return resolve_merge(self.merges, node << 1)

    # ------------------------------------------------------------------ #
    # Sweeping
    # ------------------------------------------------------------------ #

    def sweep(
        self, roots: List[int], cone: Optional[List[int]] = None
    ) -> Tuple[SimplifyResult, FraigStats]:
        """Refine, prove and merge over the cone of ``roots``; rebuild them.

        Returns the rebuilt roots (merges substituted, constants folded,
        rewriting rules applied) together with sweep statistics.  ``cone``
        is the roots' already-computed node list, when the caller holds one
        (the roots do not change across refinement rounds, so it stays
        valid for the whole sweep).
        """
        stats = FraigStats()
        aig = self.aig
        budget = self.max_proofs
        for _ in range(max(0, self.rounds)):
            stats.rounds += 1
            with _span("sim", stage="signatures"):
                signatures = node_signatures(aig, roots, self.patterns, cone=cone)
            mask = self.patterns.mask
            # Group candidate AND nodes by canonical signature; inputs are
            # never merge *targets* (they are free variables) but may serve
            # as representatives of an AND node equal to them.
            classes: Dict[int, List[int]] = {}
            for node, signature in signatures.items():
                if node == 0:
                    continue
                if resolve_merge(self.merges, node << 1) != node << 1:
                    continue  # already merged away
                canonical = min(signature, signature ^ mask)
                classes.setdefault(canonical, []).append(node)
            refined = False
            for canonical in sorted(classes):
                members = sorted(classes[canonical])
                if canonical == 0 and 0 not in members:
                    members.insert(0, 0)  # constant class: FALSE is the rep
                if len(members) < 2:
                    continue
                rep = members[0]
                rep_literal = self._resolved(rep)
                rep_signature = signatures.get(rep, 0)
                for node in members[1:]:
                    if budget <= 0:
                        break
                    if not aig.is_and(node):
                        continue  # never merge a free input away
                    pair = (rep, node)
                    if pair in self._refuted:
                        continue
                    node_literal = self._resolved(node)
                    if resolve_merge(self.merges, node << 1) != node << 1:
                        continue
                    target = (
                        node_literal
                        if signatures[node] == rep_signature
                        else negate(node_literal)
                    )
                    budget -= 1
                    verdict, pattern_added = self._prove_equal(rep_literal, target)
                    if verdict is True:
                        stats.proofs_unsat += 1
                        stats.merged_nodes += 1
                        self.merges[node] = (
                            rep_literal
                            if signatures[node] == rep_signature
                            else negate(rep_literal)
                        )
                    elif verdict is False:
                        stats.proofs_sat += 1
                        self._refuted.add(pair)
                        if pattern_added:
                            stats.refinement_patterns += 1
                            refined = True
                    else:
                        stats.proofs_unknown += 1
                if budget <= 0:
                    break
            if not refined or budget <= 0:
                break  # partition stable (or out of proof budget)
        result = simplify_cone(
            aig,
            roots,
            self.merges,
            nodes_before=len(cone) if cone is not None else None,
        )
        return result, stats
