"""Rule-based AIG cone simplification: folding, compaction, 2-AND rewriting.

The engine's AIG is append-only and shared by every check of a run, so
"simplifying a cone" never mutates existing nodes: :func:`simplify_cone`
*rebuilds* the cone of the given root literals bottom-up — substituting
proven node merges (from the fraig sweep), re-applying structural hashing
and constant folding through :meth:`AIG.and_`, and adding a small set of
two-level AND rewriting rules the constructor does not try.  The rebuilt
root literals span a fresh, usually smaller cone; the nodes of the old cone
that nothing references any more are *dangling* and simply excluded from
every later cone traversal, CNF encoding and simulation — that exclusion is
the dangling-node sweep and cone-of-influence compaction in an append-only
graph.

The rewriting rules (with ``a``/``b`` the rebuilt fanins):

==========================  =========================================
``x & (x & y)``             ``x & y``          (containment)
``!x & (x & y)``            ``0``              (contradiction)
``x & !(x & y)``            ``x & !y``         (substitution)
``!x & !(x & y)``           ``!x``             (subsumption)
``(u & v) & (w & z)``       ``0`` when a fanin of one side is the
                            complement of a fanin of the other
==========================  =========================================

All rules are local equivalences, so the rebuilt literal computes exactly
the same function of the primary inputs — the property tests cross-check
this with random bit-parallel simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from repro.aig.aig import AIG, FALSE, negate


def cone_size(aig: AIG, roots: Iterable[int]) -> int:
    """Number of live nodes in the transitive fanin cone of ``roots``."""
    return len(aig.cone_nodes(roots))


@dataclass
class SimplifyResult:
    """Outcome of one cone simplification pass."""

    roots: List[int]
    nodes_before: int
    nodes_after: int
    merged_substitutions: int = 0


def rewrite_and(aig: AIG, a: int, b: int) -> int:
    """``a AND b`` with the two-level rules on top of the constructor rules."""
    for x, y in ((a, b), (b, a)):
        node = x >> 1
        if node == 0 or not aig.is_and(node):
            continue
        u, v = aig.fanins(node)
        if x & 1 == 0:
            if y == u or y == v:
                return x  # x & (x & y) == x & y
            if y == negate(u) or y == negate(v):
                return FALSE  # !x & (x & y) == 0
        else:
            if y == u:
                return aig.and_(u, negate(v))  # u & !(u & v) == u & !v
            if y == v:
                return aig.and_(v, negate(u))
            if y == negate(u) or y == negate(v):
                return y  # !u & !(u & v) == !u
    if a & 1 == 0 and b & 1 == 0:
        left_node, right_node = a >> 1, b >> 1
        if left_node and right_node and aig.is_and(left_node) and aig.is_and(right_node):
            u, v = aig.fanins(left_node)
            w, z = aig.fanins(right_node)
            if negate(u) in (w, z) or negate(v) in (w, z):
                return FALSE  # (u & v) & (w & z) with complementary fanins
    return aig.and_(a, b)


def resolve_merge(merges: Dict[int, int], literal: int) -> int:
    """Follow a node-merge chain (with polarity) to its representative.

    ``merges`` maps a node to the literal that provably computes the same
    function; representatives always have smaller node indices (the fraig
    sweep merges toward the earliest-created node), so chains terminate.
    """
    sign = literal & 1
    node = literal >> 1
    while node in merges:
        target = merges[node]
        sign ^= target & 1
        node = target >> 1
    return (node << 1) | sign


def simplify_cone(
    aig: AIG,
    roots: List[int],
    merges: Optional[Dict[int, int]] = None,
    nodes_before: Optional[int] = None,
) -> SimplifyResult:
    """Rebuild the cone of ``roots`` with merges, folding and rewriting.

    Returns new root literals (over the same AIG) plus before/after cone
    sizes.  The traversal follows *merge-resolved* fanins, so the cone of a
    node that was merged away is never rebuilt — its representative's cone
    is entered instead (cone-of-influence compaction).  ``nodes_before``
    skips the size traversal when the caller already measured the cone.
    """
    merges = merges or {}
    if nodes_before is None:
        nodes_before = cone_size(aig, roots)
    resolved_roots = [resolve_merge(merges, literal) for literal in roots]

    # Iterative post-order over the merge-resolved structure.
    order: List[int] = []
    seen: set = set()
    visit: List[Tuple[int, bool]] = [(literal >> 1, False) for literal in resolved_roots]
    while visit:
        node, processed = visit.pop()
        if processed:
            order.append(node)
            continue
        if node in seen or node == 0:
            continue
        seen.add(node)
        visit.append((node, True))
        if aig.is_and(node):
            left, right = aig.fanins(node)
            visit.append((resolve_merge(merges, left) >> 1, False))
            visit.append((resolve_merge(merges, right) >> 1, False))

    substitutions = 0
    rebuilt: Dict[int, int] = {0: FALSE}  # node -> rebuilt positive literal
    for node in order:
        if not aig.is_and(node):
            rebuilt[node] = node << 1
            continue
        left, right = aig.fanins(node)
        resolved_left = resolve_merge(merges, left)
        resolved_right = resolve_merge(merges, right)
        substitutions += (resolved_left != left) + (resolved_right != right)
        left_lit = rebuilt[resolved_left >> 1] ^ (resolved_left & 1)
        right_lit = rebuilt[resolved_right >> 1] ^ (resolved_right & 1)
        rebuilt[node] = rewrite_and(aig, left_lit, right_lit)

    new_roots = []
    for literal in resolved_roots:
        new_roots.append(rebuilt.get(literal >> 1, literal & ~1) ^ (literal & 1))
    return SimplifyResult(
        roots=new_roots,
        nodes_before=nodes_before,
        nodes_after=cone_size(aig, new_roots),
        merged_substitutions=substitutions,
    )
