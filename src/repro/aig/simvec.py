"""Bit-parallel random simulation of AIG cones.

The preprocessing subsystem evaluates whole batches of random input patterns
in one cone traversal: every input node carries a *word* — a Python int with
one bit per pattern — and :meth:`repro.aig.aig.AIG.evaluate_words` combines
them with plain integer ``&``/``^``, so a 64-pattern batch costs barely more
than a single scalar :meth:`~repro.aig.aig.AIG.evaluate` call.  Two uses:

* **sim-first falsification** — a property miter whose word is non-zero
  under a random batch is satisfiable; the set bit *is* a counterexample and
  the SAT solver is never invoked (see :meth:`repro.ipc.engine.IpcEngine
  .begin_check`);
* **equivalence-candidate signatures** — nodes with different words cannot
  be equivalent, so fraig-style SAT sweeping (:mod:`repro.aig.fraig`) only
  pays solver calls for pairs random simulation could not tell apart.

Pattern words are *per-node seeded*: the word of input node ``n`` depends
only on ``(seed, n)``, never on the order in which cones were simulated.
Counterexample patterns appended later (:meth:`PatternSet.add_pattern`) are
the only order-dependent state — which is why the execution layer settles
counterexample-bearing classes on a fresh, deterministic context (see
:mod:`repro.exec.worker`).
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional

from repro.aig import simd
from repro.aig.aig import AIG

#: Default number of random patterns per batch.  One 64-bit word per input
#: on a 64-bit host; Python ints make larger batches equally cheap per op.
DEFAULT_PATTERNS = 64

#: Default seed of the deterministic per-node pattern words.
DEFAULT_SEED = 0xF1A6

#: Recognised simulation-kernel names (``--sim-backend``).
SIM_BACKENDS = ("auto", "python", "numpy")


def resolve_sim_backend(name: str, num_patterns: int) -> str:
    """Concrete kernel ("python" or "numpy") for one evaluation.

    ``"auto"`` picks numpy only when it is installed *and* the batch is wide
    enough to amortize the numpy fixed costs; ``"numpy"`` degrades to the
    Python kernel when numpy is missing (the two kernels are bit-identical,
    so the fallback is safe everywhere).
    """
    if not simd.numpy_available():
        return "python"
    if name == "numpy":
        return "numpy"
    if name == "auto" and num_patterns >= simd.NUMPY_MIN_PATTERNS:
        return "numpy"
    return "python"


def _word_values(
    aig: AIG,
    roots: List[int],
    input_words: Dict[int, int],
    mask: int,
    cone: Optional[List[int]],
    sim_backend: str,
) -> Dict[int, int]:
    """Positive-literal word of every cone node, via the chosen kernel."""
    if resolve_sim_backend(sim_backend, mask.bit_length()) == "numpy":
        return simd.evaluate_word_values_numpy(aig, roots, input_words, mask, cone=cone)
    return aig.evaluate_word_values(roots, input_words, mask, cone=cone)


def _root_words(
    aig: AIG,
    roots: List[int],
    input_words: Dict[int, int],
    mask: int,
    cone: Optional[List[int]],
    sim_backend: str,
) -> List[int]:
    """Word of every root literal (complements applied), via the chosen kernel."""
    if resolve_sim_backend(sim_backend, mask.bit_length()) == "numpy":
        return simd.evaluate_words_numpy(aig, roots, input_words, mask, cone=cone)
    return aig.evaluate_words(roots, input_words, mask, cone=cone)


def _node_word_seed(seed: int, node: int) -> int:
    """Deterministic 64-bit mix of (seed, node) — stable across processes."""
    value = (seed * 0x9E3779B97F4A7C15 + node * 0xBF58476D1CE4E5B9) & ((1 << 64) - 1)
    value ^= value >> 31
    return value


class PatternSet:
    """A growing batch of input patterns, stored column-wise as words.

    ``words[node]`` holds bit ``i`` of input ``node`` under pattern ``i``.
    The first :attr:`base_patterns` columns are pseudo-random and a pure
    function of ``(seed, node)``; later columns are appended explicitly
    (counterexample-guided refinement of the fraig sweep).
    """

    def __init__(
        self,
        num_patterns: int = DEFAULT_PATTERNS,
        seed: int = DEFAULT_SEED,
        max_refinements: int = 256,
        sim_backend: str = "auto",
    ) -> None:
        if num_patterns < 1:
            raise ValueError(f"a pattern set needs >= 1 patterns, got {num_patterns}")
        self.base_patterns = num_patterns
        self.num_patterns = num_patterns
        self.seed = seed
        #: Requested simulation kernel; resolved per evaluation by
        #: :func:`resolve_sim_backend` (words are bit-identical either way).
        self.sim_backend = sim_backend
        # Refinement columns are bounded: past ``max_refinements`` appended
        # patterns, the oldest refinement slot is recycled.  Without the cap
        # a long run's refuted fraig proofs would widen every word (and the
        # mask) without bound, making each later simulation batch slower.
        self.max_refinements = max_refinements
        self._next_refinement = 0
        self.words: Dict[int, int] = {}

    @property
    def mask(self) -> int:
        """The all-ones word ``(1 << num_patterns) - 1``."""
        return (1 << self.num_patterns) - 1

    # ------------------------------------------------------------------ #
    # Population
    # ------------------------------------------------------------------ #

    def _fresh_word(self, node: int) -> int:
        """Pattern word of a newly tracked input node.

        The first ``base_patterns`` bits are pseudo-random from the node's
        own seed; refinement columns appended before this node was first
        seen default to 0 (a refinement pattern constrains only the inputs
        its counterexample mentioned).
        """
        rng = random.Random(_node_word_seed(self.seed, node))
        return rng.getrandbits(self.base_patterns)

    def ensure_inputs(
        self, aig: AIG, roots: Iterable[int], cone: Optional[List[int]] = None
    ) -> None:
        """Track every input node in the cone of ``roots``.

        Callers that already hold the cone's node list (hot paths walk it
        anyway for size telemetry) pass it via ``cone`` to skip the repeat
        traversal.
        """
        words = self.words
        for node in cone if cone is not None else aig.cone_nodes(roots):
            if aig.is_input(node) and node not in words:
                words[node] = self._fresh_word(node)

    def add_pattern(self, assignment: Dict[int, int]) -> int:
        """Record one refinement pattern column; returns its index.

        Inputs absent from ``assignment`` get 0 in the column; inputs named
        by the assignment but not yet tracked are added (their earlier
        columns are the node's deterministic pseudo-random bits).  Once
        ``max_refinements`` columns exist, the oldest slot is recycled.
        """
        slot = self.base_patterns + (self._next_refinement % self.max_refinements)
        self._next_refinement += 1
        if slot >= self.num_patterns:
            self.num_patterns = slot + 1
        for node in assignment:
            if node not in self.words:
                self.words[node] = self._fresh_word(node)
        bit = 1 << slot
        for node in self.words:
            if assignment.get(node, 0) & 1:
                self.words[node] |= bit
            else:
                self.words[node] &= ~bit
        return slot

    # ------------------------------------------------------------------ #
    # Evaluation
    # ------------------------------------------------------------------ #

    def evaluate(
        self, aig: AIG, roots: List[int], cone: Optional[List[int]] = None
    ) -> List[int]:
        """Words of ``roots`` under the current batch (inputs auto-tracked)."""
        self.ensure_inputs(aig, roots, cone=cone)
        return _root_words(aig, list(roots), self.words, self.mask, cone, self.sim_backend)

    def extract(
        self,
        aig: AIG,
        roots: Iterable[int],
        index: int,
        cone: Optional[List[int]] = None,
    ) -> Dict[int, int]:
        """The scalar input assignment of pattern ``index`` over a cone."""
        assignment: Dict[int, int] = {}
        for node in cone if cone is not None else aig.cone_nodes(roots):
            if aig.is_input(node):
                assignment[node] = (self.words.get(node, 0) >> index) & 1
        return assignment


def node_signatures(
    aig: AIG,
    roots: List[int],
    patterns: PatternSet,
    cone: Optional[List[int]] = None,
) -> Dict[int, int]:
    """Simulation signature (positive-literal word) of every cone node.

    Nodes whose signatures differ under even one pattern are provably
    inequivalent; equal signatures make a node pair a *candidate* for the
    fraig sweep's SAT proof.  Pass the roots' already-computed ``cone`` to
    skip the repeat traversals.
    """
    patterns.ensure_inputs(aig, roots, cone=cone)
    return _word_values(
        aig, roots, patterns.words, patterns.mask, cone, patterns.sim_backend
    )


def first_satisfying_index(words: List[int], mask: int) -> Optional[int]:
    """Lowest pattern index at which *every* goal word is 1, or None."""
    combined = mask
    for word in words:
        combined &= word
        if not combined:
            return None
    return (combined & -combined).bit_length() - 1


def find_satisfying_pattern(
    aig: AIG, goals: List[int], patterns: PatternSet
) -> Optional[int]:
    """Index of the first pattern satisfying *all* goal literals, or None."""
    return first_satisfying_index(patterns.evaluate(aig, goals), patterns.mask)


def minimize_assignment(
    aig: AIG,
    goals: List[int],
    assignment: Dict[int, int],
    max_rounds: int = 256,
    cone: Optional[List[int]] = None,
    sim_backend: str = "auto",
) -> Dict[int, int]:
    """Greedily drive input bits of a satisfying assignment to 0.

    Random patterns set roughly half of all inputs, which buries the few
    bits a counterexample actually needs under noise (and makes the
    false-alarm diagnosis of :mod:`repro.core.falsealarm` see spurious
    differences everywhere).  This pass zeroes every input whose value the
    goals do not rely on, deterministically: candidate bits are processed in
    sorted node order, and each round evaluates all *cumulative prefixes*
    of candidate flips in one bit-parallel cone traversal — the longest
    prefix that keeps every goal true is accepted.  A candidate that fails
    even alone is pinned to 1 and never retried.  The result is a
    satisfying assignment that is minimal-ish, canonical for the given
    starting assignment, and independent of pattern-batch noise.
    """
    current = dict(assignment)
    pinned: set = set()
    for _ in range(max_rounds):
        candidates = sorted(
            node for node, value in current.items() if value and node not in pinned
        )
        if not candidates:
            break
        # Pattern j (0-based) flips candidates[0..j] to 0; evaluate all
        # prefixes in one traversal.
        count = len(candidates)
        mask = (1 << count) - 1
        words: Dict[int, int] = {}
        for node, value in current.items():
            words[node] = mask if value else 0
        for j, node in enumerate(candidates):
            # Candidate j is 0 in patterns j..count-1 (all prefixes >= j+1).
            words[node] = (1 << j) - 1
        goal_words = _root_words(aig, goals, words, mask, cone, sim_backend)
        combined = mask
        for word in goal_words:
            combined &= word
        if combined == 0:
            # Even flipping the first candidate alone breaks a goal.
            pinned.add(candidates[0])
            continue
        # Longest prefix of flips that keeps every goal satisfied; the next
        # candidate (which failed in combination with this prefix) gets
        # retried in the following round, where it may succeed alone.
        accepted = combined.bit_length()  # highest satisfied prefix index + 1
        for node in candidates[: min(accepted, count)]:
            current[node] = 0
    return current
