"""And-Inverter Graph with structural hashing.

Literal encoding
----------------
A *node* is an integer index; node ``0`` is the constant-false node.  A
*literal* is ``2 * node + sign`` where ``sign == 1`` denotes complementation,
so ``FALSE == 0`` and ``TRUE == 1``.  Inputs (free variables) and AND nodes
share the node index space.

Structural hashing plus the usual two-level simplification rules mean that
two structurally identical cones built over the same input literals collapse
to the same literal.  The 2-safety engine of :mod:`repro.core.miter` relies on
this: after substituting assumed-equal signals of the second design instance
by the literals of the first, an untampered logic cone hashes to the
identical literal and the proof obligation discharges without any SAT call.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

FALSE = 0
TRUE = 1


def negate(literal: int) -> int:
    """Complement a literal."""
    return literal ^ 1


class AIG:
    """A mutable And-Inverter Graph."""

    def __init__(self) -> None:
        # _nodes[i] is None for primary inputs, or (left_lit, right_lit) for ANDs.
        self._nodes: List[Optional[Tuple[int, int]]] = [None]  # node 0 = constant false
        self._strash: Dict[Tuple[int, int], int] = {}
        self._input_names: Dict[int, str] = {}

    # ------------------------------------------------------------------ #
    # Construction
    # ------------------------------------------------------------------ #

    def add_input(self, name: Optional[str] = None) -> int:
        """Create a fresh primary input and return its positive literal."""
        node = len(self._nodes)
        self._nodes.append(None)
        if name is not None:
            self._input_names[node] = name
        return node << 1

    def and_(self, a: int, b: int) -> int:
        """Return a literal for ``a AND b`` with two-level simplification."""
        if a == FALSE or b == FALSE or a == negate(b):
            return FALSE
        if a == TRUE:
            return b
        if b == TRUE or a == b:
            return a
        if a > b:
            a, b = b, a
        key = (a, b)
        node = self._strash.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._strash[key] = node
        return node << 1

    def not_(self, a: int) -> int:
        return negate(a)

    def or_(self, a: int, b: int) -> int:
        return negate(self.and_(negate(a), negate(b)))

    def xor(self, a: int, b: int) -> int:
        # (a AND NOT b) OR (NOT a AND b)
        return self.or_(self.and_(a, negate(b)), self.and_(negate(a), b))

    def xnor(self, a: int, b: int) -> int:
        return negate(self.xor(a, b))

    def mux(self, select: int, then: int, otherwise: int) -> int:
        """``select ? then : otherwise``"""
        if select == TRUE:
            return then
        if select == FALSE:
            return otherwise
        if then == otherwise:
            return then
        return self.or_(self.and_(select, then), self.and_(negate(select), otherwise))

    def and_many(self, literals: Iterable[int]) -> int:
        result = TRUE
        for literal in literals:
            result = self.and_(result, literal)
            if result == FALSE:
                return FALSE
        return result

    def or_many(self, literals: Iterable[int]) -> int:
        result = FALSE
        for literal in literals:
            result = self.or_(result, literal)
            if result == TRUE:
                return TRUE
        return result

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_and_nodes(self) -> int:
        return sum(1 for node in self._nodes if node is not None)

    def is_input(self, node: int) -> bool:
        return node != 0 and self._nodes[node] is None

    def is_and(self, node: int) -> bool:
        return self._nodes[node] is not None

    def node_of(self, literal: int) -> int:
        return literal >> 1

    def fanins(self, node: int) -> Tuple[int, int]:
        children = self._nodes[node]
        if children is None:
            raise ValueError(f"node {node} is not an AND node")
        return children

    def input_name(self, node: int) -> Optional[str]:
        return self._input_names.get(node)

    def inputs(self) -> List[int]:
        """All primary-input nodes."""
        return [node for node in range(1, len(self._nodes)) if self._nodes[node] is None]

    # ------------------------------------------------------------------ #
    # Cone traversal and evaluation
    # ------------------------------------------------------------------ #

    def cone_nodes(self, roots: Iterable[int]) -> List[int]:
        """All nodes in the transitive fanin cone of the root literals, topologically sorted."""
        seen = set()
        order: List[int] = []
        # Iterative DFS with explicit post-ordering.
        visit_stack: List[Tuple[int, bool]] = [
            (self.node_of(literal), False) for literal in roots
        ]
        while visit_stack:
            node, processed = visit_stack.pop()
            if processed:
                order.append(node)
                continue
            if node in seen or node == 0:
                continue
            seen.add(node)
            visit_stack.append((node, True))
            children = self._nodes[node]
            if children is not None:
                left, right = children
                visit_stack.append((self.node_of(left), False))
                visit_stack.append((self.node_of(right), False))
        return order

    def evaluate(self, roots: Iterable[int], input_values: Dict[int, int]) -> List[int]:
        """Evaluate root literals under an assignment of input *nodes* to 0/1."""
        roots = list(roots)
        values: Dict[int, int] = {0: 0}
        for node in self.cone_nodes(roots):
            children = self._nodes[node]
            if children is None:
                values[node] = input_values.get(node, 0) & 1
            else:
                left, right = children
                left_value = values[self.node_of(left)] ^ (left & 1)
                right_value = values[self.node_of(right)] ^ (right & 1)
                values[node] = left_value & right_value
        results = []
        for literal in roots:
            node = self.node_of(literal)
            value = values.get(node, 0)
            results.append(value ^ (literal & 1))
        return results

    def evaluate_word_values(
        self,
        roots: Iterable[int],
        input_words: Dict[int, int],
        mask: int,
        cone: Optional[List[int]] = None,
    ) -> Dict[int, int]:
        """Bit-parallel evaluation: word of every node in the roots' cone.

        The shared kernel of :meth:`evaluate_words` and the fraig sweep's
        signature computation: ``input_words`` maps input *nodes* to machine
        words holding one assignment bit per pattern (bit ``i`` of every
        word belongs to pattern ``i``), ``mask`` is the all-ones word
        ``(1 << patterns) - 1``, and the returned dict holds the
        positive-literal word of every cone node.  Python ints carry
        arbitrarily many patterns in one word, so a single cone traversal
        evaluates the whole batch — complemented literals XOR against the
        mask instead of flipping bits one by one.  Callers that already
        hold the roots' topologically sorted cone pass it via ``cone`` to
        skip the repeat traversal.
        """
        nodes = self._nodes
        values: Dict[int, int] = {0: 0}
        for node in cone if cone is not None else self.cone_nodes(roots):
            children = nodes[node]
            if children is None:
                values[node] = input_words.get(node, 0) & mask
            else:
                left, right = children
                left_word = values[left >> 1]
                if left & 1:
                    left_word ^= mask
                right_word = values[right >> 1]
                if right & 1:
                    right_word ^= mask
                values[node] = left_word & right_word
        return values

    def evaluate_words(
        self,
        roots: Iterable[int],
        input_words: Dict[int, int],
        mask: int,
        cone: Optional[List[int]] = None,
    ) -> List[int]:
        """Bit-parallel evaluation of root literals over a batch of patterns.

        One word per root literal, in root order; see
        :meth:`evaluate_word_values` for the word semantics.
        """
        roots = list(roots)
        values = self.evaluate_word_values(roots, input_words, mask, cone=cone)
        results = []
        for literal in roots:
            word = values.get(literal >> 1, 0)
            results.append(word ^ mask if literal & 1 else word)
        return results
