"""Word-level to bit-level lowering of RTL expressions onto an AIG.

A *vector* is a list of AIG literals, least-significant bit first.  The
bit-blaster interprets every :mod:`repro.rtl.exprs` node over an environment
mapping signal names to vectors, producing a vector for the root expression.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.aig.aig import AIG, FALSE, TRUE, negate
from repro.errors import BitblastError
from repro.rtl import exprs

Vector = List[int]


class BitBlaster:
    """Lowers word-level expressions to AIG literal vectors."""

    def __init__(self, aig: AIG) -> None:
        self._aig = aig

    @property
    def aig(self) -> AIG:
        return self._aig

    # ------------------------------------------------------------------ #
    # Vector constructors
    # ------------------------------------------------------------------ #

    def constant(self, value: int, width: int) -> Vector:
        return [TRUE if (value >> bit) & 1 else FALSE for bit in range(width)]

    def fresh_vector(self, name: str, width: int) -> Vector:
        return [self._aig.add_input(f"{name}[{bit}]") for bit in range(width)]

    # ------------------------------------------------------------------ #
    # Expression lowering
    # ------------------------------------------------------------------ #

    def blast(self, expr: exprs.Expr, env: Dict[str, Vector]) -> Vector:
        """Lower ``expr`` over the signal environment ``env``."""
        result = self._blast(expr, env)
        if len(result) != expr.width:
            raise BitblastError(
                f"internal width mismatch: produced {len(result)} bits for a {expr.width}-bit expression"
            )
        return result

    def _blast(self, expr: exprs.Expr, env: Dict[str, Vector]) -> Vector:
        if isinstance(expr, exprs.Const):
            return self.constant(expr.value, expr.width)
        if isinstance(expr, exprs.Ref):
            vector = env.get(expr.name)
            if vector is None:
                raise BitblastError(f"no vector bound for signal {expr.name!r}")
            return self._resize(list(vector), expr.width)
        if isinstance(expr, exprs.Unop):
            return self._blast_unop(expr, env)
        if isinstance(expr, exprs.Binop):
            return self._blast_binop(expr, env)
        if isinstance(expr, exprs.Mux):
            condition = self._reduce_or(self._blast(expr.cond, env))
            then = self._resize(self._blast(expr.then, env), expr.width)
            otherwise = self._resize(self._blast(expr.otherwise, env), expr.width)
            return [self._aig.mux(condition, t, e) for t, e in zip(then, otherwise)]
        if isinstance(expr, exprs.Concat):
            bits: Vector = []
            for part in reversed(expr.parts):  # parts are MSB-first; build LSB-first
                bits.extend(self._blast(part, env))
            return self._resize(bits, expr.width)
        if isinstance(expr, exprs.Slice):
            base = self._blast(expr.base, env)
            return self._resize(base[expr.lsb : expr.lsb + expr.width], expr.width)
        if isinstance(expr, exprs.Lut):
            return self._blast_lut(expr, env)
        raise BitblastError(f"cannot bit-blast expression node {type(expr).__name__}")

    def _blast_lut(self, expr: exprs.Lut, env: Dict[str, Vector]) -> Vector:
        """Lower an inferred ROM through a shared one-hot decoder tree.

        All output bits reuse the same minterm literals, which keeps a
        256-entry, 8-bit-wide table (an AES S-box) at roughly 1.5k AIG nodes
        instead of the ~10k a naive multiplexer chain would create.
        """
        index = self._blast(expr.index, env)
        table = expr.table
        constant_index = self._constant_value(index)
        if constant_index is not None:
            value = table[constant_index] if constant_index < len(table) else 0
            return self.constant(value, expr.width)
        # minterms[i] is true iff the index equals i.
        minterms: List[int] = [TRUE]
        for bit in index:
            expanded: List[int] = []
            for term in minterms:
                expanded.append(self._aig.and_(term, negate(bit)))
            for term in minterms:
                expanded.append(self._aig.and_(term, bit))
            # Keep LSB-first ordering: entry i of `expanded` corresponds to the
            # index value whose processed low bits equal i.
            minterms = expanded
        result: Vector = []
        for bit_position in range(expr.width):
            selected = [
                minterms[i]
                for i in range(min(len(table), len(minterms)))
                if (table[i] >> bit_position) & 1
            ]
            result.append(self._aig.or_many(selected))
        return result

    # -- unary ---------------------------------------------------------- #

    def _blast_unop(self, expr: exprs.Unop, env: Dict[str, Vector]) -> Vector:
        operand = self._blast(expr.operand, env)
        op = expr.op
        if op == exprs.UnaryOp.NOT:
            return [negate(bit) for bit in self._resize(operand, expr.width)]
        if op == exprs.UnaryOp.NEG:
            inverted = [negate(bit) for bit in self._resize(operand, expr.width)]
            return self._add(inverted, self.constant(1, expr.width))
        if op == exprs.UnaryOp.RED_AND:
            return [self._aig.and_many(operand)]
        if op == exprs.UnaryOp.RED_OR:
            return [self._aig.or_many(operand)]
        if op == exprs.UnaryOp.RED_XOR:
            result = FALSE
            for bit in operand:
                result = self._aig.xor(result, bit)
            return [result]
        if op == exprs.UnaryOp.LOG_NOT:
            return [negate(self._aig.or_many(operand))]
        raise BitblastError(f"unknown unary operator {op!r}")

    # -- binary --------------------------------------------------------- #

    def _blast_binop(self, expr: exprs.Binop, env: Dict[str, Vector]) -> Vector:
        op = expr.op
        left = self._blast(expr.left, env)
        right = self._blast(expr.right, env)
        if op in (exprs.BinaryOp.AND, exprs.BinaryOp.OR, exprs.BinaryOp.XOR):
            left = self._resize(left, expr.width)
            right = self._resize(right, expr.width)
            gate = {exprs.BinaryOp.AND: self._aig.and_, exprs.BinaryOp.OR: self._aig.or_,
                    exprs.BinaryOp.XOR: self._aig.xor}[op]
            return [gate(a, b) for a, b in zip(left, right)]
        if op == exprs.BinaryOp.ADD:
            return self._add(self._resize(left, expr.width), self._resize(right, expr.width))
        if op == exprs.BinaryOp.SUB:
            inverted = [negate(bit) for bit in self._resize(right, expr.width)]
            return self._add(self._resize(left, expr.width), inverted, carry_in=TRUE)
        if op == exprs.BinaryOp.MUL:
            return self._multiply(self._resize(left, expr.width), self._resize(right, expr.width))
        if op == exprs.BinaryOp.MOD:
            return self._modulo(left, right, expr.width)
        if op == exprs.BinaryOp.EQ:
            return [self._equal(left, right)]
        if op == exprs.BinaryOp.NE:
            return [negate(self._equal(left, right))]
        if op in (exprs.BinaryOp.ULT, exprs.BinaryOp.ULE, exprs.BinaryOp.UGT, exprs.BinaryOp.UGE):
            return [self._compare(op, left, right)]
        if op in (exprs.BinaryOp.SHL, exprs.BinaryOp.LSHR):
            return self._shift(op, self._resize(left, expr.width), right)
        if op == exprs.BinaryOp.LOG_AND:
            return [self._aig.and_(self._reduce_or(left), self._reduce_or(right))]
        if op == exprs.BinaryOp.LOG_OR:
            return [self._aig.or_(self._reduce_or(left), self._reduce_or(right))]
        raise BitblastError(f"unknown binary operator {op!r}")

    # ------------------------------------------------------------------ #
    # Arithmetic helpers
    # ------------------------------------------------------------------ #

    def _add(self, left: Vector, right: Vector, carry_in: int = FALSE) -> Vector:
        result: Vector = []
        carry = carry_in
        for a, b in zip(left, right):
            partial = self._aig.xor(a, b)
            result.append(self._aig.xor(partial, carry))
            carry = self._aig.or_(self._aig.and_(a, b), self._aig.and_(partial, carry))
        return result

    def _multiply(self, left: Vector, right: Vector) -> Vector:
        width = len(left)
        accumulator = self.constant(0, width)
        for shift, select in enumerate(right):
            if select == FALSE:
                continue
            partial = self.constant(0, shift) + left[: width - shift]
            gated = [self._aig.and_(bit, select) for bit in partial]
            accumulator = self._add(accumulator, self._resize(gated, width))
        return accumulator

    def _modulo(self, left: Vector, right: Vector, width: int) -> Vector:
        # Restoring division is expensive; support only constant power-of-two
        # divisors, which is all the benchmark designs use.
        value = self._constant_value(right)
        if value is None or value == 0 or value & (value - 1):
            raise BitblastError("modulo is only supported for constant power-of-two divisors")
        bits = value.bit_length() - 1
        return self._resize(left[:bits], width)

    def _constant_value(self, vector: Vector) -> int | None:
        value = 0
        for index, bit in enumerate(vector):
            if bit == TRUE:
                value |= 1 << index
            elif bit != FALSE:
                return None
        return value

    def _equal(self, left: Vector, right: Vector) -> int:
        width = max(len(left), len(right))
        left = self._resize(list(left), width)
        right = self._resize(list(right), width)
        return self._aig.and_many(self._aig.xnor(a, b) for a, b in zip(left, right))

    def _compare(self, op: str, left: Vector, right: Vector) -> int:
        width = max(len(left), len(right))
        left = self._resize(list(left), width)
        right = self._resize(list(right), width)
        # left < right  <=>  borrow out of (left - right)
        borrow = FALSE
        for a, b in zip(left, right):
            a_xor_b = self._aig.xor(a, b)
            borrow = self._aig.or_(
                self._aig.and_(negate(a), b),
                self._aig.and_(negate(a_xor_b), borrow),
            )
        less_than = borrow
        if op == exprs.BinaryOp.ULT:
            return less_than
        if op == exprs.BinaryOp.UGE:
            return negate(less_than)
        equal = self._equal(left, right)
        if op == exprs.BinaryOp.ULE:
            return self._aig.or_(less_than, equal)
        if op == exprs.BinaryOp.UGT:
            return negate(self._aig.or_(less_than, equal))
        raise BitblastError(f"unknown comparison {op!r}")

    def _shift(self, op: str, value: Vector, amount: Vector) -> Vector:
        constant_amount = self._constant_value(amount)
        width = len(value)
        if constant_amount is not None:
            return self._shift_by_constant(op, value, constant_amount)
        # Variable shift: logarithmic mux ladder over the amount bits.
        useful_bits = max(1, (width - 1).bit_length())
        result = list(value)
        for bit_index in range(min(useful_bits, len(amount))):
            select = amount[bit_index]
            shifted = self._shift_by_constant(op, result, 1 << bit_index)
            result = [self._aig.mux(select, s, r) for s, r in zip(shifted, result)]
        overflow_bits = amount[useful_bits:]
        if overflow_bits:
            overflow = self._aig.or_many(overflow_bits)
            result = [self._aig.mux(overflow, FALSE, bit) for bit in result]
        return result

    def _shift_by_constant(self, op: str, value: Vector, amount: int) -> Vector:
        width = len(value)
        if amount >= width:
            return self.constant(0, width)
        if op == exprs.BinaryOp.SHL:
            return self.constant(0, amount) + value[: width - amount]
        return value[amount:] + self.constant(0, amount)

    # ------------------------------------------------------------------ #
    # Misc helpers
    # ------------------------------------------------------------------ #

    def _reduce_or(self, vector: Vector) -> int:
        if len(vector) == 1:
            return vector[0]
        return self._aig.or_many(vector)

    def _resize(self, vector: Vector, width: int) -> Vector:
        if len(vector) == width:
            return vector
        if len(vector) > width:
            return vector[:width]
        return vector + [FALSE] * (width - len(vector))

    def equal_vectors(self, left: Sequence[int], right: Sequence[int]) -> int:
        """Single literal that is true iff the two vectors are bitwise equal."""
        return self._equal(list(left), list(right))
