"""The shared miter preprocessor: sim-first falsification, then sweeping.

One implementation of the two-stage pipeline both property engines run
before handing a miter to the SAT solver — :class:`repro.ipc.engine
.IpcEngine` preprocesses ``[miter] + clause_assumptions`` per combinational
check, :class:`repro.core.unroll.SequentialUnroller` preprocesses the
unrolled divergence miter.  The stages:

1. evaluate every goal over the persistent random-pattern batch in one
   bit-parallel cone traversal; a pattern satisfying *all* goals is a
   genuine counterexample, returned (zero-minimized) as :attr:`PreprocessOutcome
   .sim_model` — the caller then never invokes the CDCL solver;
2. otherwise fraig-sweep the goal cones (when ``fraig_rounds > 0``) and
   return the rebuilt, usually smaller goal literals.

The preprocessor owns the lazily created :class:`PatternSet` and
:class:`FraigContext`, so patterns (plus every refinement pattern learned
from refuted proofs) and proven merges persist for its owner's lifetime.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.aig.aig import AIG
from repro.aig.fraig import FraigContext
from repro.aig.simvec import (
    DEFAULT_PATTERNS,
    PatternSet,
    first_satisfying_index,
    minimize_assignment,
)
from repro.obs.trace import span as _span
from repro.sat.context import SolverContext


@dataclass
class PreprocessOutcome:
    """What one preprocessing pass produced, plus its telemetry."""

    #: A concrete falsifying input assignment (AIG input node -> bit) when
    #: random simulation satisfied every goal; None otherwise.
    sim_model: Optional[Dict[int, int]] = None
    #: The goal literals the solver should check instead of the originals
    #: (identical to the input roots when no sweeping happened).
    roots: List[int] = field(default_factory=list)
    nodes_before: int = 0
    nodes_after: int = 0
    merged_nodes: int = 0
    elapsed_seconds: float = 0.0

    @property
    def sim_falsified(self) -> bool:
        return self.sim_model is not None


class Preprocessor:
    """Persistent preprocessing state over one shared AIG + solver context."""

    def __init__(
        self,
        aig: AIG,
        context: SolverContext,
        sim_patterns: int = DEFAULT_PATTERNS,
        fraig_rounds: int = 1,
        sim_backend: str = "auto",
    ) -> None:
        self._aig = aig
        self._context = context
        self._sim_patterns = sim_patterns
        self._fraig_rounds = fraig_rounds
        self._sim_backend = sim_backend
        self._patterns: Optional[PatternSet] = None
        self._fraig: Optional[FraigContext] = None

    @property
    def patterns(self) -> PatternSet:
        if self._patterns is None:
            self._patterns = PatternSet(self._sim_patterns, sim_backend=self._sim_backend)
        return self._patterns

    @property
    def fraig(self) -> FraigContext:
        if self._fraig is None:
            self._fraig = FraigContext(
                aig=self._aig,
                context=self._context,
                patterns=self.patterns,
                rounds=self._fraig_rounds,
            )
        return self._fraig

    def run(self, roots: List[int]) -> PreprocessOutcome:
        """Preprocess the conjunction of ``roots`` (all goals must hold)."""
        started = _time.perf_counter()
        aig = self._aig
        with _span("preprocess"):
            cone = aig.cone_nodes(roots)  # walked once, shared by every stage
            outcome = PreprocessOutcome(roots=list(roots), nodes_before=len(cone))
            patterns = self.patterns
            with _span("sim", cone_nodes=len(cone)):
                words = patterns.evaluate(aig, roots, cone=cone)
                index = first_satisfying_index(words, patterns.mask)
            if index is not None:
                with _span("sim", stage="minimize"):
                    assignment = patterns.extract(aig, roots, index, cone=cone)
                    outcome.sim_model = minimize_assignment(
                        aig, roots, assignment, cone=cone, sim_backend=self._sim_backend
                    )
                outcome.nodes_after = outcome.nodes_before
            elif self._fraig_rounds > 0:
                with _span("fraig", cone_nodes=len(cone)):
                    swept, stats = self.fraig.sweep(roots, cone=cone)
                outcome.roots = swept.roots
                outcome.nodes_after = swept.nodes_after
                outcome.merged_nodes = stats.merged_nodes
            else:
                outcome.nodes_after = outcome.nodes_before
        outcome.elapsed_seconds = _time.perf_counter() - started
        return outcome
