"""Tseitin conversion of AIG cones into CNF for the SAT solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set

from repro.aig.aig import AIG, FALSE, TRUE


@dataclass
class Cnf:
    """A CNF formula in DIMACS-style integer literals (1-based variables)."""

    num_vars: int = 0
    clauses: List[List[int]] = field(default_factory=list)

    def add_clause(self, clause: Iterable[int]) -> None:
        self.clauses.append(list(clause))

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)


class CnfBuilder:
    """Incrementally encodes AIG nodes into a CNF formula.

    The builder caches the CNF variable of every encoded AIG node, so repeated
    calls for overlapping cones share clauses — this is what makes the
    iterative property-by-property flow cheap.
    """

    def __init__(self, aig: AIG) -> None:
        self._aig = aig
        self._cnf = Cnf()
        self._node_to_var: Dict[int, int] = {}
        # Constant-true variable, asserted once.
        self._true_var = self._cnf.new_var()
        self._cnf.add_clause([self._true_var])

    @property
    def cnf(self) -> Cnf:
        return self._cnf

    def var_of_node(self, node: int) -> int:
        """CNF variable for an already-encoded node (or the constant node)."""
        if node == 0:
            return self._true_var  # handled through literal_of sign handling
        return self._node_to_var[node]

    def literal_of(self, aig_literal: int) -> int:
        """Encode the cone of ``aig_literal`` and return the CNF literal."""
        if aig_literal == TRUE:
            return self._true_var
        if aig_literal == FALSE:
            return -self._true_var
        node = aig_literal >> 1
        self._encode_cone(node)
        variable = self._node_to_var[node]
        return -variable if aig_literal & 1 else variable

    def _encode_cone(self, root: int) -> None:
        if root in self._node_to_var or root == 0:
            return
        for node in self._aig.cone_nodes([root << 1]):
            if node in self._node_to_var or node == 0:
                continue
            variable = self._cnf.new_var()
            self._node_to_var[node] = variable
            if self._aig.is_input(node):
                continue
            left, right = self._aig.fanins(node)
            left_literal = self._child_literal(left)
            right_literal = self._child_literal(right)
            # variable <-> left AND right
            self._cnf.add_clause([-variable, left_literal])
            self._cnf.add_clause([-variable, right_literal])
            self._cnf.add_clause([variable, -left_literal, -right_literal])

    def eliminable_vars(self) -> List[int]:
        """CNF variables safe for bounded variable elimination.

        Only variables of encoded AND nodes qualify: they are defined by their
        Tseitin clauses (elimination amounts to inlining the definition),
        whereas input variables carry witness values and the constant-true
        variable anchors every encoding.
        """
        return sorted(
            variable
            for node, variable in self._node_to_var.items()
            if not self._aig.is_input(node)
        )

    def invalidate_vars(self, variables: Iterable[int]) -> int:
        """Drop node→variable cache entries for ``variables``.

        Called after the solver eliminated variables by inprocessing: the
        mapping must not be reused, so the next encoding touching one of
        those nodes re-encodes it with a fresh variable (and fresh Tseitin
        clauses, fed to the solver on the next flush).
        """
        doomed: Set[int] = set(variables)
        if not doomed:
            return 0
        stale = [node for node, variable in self._node_to_var.items() if variable in doomed]
        for node in stale:
            del self._node_to_var[node]
        return len(stale)

    def _child_literal(self, aig_literal: int) -> int:
        node = aig_literal >> 1
        if node == 0:
            base = self._true_var
            return -base if not (aig_literal & 1) else base  # FALSE=0 -> -true, TRUE=1 -> +true
        variable = self._node_to_var[node]
        return -variable if aig_literal & 1 else variable
