"""Vectorized (numpy) bit-parallel AIG simulation.

Accelerator twin of :meth:`repro.aig.aig.AIG.evaluate_word_values` for wide
pattern batches: every node's pattern word is a row of ``uint64`` limbs and
whole *levels* of the cone are evaluated with fancy-indexed numpy
expressions, so the per-gate Python interpreter cost is paid once per level
instead of once per AND gate.

CPython's big ints are themselves limb arrays combined by C loops, so the
pure-Python kernel is already "vectorized" per gate — what numpy removes is
the per-gate *interpreter* overhead (dict lookups, branch on complement
bits).  That only pays off when the schedule bookkeeping is not rebuilt per
evaluation, which is why :class:`SimdEvaluator` caches levels and fanin
arrays per AIG: the AIG is append-only, so a node's level and fanins never
change, and repeated evaluations (fraig signature refinement, sim-first
checks over a shared, growing AIG) reuse the schedule and only extend it
for newly created nodes.

Correctness contract: returned words are **bit-identical** to the Python
kernel's.  Both operate column-wise (bit ``i`` of every word belongs to
pattern ``i``); complemented fanins XOR against all-ones limbs, which sets
garbage above the pattern mask, but bitwise ops never move information
between columns, so masking the top limb on extraction reproduces the
Python ints exactly.  ``tests/test_sim_backends.py`` enforces this on
random cones.

numpy is an *optional* dependency: :func:`numpy_available` gates every use
and callers fall back to the Python kernel when it is absent or the batch
is too narrow to amortize the numpy fixed costs (``NUMPY_MIN_PATTERNS``).
"""

from __future__ import annotations

import weakref
from typing import Dict, Iterable, List, Optional

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - the container ships numpy
    _np = None

from repro.aig.aig import AIG

#: Narrower batches than this run faster on Python ints: one big-int op per
#: gate beats the numpy dispatch overhead until words span several limbs.
NUMPY_MIN_PATTERNS = 256

_LIMB_BITS = 64
_ALL_ONES = 0xFFFFFFFFFFFFFFFF


def numpy_available() -> bool:
    """True when the numpy package is importable."""
    return _np is not None


class SimdEvaluator:
    """Persistent vectorized evaluator over one append-only AIG.

    Keeps per-node level and fanin arrays, extended incrementally as the
    AIG grows; every :meth:`evaluate_word_values` call then schedules the
    cone with numpy primitives (argsort by cached level) instead of a
    per-gate Python pass.
    """

    def __init__(self, aig: AIG) -> None:
        self._aig = aig
        self._known = 1  # node 0 (constant false) is always known
        self._level = _np.zeros(1, dtype=_np.int32)
        self._left = _np.zeros(1, dtype=_np.intp)
        self._right = _np.zeros(1, dtype=_np.intp)
        self._left_inv = _np.zeros(1, dtype=bool)
        self._right_inv = _np.zeros(1, dtype=bool)

    def _extend(self) -> None:
        """Grow the cached schedule to cover nodes created since last call."""
        total = self._aig.num_nodes
        if total <= self._known:
            return
        nodes_table = self._aig._nodes
        level = _np.zeros(total, dtype=_np.int32)
        level[: self._known] = self._level
        left = _np.zeros(total, dtype=_np.intp)
        left[: self._known] = self._left
        right = _np.zeros(total, dtype=_np.intp)
        right[: self._known] = self._right
        left_inv = _np.zeros(total, dtype=bool)
        left_inv[: self._known] = self._left_inv
        right_inv = _np.zeros(total, dtype=bool)
        right_inv[: self._known] = self._right_inv
        for node in range(self._known, total):
            children = nodes_table[node]
            if children is None:
                continue  # input: level 0, fanins stay at the zero row
            fanin_left, fanin_right = children
            left[node] = fanin_left >> 1
            right[node] = fanin_right >> 1
            left_inv[node] = bool(fanin_left & 1)
            right_inv[node] = bool(fanin_right & 1)
            level[node] = max(level[left[node]], level[right[node]]) + 1
        self._level = level
        self._left = left
        self._right = right
        self._left_inv = left_inv
        self._right_inv = right_inv
        self._known = total

    def _simulate(
        self,
        roots: Iterable[int],
        input_words: Dict[int, int],
        mask: int,
        cone: Optional[List[int]],
    ):
        """Run the levelized simulation; returns (cone_list, limb matrix).

        The matrix is indexed by node id and already masked, so extracting
        any node's Python-int word is one ``int.from_bytes``.
        """
        self._extend()
        cone_list = list(cone) if cone is not None else self._aig.cone_nodes(roots)
        num_patterns = mask.bit_length()
        limbs = max(1, (num_patterns + _LIMB_BITS - 1) // _LIMB_BITS)
        values = _np.zeros((self._known, limbs), dtype="<u8")

        cone_arr = _np.asarray(cone_list, dtype=_np.intp)
        if cone_arr.size == 0:
            return cone_list, values
        cone_levels = self._level[cone_arr]
        # Stable sort groups the cone by level while keeping topological
        # order inside each level (irrelevant for correctness — same-level
        # gates are independent — but deterministic).
        order = _np.argsort(cone_levels, kind="stable")
        sorted_nodes = cone_arr[order]
        sorted_levels = cone_levels[order]

        # Level 0: inputs, converted from Python ints once each.
        input_count = int(_np.searchsorted(sorted_levels, 1))
        byte_length = limbs * 8
        for node in sorted_nodes[:input_count].tolist():
            word = input_words.get(node, 0) & mask
            values[node] = _np.frombuffer(word.to_bytes(byte_length, "little"), dtype="<u8")

        boundaries = _np.searchsorted(
            sorted_levels, _np.arange(1, int(sorted_levels[-1]) + 2)
        )
        # Reused scratch rows: per-level gather temporaries at wide widths
        # would otherwise each be a fresh multi-MB allocation (mmap churn).
        widest = int(_np.max(boundaries[1:] - boundaries[:-1], initial=0))
        left_scratch = _np.empty((widest, limbs), dtype="<u8")
        right_scratch = _np.empty((widest, limbs), dtype="<u8")
        for start, stop in zip(boundaries[:-1], boundaries[1:]):
            gates = sorted_nodes[start:stop]
            count = gates.shape[0]
            left_words = left_scratch[:count]
            right_words = right_scratch[:count]
            _np.take(values, self._left[gates], axis=0, out=left_words)
            _np.take(values, self._right[gates], axis=0, out=right_words)
            # A complemented fanin XORs against all-ones; (count, 1) flip
            # columns broadcast over the limbs in place.
            left_flip = self._left_inv[gates, None].astype("<u8") * _np.uint64(_ALL_ONES)
            right_flip = self._right_inv[gates, None].astype("<u8") * _np.uint64(_ALL_ONES)
            _np.bitwise_xor(left_words, left_flip, out=left_words)
            _np.bitwise_xor(right_words, right_flip, out=right_words)
            _np.bitwise_and(left_words, right_words, out=left_words)
            values[gates] = left_words

        # Complements set garbage above the mask; clearing the top limb once,
        # vectorized, makes the extracted ints equal the Python kernel's.
        spill = num_patterns % _LIMB_BITS
        if spill:
            values[:, -1] &= _np.uint64((1 << spill) - 1)
        return cone_list, values

    def evaluate_word_values(
        self,
        roots: Iterable[int],
        input_words: Dict[int, int],
        mask: int,
        cone: Optional[List[int]] = None,
    ) -> Dict[int, int]:
        """Numpy twin of :meth:`AIG.evaluate_word_values` (same contract)."""
        cone_list, values = self._simulate(roots, input_words, mask, cone)
        byte_length = values.shape[1] * 8
        blob = values[_np.asarray(cone_list, dtype=_np.intp)].tobytes()
        out = {0: 0}
        for position, node in enumerate(cone_list):
            out[node] = int.from_bytes(
                blob[position * byte_length : (position + 1) * byte_length], "little"
            )
        return out

    def evaluate_words(
        self,
        roots: Iterable[int],
        input_words: Dict[int, int],
        mask: int,
        cone: Optional[List[int]] = None,
    ) -> List[int]:
        """Numpy twin of :meth:`AIG.evaluate_words`: root words only.

        Skips the per-node int extraction of :meth:`evaluate_word_values` —
        on a wide batch almost the whole cost — so the sim-first
        falsification and assignment-minimization paths (which only consume
        root words) get the full vectorization benefit.
        """
        roots = list(roots)
        _cone, values = self._simulate(roots, input_words, mask, cone)
        results = []
        for literal in roots:
            word = int.from_bytes(values[literal >> 1].tobytes(), "little")
            results.append(word ^ mask if literal & 1 else word)
        return results


# One cached evaluator per live AIG; the weak keys let an engine's AIG (and
# its schedule arrays) be reclaimed when the engine goes away.
_EVALUATORS: "weakref.WeakKeyDictionary[AIG, SimdEvaluator]" = (
    weakref.WeakKeyDictionary() if _np is not None else None  # type: ignore[assignment]
)


def evaluator_for(aig: AIG) -> SimdEvaluator:
    """The (cached) persistent evaluator of one AIG."""
    if _np is None:  # pragma: no cover - guarded by callers
        raise RuntimeError("numpy is not available")
    evaluator = _EVALUATORS.get(aig)
    if evaluator is None:
        evaluator = SimdEvaluator(aig)
        _EVALUATORS[aig] = evaluator
    return evaluator


def evaluate_word_values_numpy(
    aig: AIG,
    roots: Iterable[int],
    input_words: Dict[int, int],
    mask: int,
    cone: Optional[List[int]] = None,
) -> Dict[int, int]:
    """Module-level convenience over :func:`evaluator_for` (same contract
    as :meth:`AIG.evaluate_word_values`)."""
    return evaluator_for(aig).evaluate_word_values(roots, input_words, mask, cone=cone)


def evaluate_words_numpy(
    aig: AIG,
    roots: Iterable[int],
    input_words: Dict[int, int],
    mask: int,
    cone: Optional[List[int]] = None,
) -> List[int]:
    """Module-level convenience over :func:`evaluator_for` (same contract
    as :meth:`AIG.evaluate_words`)."""
    return evaluator_for(aig).evaluate_words(roots, input_words, mask, cone=cone)
