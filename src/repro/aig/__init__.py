"""Bit-level reasoning engine: And-Inverter Graph, bit-blasting and CNF."""

from repro.aig.aig import AIG, TRUE, FALSE
from repro.aig.bitblast import BitBlaster, Vector
from repro.aig.cnf import CnfBuilder, Cnf

__all__ = ["AIG", "TRUE", "FALSE", "BitBlaster", "Vector", "CnfBuilder", "Cnf"]
