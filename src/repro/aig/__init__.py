"""Bit-level reasoning engine: And-Inverter Graph, bit-blasting, CNF, and
the simulation-guided preprocessing subsystem (simvec / simplify / fraig)."""

from repro.aig.aig import AIG, TRUE, FALSE
from repro.aig.bitblast import BitBlaster, Vector
from repro.aig.cnf import CnfBuilder, Cnf
from repro.aig.fraig import FraigContext, FraigStats
from repro.aig.preprocess import PreprocessOutcome, Preprocessor
from repro.aig.simplify import SimplifyResult, cone_size, simplify_cone
from repro.aig.simvec import (
    PatternSet,
    find_satisfying_pattern,
    first_satisfying_index,
    minimize_assignment,
)

__all__ = [
    "AIG",
    "TRUE",
    "FALSE",
    "BitBlaster",
    "Vector",
    "CnfBuilder",
    "Cnf",
    "FraigContext",
    "FraigStats",
    "PatternSet",
    "PreprocessOutcome",
    "Preprocessor",
    "SimplifyResult",
    "cone_size",
    "find_satisfying_pattern",
    "first_satisfying_index",
    "minimize_assignment",
    "simplify_cone",
]
