"""Unused Circuit Identification (UCI) baseline.

Following the idea of Hicks et al. ([11] in the paper): logic whose value
never influences any observable output during the verification tests may be
malicious, because a stealthy Trojan stays dormant during testing.  This
implementation works at the signal level of the flat RTL IR: it simulates the
design under a test-stimuli set, and reports every state signal that

* never changes value during the whole campaign (dormant logic), or
* whose observable cone never differs from a run in which the signal is
  frozen at its initial value (no influence on outputs).

As [12] showed, an adversary can construct Trojans that evade UCI; the
benchmark harness uses this baseline to show which Table I designs a
test-based structural method flags versus the exhaustive formal flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.rtl.ir import Module
from repro.sim.simulator import Simulator


@dataclass
class UciResult:
    """Signals flagged as possibly-unused (Trojan candidates)."""

    dormant_signals: List[str] = field(default_factory=list)
    non_influencing_signals: List[str] = field(default_factory=list)
    cycles: int = 0

    @property
    def candidates(self) -> List[str]:
        merged = list(self.dormant_signals)
        merged.extend(name for name in self.non_influencing_signals if name not in merged)
        return merged

    @property
    def trojan_suspected(self) -> bool:
        return bool(self.candidates)

    def summary(self) -> str:
        return (
            f"UCI: {len(self.dormant_signals)} dormant and "
            f"{len(self.non_influencing_signals)} non-influencing signal(s) "
            f"after {self.cycles} test cycles"
        )


class UnusedCircuitIdentification:
    """Simulation-based unused-circuit analysis."""

    def __init__(self, module: Module, observed_outputs: Optional[Iterable[str]] = None) -> None:
        self._module = module
        self._outputs = list(observed_outputs) if observed_outputs is not None else list(module.outputs)

    def analyze(
        self,
        stimuli: List[Dict[str, int]],
        candidate_signals: Optional[Iterable[str]] = None,
        max_freeze_checks: int = 32,
    ) -> UciResult:
        """Run the verification tests and identify unused circuit candidates."""
        candidates = (
            list(candidate_signals)
            if candidate_signals is not None
            else list(self._module.registers)
        )
        result = UciResult(cycles=len(stimuli))

        # Pass 1: dormant signals (value never changes during the campaign).
        simulator = Simulator(self._module)
        seen_values: Dict[str, Set[int]] = {name: set() for name in candidates}
        baseline_outputs: List[Dict[str, int]] = []
        for stimulus in stimuli:
            values = simulator.step(stimulus)
            baseline_outputs.append({name: values[name] for name in self._outputs})
            for name in candidates:
                seen_values[name].add(values.get(name, simulator.state().get(name, 0)))
        result.dormant_signals = sorted(name for name, values in seen_values.items() if len(values) <= 1)

        # Pass 2: influence check — freeze each (dormant-first) candidate and
        # see whether any observed output ever changes relative to baseline.
        freeze_order = result.dormant_signals + [
            name for name in candidates if name not in result.dormant_signals
        ]
        for name in freeze_order[:max_freeze_checks]:
            frozen_value = next(iter(seen_values[name])) if seen_values[name] else 0
            if self._outputs_unchanged_when_frozen(name, frozen_value, stimuli, baseline_outputs):
                result.non_influencing_signals.append(name)
        result.non_influencing_signals.sort()
        return result

    def _outputs_unchanged_when_frozen(
        self,
        signal: str,
        frozen_value: int,
        stimuli: List[Dict[str, int]],
        baseline_outputs: List[Dict[str, int]],
    ) -> bool:
        simulator = Simulator(self._module)
        for stimulus, expected in zip(stimuli, baseline_outputs):
            simulator.set_state({signal: frozen_value})
            values = simulator.step(stimulus)
            for output_name, expected_value in expected.items():
                if values[output_name] != expected_value:
                    return False
        return True
