"""FANCI-style control-value analysis baseline.

Waksman et al. ([14] in the paper) flag wires with *nearly-unused* inputs:
if, over many random input assignments, toggling a particular fanin almost
never changes a signal's value, the pair is suspicious — Trojan trigger logic
typically has exactly this shape (a wide comparator that is almost never
true).

This implementation samples the next-state function of every register in the
flat RTL IR: for each (register, fanin-leaf) pair it estimates the *control
value* — the fraction of random assignments for which flipping one bit of the
fanin changes the register's next value — and flags pairs whose control value
falls below a threshold.  It is a heuristic (neither sound nor complete),
which is precisely its role in the comparison benchmarks.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.rtl import exprs
from repro.rtl.ir import Module
from repro.rtl.netlist import DependencyGraph


@dataclass
class SuspiciousSignal:
    """One flagged (signal, controlling fanin) pair."""

    signal: str
    fanin: str
    control_value: float


@dataclass
class FanciResult:
    """Outcome of the control-value analysis."""

    suspicious: List[SuspiciousSignal] = field(default_factory=list)
    samples: int = 0
    threshold: float = 0.0

    @property
    def trojan_suspected(self) -> bool:
        return bool(self.suspicious)

    def flagged_signals(self) -> List[str]:
        return sorted({entry.signal for entry in self.suspicious})

    def summary(self) -> str:
        return (
            f"FANCI: {len(self.suspicious)} suspicious (signal, fanin) pairs below "
            f"control value {self.threshold} ({self.samples} samples each)"
        )


class FanciAnalysis:
    """Approximate control-value analysis over register next-state functions."""

    def __init__(self, module: Module, seed: int = 0) -> None:
        self._module = module
        self._graph = DependencyGraph(module)
        self._random = random.Random(seed)

    def _evaluate_next(self, register: str, assignment: Dict[str, int]) -> int:
        module = self._module

        def lookup(name: str) -> int:
            if name in assignment:
                return assignment[name]
            driver = module.comb.get(name)
            if driver is not None:
                return exprs.evaluate(driver, lookup)
            return 0

        return exprs.evaluate(module.registers[register].next, lookup)

    def analyze(
        self,
        samples: int = 64,
        threshold: float = 0.01,
        registers: Optional[List[str]] = None,
    ) -> FanciResult:
        """Estimate control values and flag pairs below ``threshold``."""
        result = FanciResult(samples=samples, threshold=threshold)
        for register in registers or list(self._module.registers):
            leaves = sorted(self._graph.next_state_leaf_support(register))
            if not leaves:
                continue
            for fanin in leaves:
                control = self._control_value(register, fanin, leaves, samples)
                if control <= threshold:
                    result.suspicious.append(
                        SuspiciousSignal(signal=register, fanin=fanin, control_value=control)
                    )
        return result

    def _control_value(
        self, register: str, fanin: str, leaves: List[str], samples: int
    ) -> float:
        module = self._module
        fanin_width = module.width_of(fanin)
        influencing = 0
        for _ in range(samples):
            assignment = {
                leaf: self._random.getrandbits(module.width_of(leaf)) for leaf in leaves
            }
            baseline = self._evaluate_next(register, assignment)
            flipped = dict(assignment)
            flipped[fanin] = assignment[fanin] ^ (1 << self._random.randrange(fanin_width))
            if self._evaluate_next(register, flipped) != baseline:
                influencing += 1
        return influencing / samples if samples else 0.0
