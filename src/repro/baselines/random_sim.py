"""Dynamic functional testing baseline.

Simulates the design under randomly generated stimuli and compares observed
outputs against a golden behavioural model (or a golden RTL design).  This is
the workhorse of conventional verification flows; its weakness — the one the
paper exploits — is that a sequential Trojan with a long or improbable trigger
sequence is essentially never activated by random tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.rtl.ir import Module
from repro.sim.simulator import Simulator


@dataclass
class Mismatch:
    """One detected output difference."""

    cycle: int
    signal: str
    expected: int
    observed: int


@dataclass
class RandomSimulationResult:
    """Outcome of a random-testing campaign."""

    cycles: int
    mismatches: List[Mismatch] = field(default_factory=list)

    @property
    def trojan_detected(self) -> bool:
        return bool(self.mismatches)

    def summary(self) -> str:
        if not self.mismatches:
            return f"random simulation: no mismatch in {self.cycles} cycles"
        first = self.mismatches[0]
        return (
            f"random simulation: {len(self.mismatches)} mismatches in {self.cycles} cycles, "
            f"first at cycle {first.cycle} on {first.signal}"
        )


class RandomSimulationTester:
    """Compares a design against a golden output predictor under random inputs.

    Parameters
    ----------
    module:
        The design under test.
    golden:
        Callable mapping the full input trace (a list of per-cycle input maps)
        to the expected value of each checked output at the current cycle, or
        ``None`` when the golden model has no prediction for that cycle (e.g.
        while a pipeline is still filling).
    checked_outputs:
        Outputs to compare; defaults to all primary outputs the golden model
        reports.
    """

    def __init__(
        self,
        module: Module,
        golden: Callable[[List[Dict[str, int]]], Optional[Dict[str, int]]],
        checked_outputs: Optional[Iterable[str]] = None,
        seed: int = 0,
    ) -> None:
        self._module = module
        self._golden = golden
        self._checked_outputs = list(checked_outputs) if checked_outputs is not None else None
        self._random = random.Random(seed)

    def _random_inputs(self) -> Dict[str, int]:
        stimulus: Dict[str, int] = {}
        for name in self._module.data_inputs():
            width = self._module.width_of(name)
            stimulus[name] = self._random.getrandbits(width) if width > 0 else 0
        for name in self._module.resets:
            stimulus[name] = 0
        return stimulus

    def run(self, cycles: int, max_mismatches: int = 10) -> RandomSimulationResult:
        """Run ``cycles`` random test cycles and collect output mismatches."""
        simulator = Simulator(self._module)
        history: List[Dict[str, int]] = []
        result = RandomSimulationResult(cycles=cycles)
        for cycle in range(cycles):
            stimulus = self._random_inputs()
            history.append(stimulus)
            values = simulator.step(stimulus)
            expected = self._golden(history)
            if expected is None:
                continue
            outputs = self._checked_outputs if self._checked_outputs is not None else list(expected)
            for name in outputs:
                if name not in expected:
                    continue
                if values[name] != expected[name]:
                    result.mismatches.append(
                        Mismatch(cycle=cycle, signal=name, expected=expected[name], observed=values[name])
                    )
                    if len(result.mismatches) >= max_mismatches:
                        return result
        return result


def aes_pipeline_golden(latency: int, output_name: str = "out"):
    """Golden predictor for the pipelined AES core: reference AES delayed by ``latency``.

    Returns a callable suitable for :class:`RandomSimulationTester`.
    """
    from repro.crypto.aes_ref import aes128_encrypt_block

    def predict(history: List[Dict[str, int]]) -> Optional[Dict[str, int]]:
        index = len(history) - latency
        if index < 0:
            return None
        stimulus = history[index]
        return {output_name: aes128_encrypt_block(stimulus.get("state", 0), stimulus.get("key", 0))}

    return predict
