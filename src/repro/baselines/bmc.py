"""Bounded-model-checking baseline (golden-model equivalence within a bound).

Representative of the BMC-based detection methods of Sec. II ([8], [17]): the
design under test is unrolled for ``k`` cycles from its reset state next to a
*golden* (known Trojan-free) RTL model, both fed the same — fully symbolic —
input sequence, and a SAT solver searches for an input sequence that makes
any common output differ within the bound.

Since the sequential detection mode landed, the actual unrolling engine lives
in :class:`repro.core.unroll.SequentialUnroller`; this baseline is a thin
wrapper that checks *all* common outputs in one miter and reports the classic
``BmcResult``.  The incremental behaviour is unchanged: the unrolled frames,
the Tseitin encoding and the SAT solver state persist across
:meth:`BoundedTrojanChecker.check` calls, so checking bound ``k+1`` after
bound ``k`` only encodes the one new transition frame and reuses every clause
(and everything the solver learned) from the earlier bounds.

This baseline exposes the two limitations the paper addresses:

* it needs a golden model (the paper's method does not), and
* it is only as strong as the bound: a Trojan triggered by a long counter or
  by an event sequence longer than ``k`` cycles is invisible, whereas the
  symbolic starting state of IPC covers arbitrarily long trigger histories.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.unroll import SequentialUnroller
from repro.rtl.ir import Module
from repro.sat.context import SolverContext


@dataclass
class BmcResult:
    """Outcome of a bounded golden-model equivalence check."""

    bound: int
    trojan_detected: bool
    failing_cycle: Optional[int] = None
    failing_signals: List[str] = field(default_factory=list)
    runtime_seconds: float = 0.0
    sat_conflicts: int = 0
    # Incremental-reuse accounting of this check against the shared context.
    cnf_new_clauses: int = 0
    cnf_reused_clauses: int = 0

    def summary(self) -> str:
        if self.trojan_detected:
            return (
                f"BMC (bound {self.bound}): divergence from the golden model at cycle "
                f"{self.failing_cycle} on {', '.join(self.failing_signals[:4])}"
            )
        return f"BMC (bound {self.bound}): no divergence found within the bound"


class BoundedTrojanChecker:
    """Bounded equivalence of a design against a golden RTL model.

    One checker instance owns a persistent unrolling and solver context;
    repeated :meth:`check` calls with growing bounds reuse all earlier work.
    """

    def __init__(
        self,
        design: Module,
        golden: Module,
        reset_values: Optional[Dict[str, int]] = None,
        solver_backend: str = "auto",
    ) -> None:
        self._unroller = SequentialUnroller(
            design,
            golden,
            reset_values=reset_values,
            solver_backend=solver_backend,
        )

    @property
    def unroller(self) -> SequentialUnroller:
        return self._unroller

    @property
    def solver_context(self) -> SolverContext:
        return self._unroller.solver_context

    def check(self, bound: int, checked_outputs: Optional[List[str]] = None) -> BmcResult:
        """Search for an input sequence of length ``bound`` that separates the
        design from the golden model on any common output.

        Degenerate checks keep their classic vacuous semantics: a bound of 0
        compares no cycles and a design sharing no output with the golden
        model compares no signals — both return "no divergence found" (the
        sequential *mode* treats the latter as a configuration error, but
        this baseline's contract predates it).
        """
        if not checked_outputs:
            # Classic fallback (`checked_outputs or [...]`): None *and* an
            # empty list both mean "every common output".
            checked_outputs = [
                name
                for name in self._unroller.design.outputs
                if name in self._unroller.golden.outputs
            ]
        if bound < 1 or not checked_outputs:
            return BmcResult(bound=bound, trojan_detected=False)
        sequential = self._unroller.check_outputs(checked_outputs, bound)
        return BmcResult(
            bound=bound,
            trojan_detected=not sequential.holds,
            failing_cycle=sequential.first_divergence_cycle,
            failing_signals=list(sequential.failing_outputs),
            runtime_seconds=sequential.runtime_seconds,
            sat_conflicts=sequential.sat_conflicts,
            cnf_new_clauses=sequential.cnf_new_clauses,
            cnf_reused_clauses=sequential.cnf_reused_clauses,
        )
