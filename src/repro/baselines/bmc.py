"""Bounded-model-checking baseline (golden-model equivalence within a bound).

Representative of the BMC-based detection methods of Sec. II ([8], [17]): the
design under test is unrolled for ``k`` cycles from its reset state next to a
*golden* (known Trojan-free) RTL model, both fed the same — fully symbolic —
input sequence, and a SAT solver searches for an input sequence that makes
any common output differ within the bound.

This baseline exposes the two limitations the paper addresses:

* it needs a golden model (the paper's method does not), and
* it is only as strong as the bound: a Trojan triggered by a long counter or
  by an event sequence longer than ``k`` cycles is invisible, whereas the
  symbolic starting state of IPC covers arbitrarily long trigger histories.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.aig.aig import AIG, FALSE
from repro.aig.cnf import CnfBuilder
from repro.errors import DesignError
from repro.ipc.transition import SymbolicFrame, TransitionEncoder
from repro.rtl.ir import Module
from repro.sat.solver import SatSolver


@dataclass
class BmcResult:
    """Outcome of a bounded golden-model equivalence check."""

    bound: int
    trojan_detected: bool
    failing_cycle: Optional[int] = None
    failing_signals: List[str] = field(default_factory=list)
    runtime_seconds: float = 0.0
    sat_conflicts: int = 0

    def summary(self) -> str:
        if self.trojan_detected:
            return (
                f"BMC (bound {self.bound}): divergence from the golden model at cycle "
                f"{self.failing_cycle} on {', '.join(self.failing_signals[:4])}"
            )
        return f"BMC (bound {self.bound}): no divergence found within the bound"


class BoundedTrojanChecker:
    """Bounded equivalence of a design against a golden RTL model."""

    def __init__(
        self,
        design: Module,
        golden: Module,
        reset_values: Optional[Dict[str, int]] = None,
    ) -> None:
        self._design = design
        self._golden = golden
        self._reset_values = dict(reset_values or {})
        missing = [name for name in golden.inputs if name not in design.inputs]
        if missing:
            raise DesignError(f"golden model inputs missing from the design: {missing}")

    def _reset_value(self, module: Module, register: str) -> int:
        if register in self._reset_values:
            return self._reset_values[register]
        reset = module.registers[register].reset_value
        return reset if reset is not None else 0

    def _initial_frame(
        self, encoder: TransitionEncoder, module: Module, label: str
    ) -> SymbolicFrame:
        frame = encoder.new_frame(label)
        for register in module.registers:
            frame.bind_leaf(
                register,
                encoder.blaster.constant(self._reset_value(module, register), module.width_of(register)),
            )
        return frame

    def check(self, bound: int, checked_outputs: Optional[List[str]] = None) -> BmcResult:
        """Search for an input sequence of length ``bound`` that separates the
        design from the golden model on any common output."""
        started = _time.perf_counter()
        aig = AIG()
        design_encoder = TransitionEncoder(self._design, aig)
        golden_encoder = TransitionEncoder(self._golden, aig)
        blaster = design_encoder.blaster

        common_outputs = checked_outputs or [
            name for name in self._design.outputs if name in self._golden.outputs
        ]

        design_frames = [self._initial_frame(design_encoder, self._design, "dut@0")]
        golden_frames = [self._initial_frame(golden_encoder, self._golden, "gold@0")]
        difference_by_cycle: List[List] = []
        for cycle in range(1, bound + 1):
            previous = cycle - 1
            # Same symbolic inputs for both models at the previous time point.
            for name in self._golden.inputs:
                if name in self._golden.clocks:
                    continue
                shared = design_frames[previous].leaf_vector(name)
                if not golden_frames[previous].is_bound(name):
                    golden_frames[previous].bind_leaf(name, shared)
            design_frames.append(design_encoder.step(design_frames[-1], f"dut@{cycle}"))
            golden_frames.append(golden_encoder.step(golden_frames[-1], f"gold@{cycle}"))
            differences = []
            for name in common_outputs:
                left = design_frames[cycle].vector_of(name)
                right = golden_frames[cycle].vector_of(name)
                differences.append((name, aig.not_(blaster.equal_vectors(left, right))))
            difference_by_cycle.append(differences)

        all_differences = [literal for cycle in difference_by_cycle for _, literal in cycle]
        miter = aig.or_many(all_differences)
        result = BmcResult(bound=bound, trojan_detected=False)
        if miter == FALSE:
            result.runtime_seconds = _time.perf_counter() - started
            return result

        builder = CnfBuilder(aig)
        goal = builder.literal_of(miter)
        solver = SatSolver()
        for clause in builder.cnf.clauses:
            solver.add_clause(clause)
        solver.ensure_vars(builder.cnf.num_vars)
        solver.add_clause([goal])
        sat_result = solver.solve()
        result.sat_conflicts = sat_result.conflicts
        if sat_result.satisfiable:
            result.trojan_detected = True
            input_values = {}
            for node in aig.inputs():
                literal = builder.literal_of(node << 1)
                variable = abs(literal)
                if variable <= solver.num_vars:
                    value = sat_result.value(variable)
                    input_values[node] = int(value if literal > 0 else not value)
            for cycle_index, differences in enumerate(difference_by_cycle, start=1):
                for signal, literal in differences:
                    if literal != FALSE and aig.evaluate([literal], input_values)[0]:
                        result.failing_signals.append(signal)
                        if result.failing_cycle is None:
                            result.failing_cycle = cycle_index
                if result.failing_cycle is not None:
                    break
        result.runtime_seconds = _time.perf_counter() - started
        return result
