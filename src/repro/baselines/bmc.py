"""Bounded-model-checking baseline (golden-model equivalence within a bound).

Representative of the BMC-based detection methods of Sec. II ([8], [17]): the
design under test is unrolled for ``k`` cycles from its reset state next to a
*golden* (known Trojan-free) RTL model, both fed the same — fully symbolic —
input sequence, and a SAT solver searches for an input sequence that makes
any common output differ within the bound.

The checker is *incremental*: the unrolled frames, the Tseitin encoding and
the SAT solver state all persist across :meth:`BoundedTrojanChecker.check`
calls, so checking bound ``k+1`` after bound ``k`` only encodes the one new
transition frame and reuses every clause (and everything the solver learned)
from the earlier bounds.  The per-bound miter is passed as a solver
assumption, never asserted permanently.

This baseline exposes the two limitations the paper addresses:

* it needs a golden model (the paper's method does not), and
* it is only as strong as the bound: a Trojan triggered by a long counter or
  by an event sequence longer than ``k`` cycles is invisible, whereas the
  symbolic starting state of IPC covers arbitrarily long trigger histories.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.aig.aig import AIG, FALSE
from repro.errors import DesignError
from repro.ipc.transition import SymbolicFrame, TransitionEncoder
from repro.rtl.ir import Module
from repro.sat.context import SolverContext


@dataclass
class BmcResult:
    """Outcome of a bounded golden-model equivalence check."""

    bound: int
    trojan_detected: bool
    failing_cycle: Optional[int] = None
    failing_signals: List[str] = field(default_factory=list)
    runtime_seconds: float = 0.0
    sat_conflicts: int = 0
    # Incremental-reuse accounting of this check against the shared context.
    cnf_new_clauses: int = 0
    cnf_reused_clauses: int = 0

    def summary(self) -> str:
        if self.trojan_detected:
            return (
                f"BMC (bound {self.bound}): divergence from the golden model at cycle "
                f"{self.failing_cycle} on {', '.join(self.failing_signals[:4])}"
            )
        return f"BMC (bound {self.bound}): no divergence found within the bound"


class BoundedTrojanChecker:
    """Bounded equivalence of a design against a golden RTL model.

    One checker instance owns a persistent unrolling and solver context;
    repeated :meth:`check` calls with growing bounds reuse all earlier work.
    """

    def __init__(
        self,
        design: Module,
        golden: Module,
        reset_values: Optional[Dict[str, int]] = None,
        solver_backend: str = "auto",
    ) -> None:
        self._design = design
        self._golden = golden
        self._reset_values = dict(reset_values or {})
        missing = [name for name in golden.inputs if name not in design.inputs]
        if missing:
            raise DesignError(f"golden model inputs missing from the design: {missing}")
        self._aig = AIG()
        self._design_encoder = TransitionEncoder(design, self._aig)
        self._golden_encoder = TransitionEncoder(golden, self._aig)
        self._context = SolverContext(self._aig, backend=solver_backend)
        self._design_frames: List[SymbolicFrame] = []
        self._golden_frames: List[SymbolicFrame] = []
        # Per-cycle difference literals, cached by (cycle, output name).
        self._differences: Dict[Tuple[int, str], int] = {}

    @property
    def solver_context(self) -> SolverContext:
        return self._context

    def _reset_value(self, module: Module, register: str) -> int:
        if register in self._reset_values:
            return self._reset_values[register]
        reset = module.registers[register].reset_value
        return reset if reset is not None else 0

    def _initial_frame(
        self, encoder: TransitionEncoder, module: Module, label: str
    ) -> SymbolicFrame:
        frame = encoder.new_frame(label)
        for register in module.registers:
            frame.bind_leaf(
                register,
                encoder.blaster.constant(self._reset_value(module, register), module.width_of(register)),
            )
        return frame

    def _share_inputs_at(self, frame_index: int) -> None:
        """Feed both models the same symbolic inputs at one time point."""
        for name in self._golden.inputs:
            if name in self._golden.clocks:
                continue
            shared = self._design_frames[frame_index].leaf_vector(name)
            if not self._golden_frames[frame_index].is_bound(name):
                self._golden_frames[frame_index].bind_leaf(name, shared)

    def _unroll_to(self, bound: int) -> None:
        """Extend the persistent unrolling of both models to ``bound`` cycles."""
        if not self._design_frames:
            self._design_frames.append(self._initial_frame(self._design_encoder, self._design, "dut@0"))
            self._golden_frames.append(self._initial_frame(self._golden_encoder, self._golden, "gold@0"))
        for cycle in range(len(self._design_frames), bound + 1):
            self._share_inputs_at(cycle - 1)
            self._design_frames.append(
                self._design_encoder.step(self._design_frames[-1], f"dut@{cycle}")
            )
            self._golden_frames.append(
                self._golden_encoder.step(self._golden_frames[-1], f"gold@{cycle}")
            )

    def _difference_literal(self, cycle: int, name: str) -> int:
        key = (cycle, name)
        literal = self._differences.get(key)
        if literal is None:
            blaster = self._design_encoder.blaster
            left = self._design_frames[cycle].vector_of(name)
            right = self._golden_frames[cycle].vector_of(name)
            literal = self._aig.not_(blaster.equal_vectors(left, right))
            self._differences[key] = literal
        return literal

    def check(self, bound: int, checked_outputs: Optional[List[str]] = None) -> BmcResult:
        """Search for an input sequence of length ``bound`` that separates the
        design from the golden model on any common output."""
        started = _time.perf_counter()
        common_outputs = checked_outputs or [
            name for name in self._design.outputs if name in self._golden.outputs
        ]

        self._unroll_to(bound)
        # Outputs with a combinational input path sample the input at the
        # compared cycle itself, so the topmost frame must be shared too —
        # and before any difference cone materialises an unshared leaf.
        self._share_inputs_at(bound)
        difference_by_cycle: List[List[Tuple[str, int]]] = []
        for cycle in range(1, bound + 1):
            difference_by_cycle.append(
                [(name, self._difference_literal(cycle, name)) for name in common_outputs]
            )

        all_differences = [literal for cycle in difference_by_cycle for _, literal in cycle]
        miter = self._aig.or_many(all_differences)
        result = BmcResult(bound=bound, trojan_detected=False)
        if miter == FALSE:
            result.runtime_seconds = _time.perf_counter() - started
            return result

        goal = self._context.literal_of(miter)
        outcome = self._context.solve([goal])
        result.sat_conflicts = outcome.result.conflicts
        result.cnf_new_clauses = outcome.new_clauses
        result.cnf_reused_clauses = outcome.reused_clauses
        if outcome.satisfiable:
            result.trojan_detected = True
            model = outcome.result.model
            input_values = {}
            for node in self._aig.cone_nodes([miter]):
                if not self._aig.is_input(node):
                    continue
                literal = self._context.literal_of(node << 1)
                value = model.get(abs(literal))
                if value is None:
                    continue
                input_values[node] = int(value if literal > 0 else not value)
            for cycle_index, differences in enumerate(difference_by_cycle, start=1):
                for signal, literal in differences:
                    if literal != FALSE and self._aig.evaluate([literal], input_values)[0]:
                        result.failing_signals.append(signal)
                        if result.failing_cycle is None:
                            result.failing_cycle = cycle_index
                if result.failing_cycle is not None:
                    break
        result.runtime_seconds = _time.perf_counter() - started
        return result
