"""Baseline Trojan-detection techniques used for comparison benchmarks.

These reproduce the classes of prior work the paper positions itself against
(Sec. II):

* :mod:`repro.baselines.random_sim` — dynamic functional testing against a
  golden behavioural model (representative of verification-test approaches),
* :mod:`repro.baselines.bmc` — bounded model checking of output equivalence
  between two design instances (representative of BMC-based formal methods,
  limited by the unrolling bound),
* :mod:`repro.baselines.uci` — Unused Circuit Identification: signals whose
  value never influences any output during testing are Trojan candidates,
* :mod:`repro.baselines.fanci` — FANCI-style control-value analysis: wires
  with nearly-unused inputs (very low control values) are Trojan candidates.

None of these is exhaustive — that is exactly the comparison point of the
benchmarks in ``benchmarks/bench_baseline_comparison.py``.
"""

from repro.baselines.random_sim import RandomSimulationTester, RandomSimulationResult
from repro.baselines.bmc import BoundedTrojanChecker, BmcResult
from repro.baselines.uci import UnusedCircuitIdentification, UciResult
from repro.baselines.fanci import FanciAnalysis, FanciResult

__all__ = [
    "RandomSimulationTester",
    "RandomSimulationResult",
    "BoundedTrojanChecker",
    "BmcResult",
    "UnusedCircuitIdentification",
    "UciResult",
    "FanciAnalysis",
    "FanciResult",
]
