"""Cycle-accurate two-valued RTL simulation and waveform export."""

from repro.sim.simulator import Simulator
from repro.sim.trace import Trace, trace_from_counterexample
from repro.sim.vcd import trace_to_vcd_string, write_vcd

__all__ = [
    "Simulator",
    "Trace",
    "trace_from_counterexample",
    "write_vcd",
    "trace_to_vcd_string",
]
