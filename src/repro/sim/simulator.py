"""Two-valued cycle-accurate simulator over the flat RTL IR.

The simulator serves three purposes in this repository:

* validating that the generated accelerator cores really implement their
  algorithm (the AES/RSA cores are checked against the reference models of
  :mod:`repro.crypto`),
* replaying formal counterexamples (:mod:`repro.ipc.cex`) so a verification
  engineer can inspect the concrete behaviour the property checker found,
* providing the dynamic-testing baseline (:mod:`repro.baselines.random_sim`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import networkx as nx

from repro.errors import SimulationError
from repro.rtl import exprs
from repro.rtl.ir import Module
from repro.sim.trace import Trace


class Simulator:
    """Evaluates a flat module cycle by cycle.

    The simulator is two-valued: uninitialised registers start at their reset
    value (or zero when none is known) rather than ``X``.  That is sufficient
    for validating the data paths of non-interfering accelerators and for
    replaying counterexamples, both of which supply explicit values.
    """

    def __init__(self, module: Module, initial_state: Optional[Dict[str, int]] = None) -> None:
        self._module = module
        self._eval_order = self._combinational_order()
        self._state: Dict[str, int] = {}
        for name, register in module.registers.items():
            self._state[name] = register.reset_value if register.reset_value is not None else 0
        if initial_state:
            for name, value in initial_state.items():
                if name not in module.registers:
                    raise SimulationError(f"{name!r} is not a register and cannot be part of the initial state")
                self._state[name] = value & ((1 << module.width_of(name)) - 1)
        self._values: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    # Setup helpers
    # ------------------------------------------------------------------ #

    def _combinational_order(self) -> List[str]:
        graph = nx.DiGraph()
        graph.add_nodes_from(self._module.comb)
        for name, expr in self._module.comb.items():
            for dependency in exprs.support(expr):
                if dependency in self._module.comb:
                    graph.add_edge(dependency, name)
        try:
            return list(nx.topological_sort(graph))
        except nx.NetworkXUnfeasible as error:
            raise SimulationError("combinational loop detected during simulation setup") from error

    # ------------------------------------------------------------------ #
    # State access
    # ------------------------------------------------------------------ #

    @property
    def module(self) -> Module:
        return self._module

    def state(self) -> Dict[str, int]:
        """Current register values."""
        return dict(self._state)

    def set_state(self, values: Dict[str, int]) -> None:
        for name, value in values.items():
            if name not in self._module.registers:
                raise SimulationError(f"{name!r} is not a register")
            self._state[name] = value & ((1 << self._module.width_of(name)) - 1)

    def reset(self) -> None:
        """Load every register with its reset value (zero when unknown)."""
        for name, register in self._module.registers.items():
            self._state[name] = register.reset_value if register.reset_value is not None else 0

    def peek(self, name: str) -> int:
        """Value of any signal after the last :meth:`step` (or current state)."""
        if name in self._values:
            return self._values[name]
        if name in self._state:
            return self._state[name]
        raise SimulationError(f"signal {name!r} has no value yet; run step() first")

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def evaluate_combinational(self, inputs: Dict[str, int]) -> Dict[str, int]:
        """Settle combinational logic for the given inputs and current state."""
        values: Dict[str, int] = {}
        for name, width in self._module.inputs.items():
            values[name] = inputs.get(name, 0) & ((1 << width) - 1)
        values.update(self._state)

        def lookup(name: str) -> int:
            if name in values:
                return values[name]
            raise SimulationError(f"signal {name!r} read before being driven")

        for name in self._eval_order:
            values[name] = exprs.evaluate(self._module.comb[name], lookup)
        self._values = values
        return values

    def step(self, inputs: Optional[Dict[str, int]] = None) -> Dict[str, int]:
        """Advance one clock cycle; returns the settled signal values of the cycle."""
        values = self.evaluate_combinational(inputs or {})
        next_state: Dict[str, int] = {}

        def lookup(name: str) -> int:
            if name in values:
                return values[name]
            raise SimulationError(f"signal {name!r} read before being driven")

        for name, register in self._module.registers.items():
            next_state[name] = exprs.evaluate(register.next, lookup)
        self._state = next_state
        return values

    def run(self, stimuli: Iterable[Dict[str, int]], watch: Optional[Iterable[str]] = None) -> Trace:
        """Apply a sequence of input maps, one per cycle, and record a trace."""
        watch_list = list(watch) if watch is not None else None
        trace = Trace()
        for cycle_inputs in stimuli:
            values = self.step(cycle_inputs)
            if watch_list is None:
                trace.record(values)
            else:
                trace.record({name: self._lookup_watch(name, values) for name in watch_list})
        return trace

    def _lookup_watch(self, name: str, values: Dict[str, int]) -> int:
        if name in values:
            return values[name]
        if name in self._state:
            return self._state[name]
        raise SimulationError(f"cannot watch unknown signal {name!r}")

    def run_cycles(self, count: int, inputs: Optional[Dict[str, int]] = None) -> Trace:
        """Run ``count`` cycles with constant inputs."""
        return self.run([dict(inputs or {}) for _ in range(count)])
