"""Simulation traces: per-cycle snapshots of signal values."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.ipc.cex import CounterExample


@dataclass
class Trace:
    """A sequence of per-cycle signal valuations.

    ``snapshots[k][name]`` is the value of ``name`` during cycle ``k`` (after
    combinational settling, before the clock edge that ends the cycle).
    """

    snapshots: List[Dict[str, int]] = field(default_factory=list)

    def record(self, values: Dict[str, int]) -> None:
        self.snapshots.append(dict(values))

    def __len__(self) -> int:
        return len(self.snapshots)

    def value(self, name: str, cycle: int) -> int:
        return self.snapshots[cycle][name]

    def series(self, name: str) -> List[int]:
        return [snapshot[name] for snapshot in self.snapshots]

    def last(self, name: str) -> int:
        return self.snapshots[-1][name]

    def restrict(self, names: Iterable[str]) -> "Trace":
        names = set(names)
        restricted = Trace()
        for snapshot in self.snapshots:
            restricted.record({name: value for name, value in snapshot.items() if name in names})
        return restricted


def trace_from_counterexample(cex: "CounterExample", instance: int = 0) -> Trace:
    """Render one instance's valuation of a counterexample as a trace.

    Counterexample values are keyed ``(instance, time, signal)``; sequential
    divergence witnesses use the clock cycle as the time axis (instance 0 is
    the design, instance 1 the golden model), so the returned trace is a
    complete per-cycle waveform directly consumable by the VCD writer.
    Combinational counterexamples work too — their window is simply the
    property's one-cycle interval.  Signals the check never materialised at
    a cycle are absent from that snapshot (the VCD writer holds the previous
    value, matching waveform-viewer semantics).
    """
    times = sorted({time for (inst, time, _signal) in cex.values if inst == instance})
    trace = Trace()
    if not times:
        return trace
    by_time: Dict[int, Dict[str, int]] = {time: {} for time in range(max(times) + 1)}
    for (inst, time, signal), value in cex.values.items():
        if inst == instance:
            by_time[time][signal] = value
    for time in range(max(times) + 1):
        trace.record(by_time[time])
    return trace
