"""Simulation traces: per-cycle snapshots of signal values."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List


@dataclass
class Trace:
    """A sequence of per-cycle signal valuations.

    ``snapshots[k][name]`` is the value of ``name`` during cycle ``k`` (after
    combinational settling, before the clock edge that ends the cycle).
    """

    snapshots: List[Dict[str, int]] = field(default_factory=list)

    def record(self, values: Dict[str, int]) -> None:
        self.snapshots.append(dict(values))

    def __len__(self) -> int:
        return len(self.snapshots)

    def value(self, name: str, cycle: int) -> int:
        return self.snapshots[cycle][name]

    def series(self, name: str) -> List[int]:
        return [snapshot[name] for snapshot in self.snapshots]

    def last(self, name: str) -> int:
        return self.snapshots[-1][name]

    def restrict(self, names: Iterable[str]) -> "Trace":
        names = set(names)
        restricted = Trace()
        for snapshot in self.snapshots:
            restricted.record({name: value for name, value in snapshot.items() if name in names})
        return restricted
