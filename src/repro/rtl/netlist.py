"""Structural netlist views of a flat RTL module.

The detection method of the paper relies on a purely *structural* analysis
(``Get_Fanout`` in Algorithm 1): syntactic dependencies of state-holding
elements and outputs on other signals, traced through combinational logic.
This module provides those views on top of :class:`repro.rtl.ir.Module`:

* the combinational dependency graph (and cycle detection),
* the *leaf support* of any signal — the primary inputs and registers its
  value combinationally depends on,
* the one-clock-cycle register-level dependency graph used by
  :mod:`repro.rtl.fanout`.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, FrozenSet, Iterable, List, Set

import networkx as nx

from repro.errors import ElaborationError
from repro.rtl import exprs
from repro.rtl.ir import Module
from repro.utils.graphs import find_cycle


class DependencyGraph:
    """Structural dependency analysis over a flat module."""

    def __init__(self, module: Module) -> None:
        self._module = module
        self._comb_graph = self._build_comb_graph()
        self._check_comb_cycles()
        self._leaf_support_cache: Dict[str, FrozenSet[str]] = {}

    @property
    def module(self) -> Module:
        return self._module

    # ------------------------------------------------------------------ #
    # Graph construction
    # ------------------------------------------------------------------ #

    def _build_comb_graph(self) -> nx.DiGraph:
        graph = nx.DiGraph()
        graph.add_nodes_from(self._module.signals)
        for name, expr in self._module.comb.items():
            for dependency in exprs.support(expr):
                graph.add_edge(dependency, name)
        return graph

    def _check_comb_cycles(self) -> None:
        cycle = find_cycle(self._comb_graph)
        if cycle:
            raise ElaborationError(
                "combinational loop detected through signals: " + " -> ".join(cycle[:8])
            )

    # ------------------------------------------------------------------ #
    # Support queries
    # ------------------------------------------------------------------ #

    def is_leaf(self, name: str) -> bool:
        """Leaves of combinational cones: primary inputs and registers."""
        return self._module.is_input(name) or self._module.is_register(name)

    def leaf_support_of_expr(self, expr: exprs.Expr) -> Set[str]:
        """Primary inputs and registers the expression transitively depends on."""
        result: Set[str] = set()
        for name in exprs.support(expr):
            result |= self.leaf_support(name)
        return result

    def leaf_support(self, name: str) -> Set[str]:
        """Primary inputs and registers signal ``name`` combinationally depends on.

        For a register or input, this is the signal itself (its *value* at a
        time point is a leaf); combinational wires and outputs are expanded
        through their drivers.
        """
        cached = self._leaf_support_cache.get(name)
        if cached is not None:
            return set(cached)
        result = self._compute_leaf_support(name)
        self._leaf_support_cache[name] = frozenset(result)
        return set(result)

    def _compute_leaf_support(self, name: str) -> Set[str]:
        if self.is_leaf(name):
            return {name}
        driver = self._module.comb.get(name)
        if driver is None:
            # Undriven wire: treat as its own leaf so problems stay visible.
            return {name}
        result: Set[str] = set()
        stack: List[str] = [name]
        visited: Set[str] = set()
        while stack:
            current = stack.pop()
            if current in visited:
                continue
            visited.add(current)
            if current != name and self.is_leaf(current):
                result.add(current)
                continue
            expr = self._module.comb.get(current)
            if expr is None:
                if current != name:
                    result.add(current)
                continue
            stack.extend(exprs.support(expr))
        return result

    def next_state_leaf_support(self, register: str) -> Set[str]:
        """Leaf support of the next-state function of ``register``."""
        return self.leaf_support_of_expr(self._module.registers[register].next)

    # ------------------------------------------------------------------ #
    # One-clock-cycle register-level graph
    # ------------------------------------------------------------------ #

    def cycle_graph(self, data_inputs: Iterable[str] | None = None) -> nx.DiGraph:
        """Graph whose edge ``a -> b`` means: the value of leaf ``a`` at cycle t
        can affect the value of state/output signal ``b`` at cycle t+1 (for
        registers) or the combinational value of output ``b`` (for outputs).

        Nodes are primary data inputs, registers and primary outputs.
        """
        module = self._module
        inputs = set(data_inputs) if data_inputs is not None else set(module.data_inputs())
        graph = nx.DiGraph()
        graph.add_nodes_from(inputs)
        graph.add_nodes_from(module.registers)
        graph.add_nodes_from(module.outputs)
        for register in module.registers:
            for leaf in self.next_state_leaf_support(register):
                if leaf in inputs or leaf in module.registers:
                    graph.add_edge(leaf, register)
        for output in module.outputs:
            if output in module.registers:
                continue
            for leaf in self.leaf_support(output):
                if leaf in inputs or leaf in module.registers:
                    graph.add_edge(leaf, output)
        return graph

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #

    def signals_depending_on(self, sources: Iterable[str]) -> Set[str]:
        """State/output signals whose next value depends on any of ``sources``.

        This is the paper's ``Get_Fanout(IP, sources)``: one clock cycle of
        structural reachability.
        """
        sources = set(sources)
        module = self._module
        result: Set[str] = set()
        for register in module.registers:
            if self.next_state_leaf_support(register) & sources:
                result.add(register)
        for output in module.outputs:
            if output in module.registers:
                continue
            if self.leaf_support(output) & sources:
                result.add(output)
        return result
