"""Elaboration: Verilog AST -> flat word-level RTL IR.

Responsibilities:

* resolve parameters and ranges to constants,
* flatten the module hierarchy (instance signals are prefixed ``inst.name``),
* convert ``always`` processes into per-register next-state expressions or
  combinational drivers (control flow becomes multiplexers),
* infer expression widths using simplified Verilog rules (operands are
  zero-extended to the widest operand; assignments truncate/extend to the
  target width),
* detect inferred latches, undriven signals, multiple drivers and
  combinational loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import ElaborationError, UnsupportedFeatureError
from repro.rtl import exprs
from repro.rtl.ir import Module
from repro.verilog import ast
from repro.verilog.parser import parse_source


def elaborate_source(source_text: str, top: str, parameters: Optional[Dict[str, int]] = None) -> Module:
    """Parse ``source_text`` and elaborate module ``top`` into the flat IR."""
    return elaborate(parse_source(source_text), top, parameters)


def elaborate(source: ast.SourceFile, top: str, parameters: Optional[Dict[str, int]] = None) -> Module:
    """Elaborate module ``top`` of a parsed source file into the flat IR."""
    elaborator = _Elaborator(source.module_map())
    return elaborator.run(top, parameters or {})


# --------------------------------------------------------------------------- #
# Internal machinery
# --------------------------------------------------------------------------- #


@dataclass
class _SignalInfo:
    flat_name: str
    width: int
    is_reg: bool = False


@dataclass
class _Scope:
    """Per-module-instance name resolution context."""

    module: ast.Module
    prefix: str
    params: Dict[str, int] = field(default_factory=dict)
    signals: Dict[str, _SignalInfo] = field(default_factory=dict)

    def flat(self, local_name: str) -> str:
        return self.prefix + local_name


class _Elaborator:
    def __init__(self, module_map: Dict[str, ast.Module]) -> None:
        self._modules = module_map
        self._ir = Module(name="")
        # Partial continuous drivers: flat name -> list of (lsb, expr).
        self._partial_drivers: Dict[str, List[Tuple[int, exprs.Expr]]] = {}
        self._sequential_clocks: List[str] = []
        self._sequential_resets: List[str] = []

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #

    def run(self, top: str, parameters: Dict[str, int]) -> Module:
        if top not in self._modules:
            raise ElaborationError(f"top module {top!r} not found")
        self._ir = Module(name=top)
        top_scope = self._build_scope(self._modules[top], prefix="", overrides=parameters)
        self._declare_top_ports(top_scope)
        self._elaborate_body(top_scope)
        self._finalise_partial_drivers()
        self._resolve_clocks_and_resets()
        self._check_drivers()
        self._ir.validate()
        return self._ir

    # ------------------------------------------------------------------ #
    # Scope construction
    # ------------------------------------------------------------------ #

    def _build_scope(self, module: ast.Module, prefix: str, overrides: Dict[str, int]) -> _Scope:
        scope = _Scope(module=module, prefix=prefix)
        # Parameters are evaluated in declaration order so later ones may use
        # earlier ones; explicit overrides win for non-local parameters.
        for item in module.items:
            if isinstance(item, ast.ParamDecl):
                value = self._const_eval(item.value, scope)
                if not item.local and item.name in overrides:
                    value = overrides[item.name]
                scope.params[item.name] = value
        unknown = set(overrides) - set(scope.params)
        if unknown:
            raise ElaborationError(f"unknown parameter override(s) {sorted(unknown)} for module {module.name!r}")
        # Declare ports and nets.
        reg_names = set()
        for item in module.items:
            if isinstance(item, ast.NetDecl) and item.kind == "reg":
                reg_names.update(item.names)
        for port in module.ports:
            width = self._range_width(port.range, scope)
            is_reg = port.is_reg or port.name in reg_names
            self._declare_signal(scope, port.name, width, is_reg=is_reg)
        for item in module.items:
            if isinstance(item, ast.NetDecl):
                width = self._range_width(item.range, scope)
                if item.kind == "integer":
                    width = 32
                for name in item.names:
                    if name not in scope.signals:
                        self._declare_signal(scope, name, width, is_reg=(item.kind == "reg"))
                    elif item.kind == "reg":
                        scope.signals[name].is_reg = True
        return scope

    def _declare_signal(self, scope: _Scope, local_name: str, width: int, is_reg: bool) -> None:
        flat_name = scope.flat(local_name)
        scope.signals[local_name] = _SignalInfo(flat_name=flat_name, width=width, is_reg=is_reg)
        self._ir.add_wire(flat_name, width)

    def _declare_top_ports(self, scope: _Scope) -> None:
        declared = {port.name for port in scope.module.ports}
        for name in scope.module.port_order:
            if name not in declared:
                raise ElaborationError(f"port {name!r} listed in header but never declared")
        for port in scope.module.ports:
            width = scope.signals[port.name].width
            if port.direction == "input":
                self._ir.add_input(port.name, width)
            elif port.direction == "output":
                self._ir.add_output(port.name, width)
            else:
                raise UnsupportedFeatureError("inout ports are not supported")

    def _range_width(self, range_: Optional[ast.Range], scope: _Scope) -> int:
        if range_ is None:
            return 1
        msb = self._const_eval(range_.msb, scope)
        lsb = self._const_eval(range_.lsb, scope)
        if lsb != 0:
            raise UnsupportedFeatureError(f"ranges must be [msb:0], got [{msb}:{lsb}]")
        return msb - lsb + 1

    # ------------------------------------------------------------------ #
    # Module body
    # ------------------------------------------------------------------ #

    def _elaborate_body(self, scope: _Scope) -> None:
        for item in scope.module.items:
            if isinstance(item, ast.ContinuousAssign):
                self._elaborate_continuous_assign(item, scope)
            elif isinstance(item, ast.Always):
                self._elaborate_always(item, scope)
            elif isinstance(item, ast.Instance):
                self._elaborate_instance(item, scope)
            elif isinstance(item, (ast.NetDecl, ast.ParamDecl)):
                continue
            else:  # pragma: no cover - parser restricts item kinds
                raise UnsupportedFeatureError(f"unsupported module item {type(item).__name__}")

    # -- continuous assigns ------------------------------------------------ #

    def _elaborate_continuous_assign(self, item: ast.ContinuousAssign, scope: _Scope) -> None:
        targets = self._resolve_lvalue(item.lhs, scope)
        total_width = sum(width for _, _, width in targets)
        value = self._resize(self._convert_expr(item.rhs, scope), total_width)
        offset = total_width
        for flat_name, lsb, width in targets:
            offset -= width
            part = exprs.slice_expr(value, offset, width)
            self._partial_drivers.setdefault(flat_name, []).append((lsb, part))

    # -- instances ---------------------------------------------------------- #

    def _elaborate_instance(self, item: ast.Instance, scope: _Scope) -> None:
        if item.module not in self._modules:
            raise ElaborationError(f"instantiated module {item.module!r} is not defined")
        child_ast = self._modules[item.module]
        overrides = self._instance_parameter_overrides(item, child_ast, scope)
        child_prefix = scope.flat(item.name) + "."
        child_scope = self._build_scope(child_ast, prefix=child_prefix, overrides=overrides)
        connections = self._instance_connections(item, child_ast)
        child_ports = {port.name: port for port in child_ast.ports}
        for port_name, parent_expr in connections.items():
            if port_name not in child_ports:
                raise ElaborationError(f"module {item.module!r} has no port {port_name!r}")
            port = child_ports[port_name]
            info = child_scope.signals[port_name]
            if port.direction == "input":
                if parent_expr is None:
                    value: exprs.Expr = exprs.const(0, info.width)
                else:
                    value = self._resize(self._convert_expr(parent_expr, scope), info.width)
                self._partial_drivers.setdefault(info.flat_name, []).append((0, value))
            elif port.direction == "output":
                if parent_expr is None:
                    continue
                targets = self._resolve_lvalue(parent_expr, scope)
                source = exprs.ref(info.flat_name, info.width)
                total_width = sum(width for _, _, width in targets)
                source = self._resize(source, total_width)
                offset = total_width
                for flat_name, lsb, width in targets:
                    offset -= width
                    part = exprs.slice_expr(source, offset, width)
                    self._partial_drivers.setdefault(flat_name, []).append((lsb, part))
            else:
                raise UnsupportedFeatureError("inout ports are not supported")
        self._elaborate_body(child_scope)

    def _instance_parameter_overrides(
        self, item: ast.Instance, child: ast.Module, scope: _Scope
    ) -> Dict[str, int]:
        overridable = [param.name for param in child.parameters() if not param.local]
        overrides: Dict[str, int] = {}
        positional_index = 0
        for name, expr in item.parameters:
            value = self._const_eval(expr, scope)
            if name is None:
                if positional_index >= len(overridable):
                    raise ElaborationError(f"too many positional parameters for {child.name!r}")
                overrides[overridable[positional_index]] = value
                positional_index += 1
            else:
                overrides[name] = value
        return overrides

    def _instance_connections(
        self, item: ast.Instance, child: ast.Module
    ) -> Dict[str, Optional[ast.Expr]]:
        connections: Dict[str, Optional[ast.Expr]] = {}
        positional = [conn for conn in item.connections if conn.port is None]
        named = [conn for conn in item.connections if conn.port is not None]
        if positional and named:
            raise ElaborationError(f"instance {item.name!r} mixes positional and named connections")
        if positional:
            port_names = child.port_order or [port.name for port in child.ports]
            if len(positional) > len(port_names):
                raise ElaborationError(f"instance {item.name!r} has too many connections")
            for port_name, connection in zip(port_names, positional):
                connections[port_name] = connection.expr
        else:
            for connection in named:
                connections[connection.port] = connection.expr
        return connections

    # -- always blocks ------------------------------------------------------ #

    def _elaborate_always(self, item: ast.Always, scope: _Scope) -> None:
        if item.is_combinational:
            self._elaborate_combinational_always(item, scope)
        else:
            self._elaborate_sequential_always(item, scope)

    def _elaborate_combinational_always(self, item: ast.Always, scope: _Scope) -> None:
        executor = _ProcessExecutor(self, scope, sequential=False)
        executor.run(item.body)
        for local_name, value in executor.updates.items():
            info = scope.signals[local_name]
            final = self._resize(value, info.width)
            if info.flat_name in exprs.support(final):
                raise ElaborationError(
                    f"combinational always block infers a latch for {info.flat_name!r}: "
                    "the signal is not assigned on every path"
                )
            self._partial_drivers.setdefault(info.flat_name, []).append((0, final))

    def _elaborate_sequential_always(self, item: ast.Always, scope: _Scope) -> None:
        body_reads = _statement_identifiers(item.body)
        clock = None
        async_resets = []
        for event in item.events:
            if event.edge not in ("posedge", "negedge"):
                raise ElaborationError("sequential always blocks need edge-triggered events")
            if event.signal not in body_reads and clock is None:
                clock = event.signal
            else:
                async_resets.append(event.signal)
        if clock is None:
            # All event signals are referenced in the body; fall back to the first.
            clock = item.events[0].signal
            async_resets = [event.signal for event in item.events[1:]]
        clock_info = scope.signals.get(clock)
        if clock_info is None:
            raise ElaborationError(f"clock signal {clock!r} is not declared")
        self._sequential_clocks.append(clock_info.flat_name)
        for reset in async_resets:
            reset_info = scope.signals.get(reset)
            if reset_info is not None:
                self._sequential_resets.append(reset_info.flat_name)

        executor = _ProcessExecutor(self, scope, sequential=True)
        executor.run(item.body)
        reset_values = _extract_reset_values(item, scope, self)
        for local_name, value in executor.updates.items():
            info = scope.signals[local_name]
            if not info.is_reg:
                raise ElaborationError(
                    f"signal {info.flat_name!r} is assigned in a clocked block but not declared 'reg'"
                )
            next_expr = self._resize(value, info.width)
            if info.flat_name in self._ir.registers:
                raise ElaborationError(f"register {info.flat_name!r} assigned in multiple always blocks")
            self._ir.add_register(
                info.flat_name,
                info.width,
                next_expr,
                reset_value=reset_values.get(local_name),
            )

    # ------------------------------------------------------------------ #
    # Expression conversion
    # ------------------------------------------------------------------ #

    def _convert_expr(self, expr: ast.Expr, scope: _Scope, reads: Optional[Dict[str, exprs.Expr]] = None) -> exprs.Expr:
        reads = reads or {}
        if isinstance(expr, ast.Number):
            width = expr.width if expr.width is not None else 32
            return exprs.const(expr.value, width)
        if isinstance(expr, ast.Ident):
            return self._convert_ident(expr.name, scope, reads)
        if isinstance(expr, ast.Unary):
            return self._convert_unary(expr, scope, reads)
        if isinstance(expr, ast.Binary):
            return self._convert_binary(expr, scope, reads)
        if isinstance(expr, ast.Ternary):
            cond = exprs.reduce_or(self._convert_expr(expr.cond, scope, reads))
            then = self._convert_expr(expr.then, scope, reads)
            otherwise = self._convert_expr(expr.otherwise, scope, reads)
            width = max(then.width, otherwise.width)
            return exprs.mux(cond, self._resize(then, width), self._resize(otherwise, width))
        if isinstance(expr, ast.Concat):
            parts = tuple(self._convert_expr(part, scope, reads) for part in expr.parts)
            return exprs.concat(parts)
        if isinstance(expr, ast.Repeat):
            count = self._const_eval(expr.count, scope)
            value = self._convert_expr(expr.value, scope, reads)
            return exprs.concat(tuple(value for _ in range(count)))
        if isinstance(expr, ast.Index):
            return self._convert_index(expr, scope, reads)
        if isinstance(expr, ast.RangeSelect):
            target = self._convert_expr(expr.target, scope, reads)
            msb = self._const_eval(expr.msb, scope)
            lsb = self._const_eval(expr.lsb, scope)
            if msb < lsb:
                raise UnsupportedFeatureError("descending part selects are not supported")
            return exprs.slice_expr(target, lsb, msb - lsb + 1)
        raise UnsupportedFeatureError(f"unsupported expression node {type(expr).__name__}")

    def _convert_ident(self, name: str, scope: _Scope, reads: Dict[str, exprs.Expr]) -> exprs.Expr:
        if name in reads:
            return reads[name]
        if name in scope.params:
            return exprs.const(scope.params[name], 32)
        info = scope.signals.get(name)
        if info is None:
            raise ElaborationError(f"undeclared identifier {name!r} in module {scope.module.name!r}")
        return exprs.ref(info.flat_name, info.width)

    def _convert_unary(self, expr: ast.Unary, scope: _Scope, reads: Dict[str, exprs.Expr]) -> exprs.Expr:
        operand = self._convert_expr(expr.operand, scope, reads)
        op = expr.op
        if op == "+":
            return operand
        if op == "~":
            return exprs.Unop(width=operand.width, op=exprs.UnaryOp.NOT, operand=operand)
        if op == "-":
            return exprs.Unop(width=operand.width, op=exprs.UnaryOp.NEG, operand=operand)
        if op == "!":
            return exprs.logical_not(operand)
        if op == "&":
            return exprs.Unop(width=1, op=exprs.UnaryOp.RED_AND, operand=operand)
        if op == "|":
            return exprs.reduce_or(operand)
        if op == "^":
            return exprs.Unop(width=1, op=exprs.UnaryOp.RED_XOR, operand=operand)
        if op in ("~&", "~|", "~^"):
            inner_op = {"~&": exprs.UnaryOp.RED_AND, "~|": exprs.UnaryOp.RED_OR, "~^": exprs.UnaryOp.RED_XOR}[op]
            inner = exprs.Unop(width=1, op=inner_op, operand=operand)
            return exprs.Unop(width=1, op=exprs.UnaryOp.NOT, operand=inner)
        raise UnsupportedFeatureError(f"unsupported unary operator {op!r}")

    _BINOP_MAP = {
        "&": exprs.BinaryOp.AND,
        "|": exprs.BinaryOp.OR,
        "^": exprs.BinaryOp.XOR,
        "+": exprs.BinaryOp.ADD,
        "-": exprs.BinaryOp.SUB,
        "*": exprs.BinaryOp.MUL,
        "%": exprs.BinaryOp.MOD,
        "==": exprs.BinaryOp.EQ,
        "===": exprs.BinaryOp.EQ,
        "!=": exprs.BinaryOp.NE,
        "!==": exprs.BinaryOp.NE,
        "<": exprs.BinaryOp.ULT,
        "<=": exprs.BinaryOp.ULE,
        ">": exprs.BinaryOp.UGT,
        ">=": exprs.BinaryOp.UGE,
    }

    def _convert_binary(self, expr: ast.Binary, scope: _Scope, reads: Dict[str, exprs.Expr]) -> exprs.Expr:
        left = self._convert_expr(expr.left, scope, reads)
        right = self._convert_expr(expr.right, scope, reads)
        op = expr.op
        if op in ("&&", "||"):
            left_bool = exprs.reduce_or(left)
            right_bool = exprs.reduce_or(right)
            kind = exprs.BinaryOp.LOG_AND if op == "&&" else exprs.BinaryOp.LOG_OR
            return exprs.Binop(width=1, op=kind, left=left_bool, right=right_bool)
        if op in ("^~", "~^"):
            width = max(left.width, right.width)
            xor = exprs.Binop(width=width, op=exprs.BinaryOp.XOR,
                              left=self._resize(left, width), right=self._resize(right, width))
            return exprs.Unop(width=width, op=exprs.UnaryOp.NOT, operand=xor)
        if op in ("<<", "<<<"):
            return exprs.Binop(width=left.width, op=exprs.BinaryOp.SHL, left=left, right=right)
        if op in (">>", ">>>"):
            return exprs.Binop(width=left.width, op=exprs.BinaryOp.LSHR, left=left, right=right)
        if op == "/":
            raise UnsupportedFeatureError("division is not part of the synthesisable subset")
        kind = self._BINOP_MAP.get(op)
        if kind is None:
            raise UnsupportedFeatureError(f"unsupported binary operator {op!r}")
        if kind in (exprs.BinaryOp.EQ, exprs.BinaryOp.NE, exprs.BinaryOp.ULT,
                    exprs.BinaryOp.ULE, exprs.BinaryOp.UGT, exprs.BinaryOp.UGE):
            width = max(left.width, right.width)
            return exprs.Binop(width=1, op=kind, left=self._resize(left, width), right=self._resize(right, width))
        width = max(left.width, right.width)
        return exprs.Binop(width=width, op=kind, left=self._resize(left, width), right=self._resize(right, width))

    def _convert_index(self, expr: ast.Index, scope: _Scope, reads: Dict[str, exprs.Expr]) -> exprs.Expr:
        target = self._convert_expr(expr.target, scope, reads)
        try:
            index = self._const_eval(expr.index, scope)
        except ElaborationError:
            index = None
        if index is not None:
            if index >= target.width:
                raise ElaborationError(f"bit select [{index}] out of range for width {target.width}")
            return exprs.slice_expr(target, index, 1)
        shift_amount = self._convert_expr(expr.index, scope, reads)
        shifted = exprs.Binop(width=target.width, op=exprs.BinaryOp.LSHR, left=target, right=shift_amount)
        return exprs.slice_expr(shifted, 0, 1)

    def _resize(self, expr: exprs.Expr, width: int) -> exprs.Expr:
        if expr.width == width:
            return expr
        if isinstance(expr, exprs.Const):
            return exprs.const(expr.value, width)
        if expr.width > width:
            return exprs.slice_expr(expr, 0, width)
        return exprs.concat((exprs.const(0, width - expr.width), expr))

    # ------------------------------------------------------------------ #
    # L-values
    # ------------------------------------------------------------------ #

    def _resolve_lvalue(self, expr: ast.Expr, scope: _Scope) -> List[Tuple[str, int, int]]:
        """Resolve an l-value into ``[(flat_name, lsb, width)]``, MSB-part first."""
        if isinstance(expr, ast.Ident):
            info = scope.signals.get(expr.name)
            if info is None:
                raise ElaborationError(f"undeclared l-value {expr.name!r}")
            return [(info.flat_name, 0, info.width)]
        if isinstance(expr, ast.Index):
            base = self._resolve_lvalue(expr.target, scope)
            if len(base) != 1:
                raise UnsupportedFeatureError("bit select of concatenated l-value")
            flat_name, base_lsb, _ = base[0]
            index = self._const_eval(expr.index, scope)
            return [(flat_name, base_lsb + index, 1)]
        if isinstance(expr, ast.RangeSelect):
            base = self._resolve_lvalue(expr.target, scope)
            if len(base) != 1:
                raise UnsupportedFeatureError("part select of concatenated l-value")
            flat_name, base_lsb, _ = base[0]
            msb = self._const_eval(expr.msb, scope)
            lsb = self._const_eval(expr.lsb, scope)
            return [(flat_name, base_lsb + lsb, msb - lsb + 1)]
        if isinstance(expr, ast.Concat):
            targets: List[Tuple[str, int, int]] = []
            for part in expr.parts:
                targets.extend(self._resolve_lvalue(part, scope))
            return targets
        raise UnsupportedFeatureError(f"unsupported l-value {type(expr).__name__}")

    # ------------------------------------------------------------------ #
    # Constant evaluation
    # ------------------------------------------------------------------ #

    def _const_eval(self, expr: ast.Expr, scope: _Scope) -> int:
        if isinstance(expr, ast.Number):
            return expr.value
        if isinstance(expr, ast.Ident):
            if expr.name in scope.params:
                return scope.params[expr.name]
            raise ElaborationError(f"{expr.name!r} is not a constant")
        if isinstance(expr, ast.Unary):
            value = self._const_eval(expr.operand, scope)
            if expr.op == "-":
                return -value
            if expr.op == "+":
                return value
            if expr.op == "~":
                return ~value
            if expr.op == "!":
                return 0 if value else 1
            raise ElaborationError(f"operator {expr.op!r} not allowed in constant expressions")
        if isinstance(expr, ast.Binary):
            left = self._const_eval(expr.left, scope)
            right = self._const_eval(expr.right, scope)
            operations = {
                "+": lambda: left + right,
                "-": lambda: left - right,
                "*": lambda: left * right,
                "/": lambda: left // right,
                "%": lambda: left % right,
                "<<": lambda: left << right,
                ">>": lambda: left >> right,
                "&": lambda: left & right,
                "|": lambda: left | right,
                "^": lambda: left ^ right,
                "==": lambda: int(left == right),
                "!=": lambda: int(left != right),
                "<": lambda: int(left < right),
                "<=": lambda: int(left <= right),
                ">": lambda: int(left > right),
                ">=": lambda: int(left >= right),
            }
            if expr.op not in operations:
                raise ElaborationError(f"operator {expr.op!r} not allowed in constant expressions")
            return operations[expr.op]()
        if isinstance(expr, ast.Ternary):
            return (
                self._const_eval(expr.then, scope)
                if self._const_eval(expr.cond, scope)
                else self._const_eval(expr.otherwise, scope)
            )
        raise ElaborationError(f"expression {type(expr).__name__} is not constant")

    # ------------------------------------------------------------------ #
    # Finalisation
    # ------------------------------------------------------------------ #

    def _finalise_partial_drivers(self) -> None:
        for flat_name, pieces in self._partial_drivers.items():
            width = self._ir.width_of(flat_name)
            if len(pieces) == 1 and pieces[0][0] == 0 and pieces[0][1].width == width:
                self._ir.add_comb(flat_name, pieces[0][1])
                continue
            occupied = [None] * width
            for lsb, value in pieces:
                for bit in range(lsb, lsb + value.width):
                    if bit >= width:
                        raise ElaborationError(f"assignment to {flat_name!r} exceeds its width")
                    if occupied[bit] is not None:
                        raise ElaborationError(f"signal {flat_name!r} has multiple drivers for bit {bit}")
                    occupied[bit] = (lsb, value)
            parts: List[exprs.Expr] = []  # assembled MSB-first
            bit = width
            while bit > 0:
                entry = occupied[bit - 1]
                if entry is None:
                    run_end = bit
                    while bit > 0 and occupied[bit - 1] is None:
                        bit -= 1
                    parts.append(exprs.const(0, run_end - bit))
                else:
                    lsb, value = entry
                    parts.append(value)
                    bit = lsb
            self._ir.add_comb(flat_name, exprs.concat(tuple(parts)))

    def _resolve_clocks_and_resets(self) -> None:
        for flat_name in self._sequential_clocks:
            source = self._trace_to_input(flat_name)
            if source is not None:
                self._ir.clocks.add(source)
        for flat_name in self._sequential_resets:
            source = self._trace_to_input(flat_name)
            if source is not None and source not in self._ir.clocks:
                self._ir.resets.add(source)

    def _trace_to_input(self, flat_name: str) -> Optional[str]:
        seen = set()
        name = flat_name
        while name not in seen:
            seen.add(name)
            if name in self._ir.inputs:
                return name
            driver = self._partial_drivers.get(name)
            if driver and len(driver) == 1 and isinstance(driver[0][1], exprs.Ref):
                name = driver[0][1].name
                continue
            return None
        return None

    def _check_drivers(self) -> None:
        driven = set(self._ir.inputs) | set(self._ir.comb) | set(self._ir.registers)
        used: Dict[str, str] = {}
        for name, expr in self._ir.comb.items():
            for dependency in exprs.support(expr):
                used.setdefault(dependency, name)
        for name, register in self._ir.registers.items():
            for dependency in exprs.support(register.next):
                used.setdefault(dependency, name)
        undriven = [name for name in used if name not in driven]
        if undriven:
            raise ElaborationError(
                "signals used but never driven: " + ", ".join(sorted(undriven)[:10])
            )


# --------------------------------------------------------------------------- #
# Procedural statement execution
# --------------------------------------------------------------------------- #


class _ProcessExecutor:
    """Symbolically executes an always-block body into per-target expressions."""

    def __init__(self, elaborator: _Elaborator, scope: _Scope, sequential: bool) -> None:
        self._elaborator = elaborator
        self._scope = scope
        self._sequential = sequential
        # blocking: values visible to subsequent reads inside the block.
        self.blocking: Dict[str, exprs.Expr] = {}
        # updates: final values per local signal name.
        self.updates: Dict[str, exprs.Expr] = {}

    def run(self, statement: ast.Statement) -> None:
        self._exec(statement)

    # -- helpers ------------------------------------------------------------ #

    def _current_value(self, local_name: str) -> exprs.Expr:
        info = self._scope.signals[local_name]
        if local_name in self.updates:
            return self._elaborator._resize(self.updates[local_name], info.width)
        if local_name in self.blocking:
            return self._elaborator._resize(self.blocking[local_name], info.width)
        return exprs.ref(info.flat_name, info.width)

    def _reads_env(self) -> Dict[str, exprs.Expr]:
        env = {}
        for local_name, value in self.blocking.items():
            info = self._scope.signals.get(local_name)
            if info is not None:
                env[local_name] = self._elaborator._resize(value, info.width)
        return env

    # -- statement dispatch -------------------------------------------------- #

    def _exec(self, statement: ast.Statement) -> None:
        if isinstance(statement, ast.Block):
            for child in statement.statements:
                self._exec(child)
        elif isinstance(statement, ast.Assignment):
            self._exec_assignment(statement)
        elif isinstance(statement, ast.If):
            self._exec_if(statement)
        elif isinstance(statement, ast.Case):
            self._exec_case(statement)
        else:  # pragma: no cover - parser restricts statement kinds
            raise UnsupportedFeatureError(f"unsupported statement {type(statement).__name__}")

    def _exec_assignment(self, statement: ast.Assignment) -> None:
        value = self._elaborator._convert_expr(statement.rhs, self._scope, self._reads_env())
        targets = self._resolve_procedural_lvalue(statement.lhs)
        total_width = sum(width for _, _, width in targets)
        value = self._elaborator._resize(value, total_width)
        offset = total_width
        for local_name, lsb, width in targets:
            offset -= width
            part = exprs.slice_expr(value, offset, width)
            info = self._scope.signals[local_name]
            if lsb == 0 and width == info.width:
                new_value: exprs.Expr = part
            else:
                new_value = exprs.insert_bits(self._current_value(local_name), lsb, part)
            self.updates[local_name] = new_value
            if statement.blocking:
                self.blocking[local_name] = new_value

    def _resolve_procedural_lvalue(self, expr: ast.Expr) -> List[Tuple[str, int, int]]:
        if isinstance(expr, ast.Ident):
            info = self._scope.signals.get(expr.name)
            if info is None:
                raise ElaborationError(f"undeclared l-value {expr.name!r}")
            return [(expr.name, 0, info.width)]
        if isinstance(expr, ast.Index):
            base = self._resolve_procedural_lvalue(expr.target)
            if len(base) != 1:
                raise UnsupportedFeatureError("bit select of concatenated l-value")
            name, base_lsb, _ = base[0]
            index = self._elaborator._const_eval(expr.index, self._scope)
            return [(name, base_lsb + index, 1)]
        if isinstance(expr, ast.RangeSelect):
            base = self._resolve_procedural_lvalue(expr.target)
            if len(base) != 1:
                raise UnsupportedFeatureError("part select of concatenated l-value")
            name, base_lsb, _ = base[0]
            msb = self._elaborator._const_eval(expr.msb, self._scope)
            lsb = self._elaborator._const_eval(expr.lsb, self._scope)
            return [(name, base_lsb + lsb, msb - lsb + 1)]
        if isinstance(expr, ast.Concat):
            targets: List[Tuple[str, int, int]] = []
            for part in expr.parts:
                targets.extend(self._resolve_procedural_lvalue(part))
            return targets
        raise UnsupportedFeatureError(f"unsupported procedural l-value {type(expr).__name__}")

    def _exec_if(self, statement: ast.If) -> None:
        condition = exprs.reduce_or(
            self._elaborator._convert_expr(statement.cond, self._scope, self._reads_env())
        )
        then_branch = self._fork()
        then_branch._exec(statement.then)
        else_branch = self._fork()
        if statement.otherwise is not None:
            else_branch._exec(statement.otherwise)
        self._merge(condition, then_branch, else_branch)

    # Largest case subject width for which a fully constant case statement is
    # turned into an inferred ROM (a :class:`repro.rtl.exprs.Lut` node).
    _ROM_INFERENCE_MAX_INDEX_WIDTH = 12

    def _try_rom_inference(self, statement: ast.Case) -> bool:
        """Convert a fully constant case statement into a single LUT assignment.

        Recognised shape: every arm assigns one constant to the same simple
        target (the AES S-box tables of the benchmark designs).  Returns True
        when the statement was handled.
        """
        subject = self._elaborator._convert_expr(statement.subject, self._scope, self._reads_env())
        index_width = subject.width
        if index_width > self._ROM_INFERENCE_MAX_INDEX_WIDTH:
            return False
        target: Optional[str] = None
        entries: Dict[int, int] = {}
        default_value: Optional[int] = None
        for item in statement.items:
            body = item.body
            if isinstance(body, ast.Block) and len(body.statements) == 1:
                body = body.statements[0]
            if not isinstance(body, ast.Assignment) or not isinstance(body.lhs, ast.Ident):
                return False
            if target is None:
                target = body.lhs.name
            elif target != body.lhs.name:
                return False
            try:
                value = self._elaborator._const_eval(body.rhs, self._scope)
            except ElaborationError:
                return False
            if not item.labels:
                default_value = value
                continue
            for label in item.labels:
                try:
                    label_value = self._elaborator._const_eval(label, self._scope)
                except ElaborationError:
                    return False
                entries[label_value & ((1 << index_width) - 1)] = value
        if target is None:
            return False
        size = 1 << index_width
        if default_value is None and len(entries) < size:
            return False
        info = self._scope.signals.get(target)
        if info is None:
            return False
        table = tuple(
            entries.get(index, default_value if default_value is not None else 0)
            for index in range(size)
        )
        lut = exprs.Lut(width=info.width, index=subject, table=table)
        self.updates[target] = lut
        self.blocking[target] = lut
        return True

    def _exec_case(self, statement: ast.Case) -> None:
        if self._try_rom_inference(statement):
            return
        subject = self._elaborator._convert_expr(statement.subject, self._scope, self._reads_env())
        arms: List[Tuple[Optional[exprs.Expr], ast.Statement]] = []
        default_body: Optional[ast.Statement] = None
        for item in statement.items:
            if not item.labels:
                default_body = item.body
                continue
            condition: Optional[exprs.Expr] = None
            for label in item.labels:
                label_expr = self._elaborator._convert_expr(label, self._scope, self._reads_env())
                width = max(subject.width, label_expr.width)
                comparison = exprs.equals(
                    self._elaborator._resize(subject, width), self._elaborator._resize(label_expr, width)
                )
                condition = comparison if condition is None else exprs.Binop(
                    width=1, op=exprs.BinaryOp.LOG_OR, left=condition, right=comparison
                )
            arms.append((condition, item.body))
        self._exec_case_chain(arms, default_body)

    def _exec_case_chain(
        self,
        arms: List[Tuple[Optional[exprs.Expr], ast.Statement]],
        default_body: Optional[ast.Statement],
    ) -> None:
        if not arms:
            if default_body is not None:
                self._exec(default_body)
            return
        condition, body = arms[0]
        then_branch = self._fork()
        then_branch._exec(body)
        else_branch = self._fork()
        else_branch._exec_case_chain(arms[1:], default_body)
        self._merge(condition, then_branch, else_branch)

    # -- branch management --------------------------------------------------- #

    def _fork(self) -> "_ProcessExecutor":
        clone = _ProcessExecutor(self._elaborator, self._scope, self._sequential)
        clone.blocking = dict(self.blocking)
        clone.updates = dict(self.updates)
        return clone

    def _merge(self, condition: exprs.Expr, then_branch: "_ProcessExecutor", else_branch: "_ProcessExecutor") -> None:
        touched = set(then_branch.updates) | set(else_branch.updates)
        for local_name in touched:
            info = self._scope.signals[local_name]
            base = self._current_value(local_name)
            then_value = self._elaborator._resize(then_branch.updates.get(local_name, base), info.width)
            else_value = self._elaborator._resize(else_branch.updates.get(local_name, base), info.width)
            if then_value == else_value:
                merged = then_value
            else:
                merged = exprs.mux(condition, then_value, else_value)
            self.updates[local_name] = merged
        touched_blocking = set(then_branch.blocking) | set(else_branch.blocking)
        for local_name in touched_blocking:
            if local_name in self.updates:
                self.blocking[local_name] = self.updates[local_name]


# --------------------------------------------------------------------------- #
# Reset value extraction (best effort, simulator only)
# --------------------------------------------------------------------------- #


def _statement_identifiers(statement: ast.Statement) -> set:
    names: set = set()
    if isinstance(statement, ast.Block):
        for child in statement.statements:
            names |= _statement_identifiers(child)
    elif isinstance(statement, ast.Assignment):
        names |= ast.expr_identifiers(statement.rhs)
        names |= ast.expr_identifiers(statement.lhs)
    elif isinstance(statement, ast.If):
        names |= ast.expr_identifiers(statement.cond)
        names |= _statement_identifiers(statement.then)
        if statement.otherwise is not None:
            names |= _statement_identifiers(statement.otherwise)
    elif isinstance(statement, ast.Case):
        names |= ast.expr_identifiers(statement.subject)
        for item in statement.items:
            for label in item.labels:
                names |= ast.expr_identifiers(label)
            names |= _statement_identifiers(item.body)
    return names


def _extract_reset_values(item: ast.Always, scope: _Scope, elaborator: _Elaborator) -> Dict[str, int]:
    """Best-effort extraction of per-register reset constants for the simulator.

    Recognises the common idiom ``if (rst) begin r <= CONST; ... end else ...``
    (or an active-low ``!rst_n`` condition).  Anything more exotic simply yields
    no reset value; the simulator then starts the register at zero.
    """
    body = item.body
    if isinstance(body, ast.Block) and len(body.statements) == 1:
        body = body.statements[0]
    if not isinstance(body, ast.If):
        return {}
    condition_names = ast.expr_identifiers(body.cond)
    if len(condition_names) != 1:
        return {}
    reset_branch = body.then
    values: Dict[str, int] = {}
    statements = reset_branch.statements if isinstance(reset_branch, ast.Block) else (reset_branch,)
    for statement in statements:
        if isinstance(statement, ast.Assignment) and isinstance(statement.lhs, ast.Ident):
            if isinstance(statement.rhs, ast.Number):
                values[statement.lhs.name] = statement.rhs.value
            else:
                try:
                    values[statement.lhs.name] = elaborator._const_eval(statement.rhs, scope)
                except Exception:
                    continue
    return values
