"""Flat RTL module representation used by all analysis engines."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.errors import ElaborationError
from repro.rtl import exprs


@dataclass
class Register:
    """A state-holding element.

    ``next`` is the complete next-state expression (control folded into
    multiplexers); ``reset_value`` is the concrete value loaded by the
    simulator at reset and is ignored by the formal engines, which always use
    a symbolic starting state.
    """

    name: str
    width: int
    next: exprs.Expr
    reset_value: Optional[int] = None


@dataclass
class Module:
    """A flat, elaborated RTL module.

    Attributes
    ----------
    inputs / outputs:
        Port name to width.  ``clocks`` lists input names used as clock of at
        least one register; the detection flow excludes them from the set of
        data inputs by default.
    signals:
        Every named signal (ports, wires, registers) with its width.
    comb:
        Driver expressions of combinationally driven signals.
    registers:
        State-holding elements keyed by name.
    """

    name: str
    inputs: Dict[str, int] = field(default_factory=dict)
    outputs: Dict[str, int] = field(default_factory=dict)
    signals: Dict[str, int] = field(default_factory=dict)
    comb: Dict[str, exprs.Expr] = field(default_factory=dict)
    registers: Dict[str, Register] = field(default_factory=dict)
    clocks: Set[str] = field(default_factory=set)
    resets: Set[str] = field(default_factory=set)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def width_of(self, name: str) -> int:
        try:
            return self.signals[name]
        except KeyError as error:
            raise ElaborationError(f"unknown signal {name!r} in module {self.name!r}") from error

    def is_register(self, name: str) -> bool:
        return name in self.registers

    def is_input(self, name: str) -> bool:
        return name in self.inputs

    def is_output(self, name: str) -> bool:
        return name in self.outputs

    def data_inputs(self) -> List[str]:
        """Primary inputs excluding clock and reset pins."""
        return [name for name in self.inputs if name not in self.clocks and name not in self.resets]

    def state_signals(self) -> List[str]:
        """All register names (the design's sequential state)."""
        return list(self.registers)

    def state_and_output_signals(self) -> List[str]:
        """Registers plus primary outputs — the signal universe of Sec. IV-D."""
        names = list(self.registers)
        names.extend(name for name in self.outputs if name not in self.registers)
        return names

    def driver_of(self, name: str) -> Optional[exprs.Expr]:
        """Combinational driver of ``name`` or ``None`` for inputs/registers."""
        return self.comb.get(name)

    def validate(self) -> None:
        """Check internal consistency; raises :class:`ElaborationError`."""
        for name, width in {**self.inputs, **self.outputs}.items():
            if self.signals.get(name) != width:
                raise ElaborationError(
                    f"port {name!r} has width {width} but signal table says {self.signals.get(name)}"
                )
        for name, expr in self.comb.items():
            if name not in self.signals:
                raise ElaborationError(f"combinational driver for undeclared signal {name!r}")
            if expr.width != self.signals[name]:
                raise ElaborationError(
                    f"driver width {expr.width} does not match declared width "
                    f"{self.signals[name]} of signal {name!r}"
                )
            if name in self.registers:
                raise ElaborationError(f"signal {name!r} driven both combinationally and by a register")
            if name in self.inputs:
                raise ElaborationError(f"input {name!r} must not have an internal driver")
        for name, register in self.registers.items():
            if name not in self.signals:
                raise ElaborationError(f"register {name!r} is not in the signal table")
            if register.width != self.signals[name]:
                raise ElaborationError(f"register {name!r} width mismatch")
            if register.next.width != register.width:
                raise ElaborationError(
                    f"next-state expression of {name!r} has width {register.next.width}, "
                    f"expected {register.width}"
                )
        for name in self.outputs:
            if name not in self.comb and name not in self.registers and name not in self.inputs:
                raise ElaborationError(f"output {name!r} has no driver")

    # ------------------------------------------------------------------ #
    # Convenience constructors used by tests and programmatic designs
    # ------------------------------------------------------------------ #

    def add_input(self, name: str, width: int) -> None:
        self.inputs[name] = width
        self.signals[name] = width

    def add_output(self, name: str, width: int) -> None:
        self.outputs[name] = width
        self.signals.setdefault(name, width)

    def add_wire(self, name: str, width: int) -> None:
        self.signals.setdefault(name, width)

    def add_comb(self, name: str, expr: exprs.Expr) -> None:
        self.signals.setdefault(name, expr.width)
        self.comb[name] = expr

    def add_register(
        self,
        name: str,
        width: int,
        next_expr: exprs.Expr,
        reset_value: Optional[int] = None,
    ) -> None:
        self.signals.setdefault(name, width)
        self.registers[name] = Register(name=name, width=width, next=next_expr, reset_value=reset_value)

    def ref(self, name: str) -> exprs.Ref:
        """Build a :class:`repro.rtl.exprs.Ref` with the declared width of ``name``."""
        return exprs.ref(name, self.width_of(name))


def signals_of_kind(module: Module, names: Iterable[str]) -> Dict[str, int]:
    """Utility: restrict the signal table to ``names`` preserving widths."""
    return {name: module.width_of(name) for name in names}
