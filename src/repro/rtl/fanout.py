"""Fanout-cone partitioning (the paper's ``fanouts_CCk`` sets).

The detection method partitions all state and output signals by the *smallest
number of clock cycles* it takes the primary data inputs to affect their
value (Sec. IV-C).  ``fanouts_CC1`` are the signals reached after one cycle,
``fanouts_CC2`` after two, and so on.  Signals never reached belong to the
*uncovered signal set* and are reported by the coverage check
(Sec. IV-D, case 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.rtl.ir import Module
from repro.rtl.netlist import DependencyGraph
from repro.utils.graphs import bfs_distances


def get_fanout(module_or_graph, sources: Iterable[str]) -> Set[str]:
    """One-clock-cycle structural fanout — the paper's ``Get_Fanout``.

    Returns every state or output signal whose value one clock cycle later
    can be affected by a signal in ``sources``.
    """
    graph = module_or_graph if isinstance(module_or_graph, DependencyGraph) else DependencyGraph(module_or_graph)
    return graph.signals_depending_on(sources)


@dataclass
class FanoutAnalysis:
    """Result of partitioning state/output signals into ``fanouts_CCk`` classes.

    Attributes
    ----------
    classes:
        ``classes[k]`` is the set of signals first reached ``k`` clock cycles
        after the inputs (``k >= 1``).
    distance:
        per-signal distance (only covered signals appear).
    uncovered:
        state/output signals never reached from the data inputs — candidates
        for the coverage check.
    inputs:
        the data inputs the analysis started from.
    """

    classes: Dict[int, Set[str]] = field(default_factory=dict)
    distance: Dict[str, int] = field(default_factory=dict)
    uncovered: Set[str] = field(default_factory=set)
    inputs: List[str] = field(default_factory=list)
    # Class used to *place* each covered signal into a property's prove part.
    # For registers this equals ``distance``; for non-registered outputs it is
    # the latest class of the registers feeding them, so that by the time the
    # output is proven all of its supporting registers are provable from the
    # property's assumptions.
    placement: Dict[str, int] = field(default_factory=dict)

    @property
    def depth(self) -> int:
        """Largest class index (the structural depth of the design)."""
        return max(self.classes) if self.classes else 0

    @property
    def placement_depth(self) -> int:
        """Largest placement class (>= depth; differs only for late outputs)."""
        return max(self.placement.values()) if self.placement else 0

    def signals_in_class(self, k: int) -> Set[str]:
        return set(self.classes.get(k, set()))

    def proved_in_class(self, k: int) -> Set[str]:
        """Signals whose equality is proven by the property of class ``k``."""
        return {name for name, placed in self.placement.items() if placed == k}

    def signals_up_to(self, k: int) -> Set[str]:
        """Union of ``fanouts_CC1 .. fanouts_CCk`` (the flow's ``fanouts_all``)."""
        result: Set[str] = set()
        for index in range(1, k + 1):
            result |= self.classes.get(index, set())
        return result

    def all_covered(self) -> Set[str]:
        return self.signals_up_to(self.depth)


def compute_fanout_classes(
    module: Module,
    inputs: Optional[Iterable[str]] = None,
    graph: Optional[DependencyGraph] = None,
) -> FanoutAnalysis:
    """Partition state and output signals into ``fanouts_CCk`` classes.

    ``inputs`` defaults to the module's data inputs (all primary inputs except
    clocks and resets), matching how the paper treats accelerator IP inputs.

    The distance of a *register* is one plus the minimum distance of the
    leaves (inputs or registers) its next-state function depends on.  The
    distance of a non-registered *output* is the minimum distance of the
    registers in its combinational support; an output depending only on
    primary inputs gets distance 1 (it is checked together with the first
    register layer, with input equality assumed at the evaluation time point).
    """
    graph = graph or DependencyGraph(module)
    data_inputs = list(inputs) if inputs is not None else module.data_inputs()
    cycle_graph = graph.cycle_graph(data_inputs)
    distances = bfs_distances(cycle_graph, data_inputs)

    analysis = FanoutAnalysis(inputs=list(data_inputs))
    universe = module.state_and_output_signals()
    for name in universe:
        distance = distances.get(name)
        placement = distance
        if name in module.outputs and name not in module.registers:
            # Non-registered outputs: the *distance* (paper definition) is the
            # earliest class among the registers feeding them, the *placement*
            # is the latest such class; a direct input-to-output path yields 1.
            register_leaves = {
                leaf for leaf in graph.leaf_support(name) if leaf in module.registers
            }
            register_distances = [distances[leaf] for leaf in register_leaves if leaf in distances]
            if register_distances:
                distance = min(register_distances)
                placement = max(register_distances)
            elif graph.leaf_support(name) & set(data_inputs):
                distance = 1
                placement = 1
            else:
                distance = None
                placement = None
        if distance is None or distance == 0:
            if distance == 0:
                # A data input that is also listed as an output; nothing to prove.
                continue
            analysis.uncovered.add(name)
            continue
        analysis.distance[name] = distance
        analysis.placement[name] = placement if placement is not None else distance
        analysis.classes.setdefault(distance, set()).add(name)
    return analysis
