"""Width-annotated word-level expressions of the RTL IR.

Every node carries its result width; operands are implicitly zero-extended to
the node width by the evaluator and the bit-blaster, which keeps width
handling in one place (the elaborator computes the widths once, Verilog
style).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Set, Tuple

from repro.utils.bitvec import mask, truncate


# Operator name constants (kept as plain strings for cheap hashing/repr).
class UnaryOp:
    NOT = "not"          # bitwise complement
    NEG = "neg"          # two's-complement negation
    RED_AND = "redand"   # reduction AND  -> 1 bit
    RED_OR = "redor"     # reduction OR   -> 1 bit
    RED_XOR = "redxor"   # reduction XOR  -> 1 bit
    LOG_NOT = "lognot"   # logical not    -> 1 bit


class BinaryOp:
    AND = "and"
    OR = "or"
    XOR = "xor"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    EQ = "eq"
    NE = "ne"
    ULT = "ult"
    ULE = "ule"
    UGT = "ugt"
    UGE = "uge"
    SHL = "shl"
    LSHR = "lshr"
    LOG_AND = "logand"
    LOG_OR = "logor"
    MOD = "mod"


_REDUCTION_OPS = {UnaryOp.RED_AND, UnaryOp.RED_OR, UnaryOp.RED_XOR, UnaryOp.LOG_NOT}
_BOOLEAN_BINOPS = {
    BinaryOp.EQ, BinaryOp.NE, BinaryOp.ULT, BinaryOp.ULE, BinaryOp.UGT,
    BinaryOp.UGE, BinaryOp.LOG_AND, BinaryOp.LOG_OR,
}


@dataclass(frozen=True)
class Expr:
    """Base class; every expression has a result ``width`` in bits."""

    width: int


@dataclass(frozen=True)
class Const(Expr):
    """Constant with an unsigned ``value`` truncated to ``width`` bits."""

    value: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "value", truncate(self.value, self.width))


@dataclass(frozen=True)
class Ref(Expr):
    """Reference to a flat signal by name."""

    name: str = ""


@dataclass(frozen=True)
class Unop(Expr):
    """Unary operation; reduction operators always have ``width == 1``."""

    op: str = UnaryOp.NOT
    operand: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Binop(Expr):
    """Binary operation; comparison/logical operators have ``width == 1``."""

    op: str = BinaryOp.AND
    left: Expr = None  # type: ignore[assignment]
    right: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Mux(Expr):
    """Two-way multiplexer selected by a 1-bit condition."""

    cond: Expr = None  # type: ignore[assignment]
    then: Expr = None  # type: ignore[assignment]
    otherwise: Expr = None  # type: ignore[assignment]


@dataclass(frozen=True)
class Concat(Expr):
    """Concatenation; ``parts`` are stored MSB-first (Verilog order)."""

    parts: Tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Slice(Expr):
    """``width`` bits of ``base`` starting at bit ``lsb`` (little-endian)."""

    base: Expr = None  # type: ignore[assignment]
    lsb: int = 0


@dataclass(frozen=True)
class Lut(Expr):
    """Read-only lookup table (inferred ROM): ``table[index]``.

    ``table`` has exactly ``2 ** index.width`` entries of ``width`` bits each.
    The elaborator infers this node from fully constant ``case`` statements
    (e.g. the AES S-box), the simulator evaluates it as a direct lookup and
    the bit-blaster lowers it through a shared decoder tree instead of a long
    multiplexer chain.
    """

    index: Expr = None  # type: ignore[assignment]
    table: Tuple[int, ...] = ()


# --------------------------------------------------------------------------- #
# Construction helpers
# --------------------------------------------------------------------------- #


def const(value: int, width: int) -> Const:
    return Const(width=width, value=value)


def ref(name: str, width: int) -> Ref:
    return Ref(width=width, name=name)


def mux(cond: Expr, then: Expr, otherwise: Expr) -> Mux:
    width = max(then.width, otherwise.width)
    return Mux(width=width, cond=cond, then=then, otherwise=otherwise)


def concat(parts) -> Expr:
    parts = tuple(parts)
    if len(parts) == 1:
        return parts[0]
    return Concat(width=sum(part.width for part in parts), parts=parts)


def slice_expr(base: Expr, lsb: int, width: int) -> Expr:
    if lsb == 0 and width == base.width:
        return base
    return Slice(width=width, base=base, lsb=lsb)


def insert_bits(base: Expr, lsb: int, value: Expr) -> Expr:
    """Return ``base`` with ``value.width`` bits replaced starting at ``lsb``.

    Used for part-select assignments: the untouched bits keep their old value.
    """
    total = base.width
    width = value.width
    if lsb == 0 and width == total:
        return value
    parts = []
    if lsb + width < total:
        parts.append(slice_expr(base, lsb + width, total - lsb - width))
    parts.append(value)
    if lsb > 0:
        parts.append(slice_expr(base, 0, lsb))
    return concat(parts)


def reduce_or(operand: Expr) -> Expr:
    if operand.width == 1:
        return operand
    return Unop(width=1, op=UnaryOp.RED_OR, operand=operand)


def logical_not(operand: Expr) -> Expr:
    return Unop(width=1, op=UnaryOp.LOG_NOT, operand=operand)


def equals(left: Expr, right: Expr) -> Expr:
    return Binop(width=1, op=BinaryOp.EQ, left=left, right=right)


# --------------------------------------------------------------------------- #
# Traversal and analysis
# --------------------------------------------------------------------------- #


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and all sub-expressions (pre-order)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, Unop):
            stack.append(node.operand)
        elif isinstance(node, Binop):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, Mux):
            stack.extend((node.cond, node.then, node.otherwise))
        elif isinstance(node, Concat):
            stack.extend(node.parts)
        elif isinstance(node, Slice):
            stack.append(node.base)
        elif isinstance(node, Lut):
            stack.append(node.index)


def support(expr: Expr) -> Set[str]:
    """Names of all signals the expression combinationally depends on."""
    return {node.name for node in walk(expr) if isinstance(node, Ref)}


def substitute(expr: Expr, mapping: Dict[str, Expr]) -> Expr:
    """Replace every :class:`Ref` whose name is in ``mapping`` by its image."""
    cache: Dict[int, Expr] = {}

    def rewrite(node: Expr) -> Expr:
        key = id(node)
        if key in cache:
            return cache[key]
        if isinstance(node, Ref):
            result = mapping.get(node.name, node)
        elif isinstance(node, Unop):
            result = Unop(width=node.width, op=node.op, operand=rewrite(node.operand))
        elif isinstance(node, Binop):
            result = Binop(width=node.width, op=node.op, left=rewrite(node.left), right=rewrite(node.right))
        elif isinstance(node, Mux):
            result = Mux(width=node.width, cond=rewrite(node.cond), then=rewrite(node.then), otherwise=rewrite(node.otherwise))
        elif isinstance(node, Concat):
            result = Concat(width=node.width, parts=tuple(rewrite(part) for part in node.parts))
        elif isinstance(node, Slice):
            result = Slice(width=node.width, base=rewrite(node.base), lsb=node.lsb)
        elif isinstance(node, Lut):
            result = Lut(width=node.width, index=rewrite(node.index), table=node.table)
        else:
            result = node
        cache[key] = result
        return result

    return rewrite(expr)


# --------------------------------------------------------------------------- #
# Concrete evaluation (shared by the simulator and CEX replay)
# --------------------------------------------------------------------------- #


def evaluate(expr: Expr, lookup: Callable[[str], int]) -> int:
    """Evaluate ``expr`` over concrete signal values provided by ``lookup``."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Ref):
        return truncate(lookup(expr.name), expr.width)
    if isinstance(expr, Unop):
        return _eval_unop(expr, lookup)
    if isinstance(expr, Binop):
        return _eval_binop(expr, lookup)
    if isinstance(expr, Mux):
        condition = evaluate(expr.cond, lookup) & 1
        chosen = expr.then if condition else expr.otherwise
        return truncate(evaluate(chosen, lookup), expr.width)
    if isinstance(expr, Concat):
        value = 0
        for part in expr.parts:  # MSB-first
            value = (value << part.width) | evaluate(part, lookup)
        return truncate(value, expr.width)
    if isinstance(expr, Slice):
        return (evaluate(expr.base, lookup) >> expr.lsb) & mask(expr.width)
    if isinstance(expr, Lut):
        index = evaluate(expr.index, lookup)
        if index >= len(expr.table):
            return 0
        return truncate(expr.table[index], expr.width)
    raise TypeError(f"cannot evaluate expression node {type(expr).__name__}")


def _eval_unop(expr: Unop, lookup: Callable[[str], int]) -> int:
    operand = evaluate(expr.operand, lookup)
    operand_width = expr.operand.width
    if expr.op == UnaryOp.NOT:
        return (~operand) & mask(expr.width)
    if expr.op == UnaryOp.NEG:
        return (-operand) & mask(expr.width)
    if expr.op == UnaryOp.RED_AND:
        return 1 if operand == mask(operand_width) else 0
    if expr.op == UnaryOp.RED_OR:
        return 1 if operand != 0 else 0
    if expr.op == UnaryOp.RED_XOR:
        return bin(operand).count("1") & 1
    if expr.op == UnaryOp.LOG_NOT:
        return 0 if operand != 0 else 1
    raise ValueError(f"unknown unary operator {expr.op!r}")


def _eval_binop(expr: Binop, lookup: Callable[[str], int]) -> int:
    left = evaluate(expr.left, lookup)
    right = evaluate(expr.right, lookup)
    op = expr.op
    result_mask = mask(expr.width)
    if op == BinaryOp.AND:
        return (left & right) & result_mask
    if op == BinaryOp.OR:
        return (left | right) & result_mask
    if op == BinaryOp.XOR:
        return (left ^ right) & result_mask
    if op == BinaryOp.ADD:
        return (left + right) & result_mask
    if op == BinaryOp.SUB:
        return (left - right) & result_mask
    if op == BinaryOp.MUL:
        return (left * right) & result_mask
    if op == BinaryOp.MOD:
        return (left % right) & result_mask if right != 0 else 0
    if op == BinaryOp.EQ:
        return 1 if left == right else 0
    if op == BinaryOp.NE:
        return 1 if left != right else 0
    if op == BinaryOp.ULT:
        return 1 if left < right else 0
    if op == BinaryOp.ULE:
        return 1 if left <= right else 0
    if op == BinaryOp.UGT:
        return 1 if left > right else 0
    if op == BinaryOp.UGE:
        return 1 if left >= right else 0
    if op == BinaryOp.SHL:
        return (left << right) & result_mask if right < expr.width + 64 else 0
    if op == BinaryOp.LSHR:
        return (left >> right) & result_mask
    if op == BinaryOp.LOG_AND:
        return 1 if (left != 0 and right != 0) else 0
    if op == BinaryOp.LOG_OR:
        return 1 if (left != 0 or right != 0) else 0
    raise ValueError(f"unknown binary operator {op!r}")


def is_boolean_op(expr: Expr) -> bool:
    """True when the node semantically produces a single-bit boolean."""
    if isinstance(expr, Unop):
        return expr.op in _REDUCTION_OPS
    if isinstance(expr, Binop):
        return expr.op in _BOOLEAN_BINOPS
    return False
