"""Word-level RTL intermediate representation and structural analyses.

The IR produced by :func:`repro.rtl.elaborate.elaborate` is a *flat* module:
hierarchy is dissolved, every signal has an explicit width, combinational
logic is a mapping ``signal -> expression`` and every register carries a
single next-state expression.  All downstream engines (simulator, bit-blaster,
IPC, fanout analysis) operate on this representation.
"""

from repro.rtl import exprs
from repro.rtl.ir import Module, Register
from repro.rtl.elaborate import elaborate, elaborate_source
from repro.rtl.netlist import DependencyGraph
from repro.rtl.fanout import FanoutAnalysis, get_fanout, compute_fanout_classes

__all__ = [
    "exprs",
    "Module",
    "Register",
    "elaborate",
    "elaborate_source",
    "DependencyGraph",
    "FanoutAnalysis",
    "get_fanout",
    "compute_fanout_classes",
]
