"""repro — golden-free formal hardware-Trojan detection for non-interfering accelerators.

This library reproduces the method of *"A Golden-Free Formal Method for
Trojan Detection in Non-Interfering Accelerators"* (DATE 2024): a 2-safety
interval-property-checking flow that exhaustively detects sequential hardware
Trojans at RTL without a golden model or functional specification.

Typical usage (the session API of :mod:`repro.api`)::

    from repro import Design, DetectionSession

    design = Design.from_source(verilog_text, top="my_accelerator")
    report = DetectionSession(design).run()
    print(report.summary())

The one-shot :func:`detect_trojans` helper is still exported as a deprecated
shim on top of :class:`repro.api.DetectionSession`.

The package also ships everything the reproduction needs: a Verilog-subset
frontend, an RTL IR with structural fanout analysis, an AIG + CDCL SAT
engine, an IPC property checker, regenerated Trust-Hub-style benchmarks
(:mod:`repro.trusthub`) and the baseline techniques used for comparison
(:mod:`repro.baselines`).
"""

from repro._version import __version__
from repro.core import (
    DetectionConfig,
    DetectionReport,
    TrojanDetectionFlow,
    Verdict,
    Waiver,
    detect_trojans,
)
from repro.errors import ReproError
from repro.rtl import Module, elaborate, elaborate_source
from repro.api import BatchReport, BatchSession, Design, DetectionSession

__all__ = [
    "__version__",
    "ReproError",
    "Module",
    "elaborate",
    "elaborate_source",
    "Design",
    "DetectionSession",
    "BatchSession",
    "BatchReport",
    "detect_trojans",
    "TrojanDetectionFlow",
    "DetectionConfig",
    "DetectionReport",
    "Verdict",
    "Waiver",
]
