"""repro — golden-free formal hardware-Trojan detection for non-interfering accelerators.

This library reproduces the method of *"A Golden-Free Formal Method for
Trojan Detection in Non-Interfering Accelerators"* (DATE 2024): a 2-safety
interval-property-checking flow that exhaustively detects sequential hardware
Trojans at RTL without a golden model or functional specification.

Typical usage::

    from repro import elaborate_source, detect_trojans

    module = elaborate_source(verilog_text, top="my_accelerator")
    report = detect_trojans(module)
    print(report.summary())

The package also ships everything the reproduction needs: a Verilog-subset
frontend, an RTL IR with structural fanout analysis, an AIG + CDCL SAT
engine, an IPC property checker, regenerated Trust-Hub-style benchmarks
(:mod:`repro.trusthub`) and the baseline techniques used for comparison
(:mod:`repro.baselines`).
"""

from repro._version import __version__
from repro.core import (
    DetectionConfig,
    DetectionReport,
    TrojanDetectionFlow,
    Verdict,
    Waiver,
    detect_trojans,
)
from repro.errors import ReproError
from repro.rtl import Module, elaborate, elaborate_source

__all__ = [
    "__version__",
    "ReproError",
    "Module",
    "elaborate",
    "elaborate_source",
    "detect_trojans",
    "TrojanDetectionFlow",
    "DetectionConfig",
    "DetectionReport",
    "Verdict",
    "Waiver",
]
