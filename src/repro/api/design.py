"""The :class:`Design` loader: one object per design under audit.

A ``Design`` bundles everything a session needs — the elaborated module, the
structural fanout analysis, and (for bundled benchmarks) the recommended
inputs and waivers — behind three uniform constructors::

    Design.from_source(verilog_text, top="my_accel")
    Design.from_file("rtl/my_accel.v", top="my_accel")
    Design.from_benchmark("AES-T1400")

All loaders validate eagerly and raise :class:`repro.errors.ReproError`
subclasses with actionable messages, so a bad design never reaches the
middle of a verification run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import DetectionConfig, Waiver, validate_input_names
from repro.errors import ConfigError, DesignError
from repro.rtl.elaborate import elaborate_source
from repro.rtl.fanout import FanoutAnalysis, compute_fanout_classes
from repro.rtl.ir import Module


def parse_input_list(text: str) -> List[str]:
    """Parse a comma-separated signal list (the CLI's ``--inputs`` syntax).

    Whitespace around names is stripped; empty entries and duplicates raise a
    :class:`repro.errors.ConfigError` instead of being passed through to
    elaboration, where they would fail with a confusing unknown-signal error.
    """
    names = [token.strip() for token in text.split(",")]
    if not any(names):
        raise ConfigError("input list must name at least one signal")
    if "" in names:
        raise ConfigError(
            f"empty signal name in input list {text!r} "
            "(check for stray or trailing commas)"
        )
    validate_input_names(names, source=text)
    return names


class Design:
    """One design under audit: module, fanout analysis, and audit defaults."""

    def __init__(
        self,
        module: Module,
        name: Optional[str] = None,
        origin: str = "module",
        data_inputs: Sequence[str] = (),
        recommended_waivers: Sequence[str] = (),
        description: str = "",
        golden: Optional[Module] = None,
        golden_source: Optional[str] = None,
        golden_top: Optional[str] = None,
    ) -> None:
        self._module = module
        self._name = name or module.name
        self._origin = origin
        self._data_inputs = tuple(data_inputs)
        self._recommended_waivers = tuple(recommended_waivers)
        self._description = description
        # Golden model of the sequential detection mode: either an already
        # elaborated module, or (source, top) elaborated lazily on first use
        # so combinational audits never pay for it.
        self._golden = golden
        self._golden_source = golden_source
        self._golden_top = golden_top
        self._analyses: Dict[Tuple[str, ...], FanoutAnalysis] = {}
        self._validate()

    # ------------------------------------------------------------------ #
    # Loaders
    # ------------------------------------------------------------------ #

    @classmethod
    def from_source(
        cls,
        source: str,
        top: str,
        name: Optional[str] = None,
        golden_top: Optional[str] = None,
        golden_source: Optional[str] = None,
    ) -> "Design":
        """Elaborate Verilog ``source`` with top module ``top``.

        ``golden_top`` optionally names the golden model of the sequential
        detection mode — a module of the same source (or of
        ``golden_source``, when given), elaborated lazily on first use.
        """
        if not top:
            raise DesignError("from_source() needs the name of the top module")
        if golden_source is not None and not golden_top:
            raise DesignError(
                "from_source() got golden_source without golden_top; name the "
                "golden module to enable the sequential mode"
            )
        module = elaborate_source(source, top)
        return cls(
            module,
            name=name,
            origin="source",
            golden_source=(golden_source or source) if golden_top else None,
            golden_top=golden_top,
        )

    @classmethod
    def from_file(
        cls,
        path: str,
        top: str,
        name: Optional[str] = None,
        golden_top: Optional[str] = None,
        golden_path: Optional[str] = None,
    ) -> "Design":
        """Read and elaborate a Verilog file.

        ``golden_top`` optionally names the sequential mode's golden model,
        looked up in the same file — or in ``golden_path``, when given.
        """
        if not top:
            raise DesignError(f"from_file({path!r}) needs the name of the top module")
        if golden_path is not None and not golden_top:
            raise DesignError(
                f"from_file({path!r}) got golden_path without golden_top; name "
                f"the golden module to enable the sequential mode"
            )
        source = cls._read_verilog(path)
        golden_source: Optional[str] = None
        if golden_top:
            golden_source = cls._read_verilog(golden_path) if golden_path else source
        module = elaborate_source(source, top)
        return cls(
            module,
            name=name or top,
            origin=f"file:{path}",
            golden_source=golden_source,
            golden_top=golden_top,
        )

    @classmethod
    def from_benchmark(cls, name: str) -> "Design":
        """Load one of the bundled Trust-Hub-style benchmarks by name."""
        from repro.trusthub import load_design

        bench = load_design(name)  # raises DesignError with the available names
        return cls(
            bench.elaborate(),
            name=bench.name,
            origin="benchmark",
            data_inputs=bench.data_inputs,
            recommended_waivers=bench.recommended_waivers,
            description=bench.description,
            golden_source=bench.source if bench.golden_top else None,
            golden_top=bench.golden_top,
        )

    @classmethod
    def from_module(
        cls,
        module: Module,
        name: Optional[str] = None,
        golden: Optional[Module] = None,
    ) -> "Design":
        """Wrap an already-elaborated :class:`repro.rtl.ir.Module`."""
        return cls(module, name=name, golden=golden)

    @staticmethod
    def _read_verilog(path: str) -> str:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return handle.read()
        except OSError as error:
            raise DesignError(f"cannot read Verilog file {path!r}: {error}") from error

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def name(self) -> str:
        return self._name

    @property
    def module(self) -> Module:
        return self._module

    @property
    def origin(self) -> str:
        """Where the design came from: ``source``, ``file:<path>``, ``benchmark``, ``module``."""
        return self._origin

    @property
    def data_inputs(self) -> Tuple[str, ...]:
        """The inputs an audit should trace (benchmark metadata or module default)."""
        return self._data_inputs or tuple(self._module.data_inputs())

    @property
    def recommended_waivers(self) -> Tuple[str, ...]:
        return self._recommended_waivers

    @property
    def description(self) -> str:
        return self._description

    def golden_module(self) -> Optional[Module]:
        """The sequential mode's golden model, elaborated lazily (or None)."""
        if self._golden is None and self._golden_top:
            self._golden = elaborate_source(self._golden_source, self._golden_top)
        return self._golden

    def analysis(self, inputs: Optional[Sequence[str]] = None) -> FanoutAnalysis:
        """Structural fanout analysis for ``inputs`` (cached per input set)."""
        selected = tuple(inputs) if inputs is not None else self.data_inputs
        self._check_inputs(selected)
        if selected not in self._analyses:
            self._analyses[selected] = compute_fanout_classes(self._module, inputs=selected)
        return self._analyses[selected]

    def default_config(self, include_recommended_waivers: bool = True, **overrides) -> DetectionConfig:
        """A :class:`DetectionConfig` seeded with this design's audit defaults."""
        settings = {
            "inputs": list(self.data_inputs),
            "waivers": [
                Waiver(signal=signal, reason=f"recommended for {self._name}")
                for signal in (self._recommended_waivers if include_recommended_waivers else ())
            ],
        }
        settings.update(overrides)
        return DetectionConfig(**settings)

    def describe(self) -> str:
        """One-paragraph description for interactive use."""
        module = self._module
        lines = [
            f"design {self._name} (top module {module.name}, origin {self._origin})",
            f"  inputs: {', '.join(module.inputs) or '-'}",
            f"  data inputs traced: {', '.join(self.data_inputs) or '-'}",
            f"  registers: {len(module.registers)}, outputs: {len(module.outputs)}",
        ]
        if self._recommended_waivers:
            lines.append(f"  recommended waivers: {', '.join(self._recommended_waivers)}")
        if self._description:
            lines.append(f"  {self._description}")
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Design({self._name!r}, origin={self._origin!r})"

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #

    def _validate(self) -> None:
        # Deliberately no every-design-must-have-data-inputs check: a module
        # whose inputs are all classified as clock/reset still runs (the
        # coverage check reports everything uncovered), and the caller's
        # config may name the traced inputs explicitly.  Only names that can
        # never resolve are rejected here.
        self._check_inputs(self._data_inputs)
        if self._golden_top and self._golden is None and self._golden_source is None:
            # Fail at construction with an actionable message; otherwise
            # golden_module() would hand elaborate_source(None, ...) to the
            # lexer mid-run and die with a bare TypeError.
            raise DesignError(
                f"design {self._name!r} names golden top {self._golden_top!r} "
                f"but has no golden source to elaborate it from"
            )

    def _check_inputs(self, inputs: Sequence[str]) -> None:
        unknown = [name for name in inputs if name not in self._module.inputs]
        if unknown:
            raise DesignError(
                f"design {self._name!r} has no input(s) {', '.join(sorted(unknown))}; "
                f"available inputs: {', '.join(self._module.inputs)}"
            )
