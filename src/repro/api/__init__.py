"""repro.api — the session-oriented public API of the library.

This package is the supported entry point for programmatic use::

    from repro.api import Design, DetectionSession

    design = Design.from_benchmark("AES-T1400")
    session = DetectionSession(design)

    # Blocking:
    report = session.run()

    # ... or streaming — react per property class while SAT is running:
    from repro.api.events import CexFound, RunFinished
    for event in session.iter_results():
        if isinstance(event, CexFound) and not event.auto_resolvable:
            print(f"{event.label}: counterexample found")

    print(session.report.to_json())

Batch audits over many designs share one configuration template::

    from repro.api import BatchSession

    batch = BatchSession(["AES-HT-FREE", "RS232-HT-FREE"])
    print(batch.run().summary())

The one-shot :func:`repro.detect_trojans` helper remains available as a
deprecated shim on top of :class:`DetectionSession`.
"""

from repro.api.design import Design, parse_input_list
from repro.api.events import (
    CexFound,
    CexWaived,
    ClassEvent,
    ClassProven,
    ClassSimFalsified,
    ClassSplit,
    ConeSimplified,
    EventBus,
    PropertyScheduled,
    RunEvent,
    RunFinished,
    RunStarted,
    SolverProgress,
    StructurallyDischarged,
    WorkerLost,
    class_label,
    event_from_dict,
)
from repro.api.session import BatchReport, BatchSession, DetectionSession
from repro.core.config import DetectionConfig, Waiver
from repro.core.report import SCHEMA_VERSION, DetectionReport, Verdict

__all__ = [
    # loaders & sessions
    "Design",
    "DetectionSession",
    "BatchSession",
    "BatchReport",
    "parse_input_list",
    # configuration & results
    "DetectionConfig",
    "Waiver",
    "DetectionReport",
    "Verdict",
    "SCHEMA_VERSION",
    # events
    "RunEvent",
    "ClassEvent",
    "RunStarted",
    "PropertyScheduled",
    "ConeSimplified",
    "ClassSimFalsified",
    "ClassSplit",
    "SolverProgress",
    "StructurallyDischarged",
    "ClassProven",
    "CexFound",
    "CexWaived",
    "WorkerLost",
    "RunFinished",
    "EventBus",
    "class_label",
    "event_from_dict",
]
