"""Detection sessions: lifecycle owners of one (or many) audit runs.

``DetectionSession`` owns one :class:`repro.core.flow.TrojanDetectionFlow`
(and therefore one :class:`repro.ipc.engine.IpcEngine` with its persistent
solver context) per design.  Results can be consumed three ways:

* ``run()`` — blocking, returns the final :class:`DetectionReport`;
* ``iter_results()`` — a lazy generator of typed run events; the SAT phase
  executes *as the caller iterates*, so progress bars, telemetry, and early
  aborts work while properties are still being settled;
* ``subscribe(callback)`` — observer callbacks on the session's event bus,
  fired for both ``run()`` and ``iter_results()`` consumption.

``BatchSession`` audits a sequence of designs under one shared
:class:`DetectionConfig` and aggregates a :class:`BatchReport` with
per-design reports plus cumulative solver-reuse statistics.
"""

from __future__ import annotations

import json
import time as _time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Type, Union

from repro.api.design import Design
from repro.core.config import DetectionConfig, Waiver
from repro.core.events import EventBus, RunEvent, RunFinished
from repro.core.flow import TrojanDetectionFlow, open_result_cache
from repro.core.report import (
    SCHEMA_VERSION,
    DetectionReport,
    check_schema_version,
    execution_summary_line,
)
from repro.errors import ConfigError, ReproError
from repro.exec.executor import create_executor
from repro.exec.scheduler import DesignPlan, run_plans
from repro.obs.progress import progress_sink
from repro.rtl.ir import Module


def _golden_for(design: Design, config: DetectionConfig) -> Optional[Module]:
    """The design's golden model when the config runs sequentially (or None).

    Raising here — before any flow or plan is built — turns "sequential mode
    on a design with no golden model" into an immediate, actionable
    configuration error instead of a mid-run failure.
    """
    if config.mode != "sequential":
        return None
    golden = design.golden_module()
    if golden is None:
        raise ConfigError(
            f"design {design.name!r} has no golden model for the sequential "
            f"mode; load it with a golden top (Design.from_file(..., "
            f"golden_top=...), CLI --golden-top) or pick a benchmark with a "
            f"catalogued golden design"
        )
    return golden


class DetectionSession:
    """One audit of one design, with streaming results and run events."""

    def __init__(
        self,
        design: Union[Design, Module],
        config: Optional[DetectionConfig] = None,
    ) -> None:
        if isinstance(design, Module):
            design = Design.from_module(design)
        self._design = design
        self._config = config if config is not None else design.default_config()
        self._bus = EventBus()
        self._flow: Optional[TrojanDetectionFlow] = None
        self._report: Optional[DetectionReport] = None

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def design(self) -> Design:
        return self._design

    @property
    def config(self) -> DetectionConfig:
        return self._config

    @property
    def flow(self) -> TrojanDetectionFlow:
        """The underlying scheduler (created lazily, then kept warm)."""
        if self._flow is None:
            sequential = self._config.mode == "sequential"
            # Reuse the design's cached fanout analysis when the config traces
            # an explicit input set; with inputs=None the flow's own default
            # (the module's data inputs) applies, which may differ from the
            # design's benchmark metadata.  Sequential runs need neither the
            # analysis nor the partition — they need the golden model.
            analysis = (
                self._design.analysis(self._config.inputs)
                if self._config.inputs is not None and not sequential
                else None
            )
            self._flow = TrojanDetectionFlow(
                self._design.module,
                self._config,
                design_name=self._design.name,
                analysis=analysis,
                golden=_golden_for(self._design, self._config),
            )
        return self._flow

    @property
    def report(self) -> Optional[DetectionReport]:
        """The report of the most recent completed run, if any."""
        return self._report

    # ------------------------------------------------------------------ #
    # Event surface
    # ------------------------------------------------------------------ #

    def subscribe(
        self,
        callback: Callable[[RunEvent], None],
        event_type: Optional[Type[RunEvent]] = None,
        safe: bool = False,
    ) -> Callable[[], None]:
        """Observe run events; returns an unsubscribe callable.

        ``safe=True`` isolates the observer from the run: its exceptions are
        logged and swallowed instead of aborting the audit — the right mode
        for progress displays and streaming clients whose failure must never
        change a verdict.
        """
        return self._bus.subscribe(callback, event_type, safe=safe)

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #

    def iter_results(self) -> Iterator[RunEvent]:
        """Run the audit, yielding each typed event as the class settles.

        Events arrive in class order while the structural and SAT phases are
        executing; abandoning the iterator aborts the remaining work.  Every
        event is also dispatched to the session's subscribers.  After the
        final :class:`RunFinished` event, :attr:`report` holds the run's
        report.
        """
        # Solver heartbeats (SolverProgress) are transient: they go to the
        # bus for live observers but never into the merged class-ordered
        # stream, so the yielded events stay deterministic.
        with progress_sink(self._bus.emit):
            for event in self.flow.events():
                # Store the report before dispatching, so a RunFinished
                # subscriber reading session.report sees the finished run.
                if isinstance(event, RunFinished):
                    self._report = event.report
                self._bus.emit(event)
                yield event

    def run(self) -> DetectionReport:
        """Execute the complete audit and return the final report."""
        for _ in self.iter_results():
            pass
        assert self._report is not None
        return self._report

    # Sessions are usable as context managers for symmetry with other
    # lifecycle-owning APIs; there is no external state to release today.
    def __enter__(self) -> "DetectionSession":
        return self

    def __exit__(self, *exc_info) -> None:
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DetectionSession({self._design.name!r})"


@dataclass
class BatchReport:
    """Aggregated result of a :class:`BatchSession` run.

    ``reports`` are always kept in the order the designs were queued, even
    when the execution subsystem settled them out of order on a worker
    pool; every aggregate below is a *sum of per-design snapshots*, so the
    totals are independent of completion order.
    """

    reports: List[DetectionReport] = field(default_factory=list)
    total_runtime_seconds: float = 0.0
    #: Worker-process count the batch executed on (1 = classic serial).
    workers: int = 1

    @property
    def designs_audited(self) -> int:
        return len(self.reports)

    @property
    def all_secure(self) -> bool:
        return all(report.is_secure for report in self.reports)

    def flagged_designs(self) -> List[str]:
        """Names of designs the batch did not prove secure."""
        return [report.design for report in self.reports if not report.is_secure]

    def verdict_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for report in self.reports:
            counts[report.verdict.value] = counts.get(report.verdict.value, 0) + 1
        return counts

    def solver_stats(self) -> Dict[str, int]:
        """Cumulative solver-reuse statistics across every design's context.

        Sums the per-design snapshots (each already aggregated over that
        design's workers by the scheduler); the result is therefore the
        same no matter how runs interleaved on the pool.
        """
        totals = {"solver_calls": 0, "conflicts": 0, "clauses_encoded": 0,
                  "clauses_new": 0, "clauses_reused": 0}
        for report in self.reports:
            for key, value in report.solver_stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def cache_stats(self) -> Dict[str, int]:
        """Cumulative result-cache hits/misses across every design."""
        return {
            "cache_hits": sum(report.cache_hits for report in self.reports),
            "cache_misses": sum(report.cache_misses for report in self.reports),
        }

    def report_for(self, design: str) -> DetectionReport:
        for report in self.reports:
            if report.design == design:
                return report
        raise ReproError(f"batch report has no design {design!r}")

    # ------------------------------------------------------------------ #
    # Serialization (shares the report schema version)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "total_runtime_seconds": self.total_runtime_seconds,
            "execution": {"workers": self.workers, **self.cache_stats()},
            "reports": [report.to_dict() for report in self.reports],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "BatchReport":
        if not isinstance(data, dict):
            raise ReproError(
                f"serialized batch report must be a dict, got {type(data).__name__}"
            )
        check_schema_version(data, what="batch report")
        return cls(
            reports=[DetectionReport.from_dict(entry) for entry in data.get("reports", [])],
            total_runtime_seconds=data.get("total_runtime_seconds", 0.0),
            workers=data.get("execution", {}).get("workers", 1),
        )

    @classmethod
    def from_json(cls, text: str) -> "BatchReport":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReproError(f"batch report is not valid JSON: {error}") from error
        return cls.from_dict(data)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def summary(self) -> str:
        counts = ", ".join(
            f"{count} {verdict}" for verdict, count in sorted(self.verdict_counts().items())
        ) or "no designs audited"
        lines = [
            f"batch audit: {self.designs_audited} design(s) in "
            f"{self.total_runtime_seconds:.2f} s — {counts}"
        ]
        for report in self.reports:
            marker = "ok " if report.is_secure else "!! "
            detected = f" ({report.detected_by})" if report.detected_by else ""
            lines.append(
                f"  {marker}{report.design:20s} {report.verdict.value}{detected}"
                f"  [{report.properties_checked()} properties,"
                f" {report.total_runtime_seconds:.2f} s]"
            )
        stats = self.solver_stats()
        if stats["solver_calls"]:
            lines.append(
                f"  cumulative solver work: {stats['solver_calls']} calls,"
                f" {stats['clauses_new']} new / {stats['clauses_reused']} reused clauses,"
                f" {stats['conflicts']} conflicts"
            )
        cache = self.cache_stats()
        execution_line = execution_summary_line(
            self.workers, cache["cache_hits"], cache["cache_misses"]
        )
        if execution_line is not None:
            lines.append(execution_line)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.summary()


class BatchSession:
    """Audit many designs in one process under one shared configuration.

    Designs are accepted as :class:`Design` objects, raw modules, or bundled
    benchmark names.  The shared ``config`` acts as a template: for every
    design the session fills in the design's own traced inputs (when the
    template leaves ``inputs`` unset) and appends the design's recommended
    waivers (unless ``use_recommended_waivers`` is off), mirroring how
    settings with priorities compose in crawler frameworks.
    """

    def __init__(
        self,
        designs: Iterable[Union[Design, Module, str]] = (),
        config: Optional[DetectionConfig] = None,
        use_recommended_waivers: bool = True,
    ) -> None:
        self._designs: List[Design] = []
        self._config = config
        self._use_recommended_waivers = use_recommended_waivers
        self._bus = EventBus()
        self._report: Optional[BatchReport] = None
        for design in designs:
            self.add(design)

    @property
    def designs(self) -> Tuple[Design, ...]:
        return tuple(self._designs)

    @property
    def report(self) -> Optional[BatchReport]:
        """The batch report of the most recent completed run, if any."""
        return self._report

    def add(self, design: Union[Design, Module, str]) -> Design:
        """Queue a design (benchmark name, module, or Design) for the audit."""
        if isinstance(design, str):
            design = Design.from_benchmark(design)
        elif isinstance(design, Module):
            design = Design.from_module(design)
        self._designs.append(design)
        return design

    def subscribe(
        self,
        callback: Callable[[RunEvent], None],
        event_type: Optional[Type[RunEvent]] = None,
        safe: bool = False,
    ) -> Callable[[], None]:
        """Observe the run events of every design in the batch.

        ``safe=True`` logs-and-continues on observer exceptions instead of
        aborting the batch (see :meth:`DetectionSession.subscribe`).
        """
        return self._bus.subscribe(callback, event_type, safe=safe)

    def config_for(self, design: Design) -> DetectionConfig:
        """The effective configuration the batch applies to ``design``."""
        if self._config is None:
            return design.default_config(
                include_recommended_waivers=self._use_recommended_waivers
            )
        config = self._config
        if config.inputs is None and design.data_inputs:
            config = replace(config, inputs=list(design.data_inputs))
        if self._use_recommended_waivers and design.recommended_waivers:
            waived = set(config.waived_signals())
            extra = [
                Waiver(signal=signal, reason=f"recommended for {design.name}")
                for signal in design.recommended_waivers
                if signal not in waived
            ]
            if extra:
                config = replace(config, waivers=list(config.waivers) + extra)
        return config

    def iter_reports(self) -> Iterator[Tuple[Design, DetectionReport]]:
        """Audit the queued designs one by one, yielding each design's report.

        Lazy like :meth:`DetectionSession.iter_results`: design ``n+1`` is
        not elaborated into a flow before design ``n``'s report has been
        consumed, so a caller can stop a long batch early.  Always serial
        within the calling process; :meth:`run` is the surface that shards
        designs over a worker pool when the config asks for ``jobs > 1``.
        """
        for design in self._designs:
            session = DetectionSession(design, config=self.config_for(design))
            session.subscribe(self._bus.emit)
            yield design, session.run()

    def _run_sharded(self, pairs, jobs: int) -> Tuple[List[DetectionReport], int]:
        """Audit all queued designs over one shared worker pool.

        Every design's property shards go into a single work-stealing queue,
        so workers move freely between designs: a design with one huge SAT
        obligation no longer serializes the whole batch.  Events merge back
        deterministically in (queue order, class order); reports come back
        in queue order regardless of which design finished first.
        """
        plans = []
        for position, (design, config) in enumerate(pairs):
            sequential = config.mode == "sequential"
            analysis = (
                design.analysis(config.inputs)
                if config.inputs is not None and not sequential
                else None
            )
            plans.append(
                DesignPlan.build(
                    key=f"{position}:{design.name}",
                    name=design.name,
                    module=design.module,
                    config=config,
                    analysis=analysis,
                    cache=open_result_cache(config),
                    golden=_golden_for(design, config),
                )
            )
        executor = create_executor(
            jobs,
            {plan.key: plan.work_unit for plan in plans},
            task_retries=plans[0].config.task_retries if plans else 2,
        )
        reports: List[DetectionReport] = []
        try:
            with progress_sink(self._bus.emit):
                for event in run_plans(plans, executor):
                    self._bus.emit(event)
                    if isinstance(event, RunFinished):
                        reports.append(event.report)
        finally:
            executor.close()
        # Report the parallelism the runs actually saw, not the requested
        # jobs: the factory falls back to a serial executor on fork-less
        # platforms and a pool never forks more workers than it has shards,
        # so the batch must agree with its per-design reports.
        return reports, max((report.workers for report in reports), default=1)

    def run(self) -> BatchReport:
        """Audit every queued design and return the aggregated batch report."""
        started = _time.perf_counter()
        pairs = [(design, self.config_for(design)) for design in self._designs]
        jobs = max((config.jobs for _, config in pairs), default=1)
        batch = BatchReport()
        if jobs > 1:
            reports, batch.workers = self._run_sharded(pairs, jobs)
            batch.reports.extend(reports)
        else:
            for _, report in self.iter_reports():
                batch.reports.append(report)
        batch.total_runtime_seconds = _time.perf_counter() - started
        self._report = batch
        return batch

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BatchSession({[design.name for design in self._designs]!r})"
