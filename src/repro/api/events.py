"""Public re-export of the typed run events and the event bus.

The canonical definitions live in :mod:`repro.core.events` (so the scheduler
can emit them without importing the API layer); this module is the supported
import path for API consumers::

    from repro.api.events import CexFound, PropertyScheduled, RunFinished
"""

from repro.core.events import (
    CexFound,
    CexWaived,
    ClassEvent,
    ClassProven,
    ClassSimFalsified,
    ClassSplit,
    ConeSimplified,
    EventBus,
    PropertyScheduled,
    RunEvent,
    RunFinished,
    RunStarted,
    SolverProgress,
    StructurallyDischarged,
    WIRE_EVENT_TYPES,
    WorkerLost,
    class_label,
    event_from_dict,
)

__all__ = [
    "RunEvent",
    "ClassEvent",
    "RunStarted",
    "PropertyScheduled",
    "ConeSimplified",
    "ClassSimFalsified",
    "ClassSplit",
    "SolverProgress",
    "StructurallyDischarged",
    "ClassProven",
    "CexFound",
    "CexWaived",
    "WorkerLost",
    "RunFinished",
    "EventBus",
    "WIRE_EVENT_TYPES",
    "class_label",
    "event_from_dict",
]
