"""Per-design work contexts: where property classes actually get settled.

This module is the compute kernel of the execution subsystem.  A
:class:`DesignWorkContext` owns everything one design needs to settle any of
its property classes — the elaborated module, the fanout analysis, the
dependency graph, and (crucially) one persistent :class:`IpcEngine` whose
shared AIG and incremental solver context survive across every class the
context settles.  Executors keep one context per design *per worker*, so
clause reuse survives inside a worker even when the scheduler shards a
design's classes across many workers.

:meth:`DesignWorkContext.settle_class` is the single-class port of the
scheduler loop that used to live inline in :mod:`repro.core.flow`: build the
property, try the cheap structural discharge, then run the SAT settle loop
with spurious-counterexample resolution (Sec. V-B scenario 1).  It returns a
:class:`repro.exec.records.ClassResult` — events and outcome bundled — which
is equally consumable in-process (serial executor) and across a process
boundary (record round-trip).
"""

from __future__ import annotations

import time as _time
from contextlib import nullcontext as _nullcontext
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.aig.simvec import DEFAULT_PATTERNS
from repro.core.config import DetectionConfig
from repro.core.falsealarm import diagnose_counterexample
from repro.core.properties import build_fanout_property, build_init_property
from repro.core.report import PropertyOutcome, outcome_to_dict
from repro.core.unroll import SequentialUnroller, sequential_output_classes
from repro.errors import CheckDeadlineExceeded, ConfigError, ConflictLimitExceeded
from repro.exec.records import ClassResult, Cube, CubeVerdict, SplitResult, SpuriousRound
from repro.ipc.engine import IpcEngine, PropertyCheckResult
from repro.obs import progress as _progress
from repro.obs import trace as _trace
from repro.ipc.prop import IntervalProperty
from repro.rtl.fanout import FanoutAnalysis, compute_fanout_classes
from repro.rtl.ir import Module
from repro.rtl.netlist import DependencyGraph
from repro.sat.backend import default_backend_name


def resolved_backend_name(config: DetectionConfig) -> str:
    """The concrete backend a config will run on (``"auto"`` resolved)."""
    if config.solver_backend == "auto":
        return default_backend_name()
    return config.solver_backend


#: Preprocessing settings of the *canonical witness settle*.  Any class that
#: produced a counterexample (terminal or auto-resolved spurious rounds) is
#: re-settled on a fresh, single-use context with exactly these settings, so
#: the reported witness depends only on (module, semantic config, class
#: index) — never on worker sharding, on accumulated solver state, or on
#: whether the user ran with ``--no-simplify``.  Fixed constants rather than
#: the user's own knobs: two runs that differ only in preprocessing flags
#: must report byte-identical counterexamples.
CANONICAL_SIM_PATTERNS = DEFAULT_PATTERNS
CANONICAL_FRAIG_ROUNDS = 1
#: Inprocessing changes which satisfying assignment later checks of the
#: *same context* find (vivified clauses propagate differently), so the
#: canonical settle pins it like every other search-state knob.  The sim
#: *kernel* (``sim_backend``) is deliberately not pinned: the numpy and
#: Python kernels are bit-identical by construction, so witnesses cannot
#: depend on it.
CANONICAL_INPROCESS = True


def canonical_witness_config(config: DetectionConfig) -> DetectionConfig:
    """The config of the canonical witness settle for ``config``."""
    return replace(
        config,
        simplify=True,
        sim_patterns=CANONICAL_SIM_PATTERNS,
        fraig_rounds=CANONICAL_FRAIG_ROUNDS,
        inprocess=CANONICAL_INPROCESS,
    )


def _has_canonical_settings(config: DetectionConfig) -> bool:
    return (
        config.simplify
        and config.sim_patterns == CANONICAL_SIM_PATTERNS
        and config.fraig_rounds == CANONICAL_FRAIG_ROUNDS
        and config.inprocess == CANONICAL_INPROCESS
    )


def _clear_preprocess_telemetry(result: PropertyCheckResult) -> None:
    """Drop preprocessing telemetry a ``--no-simplify`` run must not show.

    The canonical witness settle always preprocesses (that is what makes it
    canonical); its sim/sweep counters are an implementation detail of
    witness canonicalization, not of the user's run.
    """
    result.sim_falsified = False
    result.nodes_before = 0
    result.nodes_after = 0
    result.merged_nodes = 0
    result.sweep_seconds = 0.0


@dataclass
class WorkUnit:
    """Everything a worker needs to settle classes of one design.

    Picklable by construction: pool workers receive the unit table once (via
    fork inheritance or the spawn pickle) and build their own contexts.
    ``analysis`` ships the scheduler's already-computed fanout analysis so
    workers do not recompute it per process (it is a pure function of
    (module, config.inputs), so sharing it never changes results).
    ``golden`` is the golden model of the sequential detection mode (None
    for combinational work).
    """

    key: str
    name: str
    module: Module
    config: DetectionConfig
    analysis: Optional[FanoutAnalysis] = None
    golden: Optional[Module] = None


_EMPTY_STATS = {
    "solver_calls": 0,
    "conflicts": 0,
    "restarts": 0,
    "learned_clauses": 0,
    "deleted_clauses": 0,
    "cnf_clauses": 0,
}

#: Solver-work counters accumulated across engines (the persistent one plus
#: every canonical re-settle engine); CNF size is excluded — it is a
#: snapshot of the persistent encoding, not accumulable work.
_WORK_COUNTERS = ("solver_calls", "conflicts", "restarts", "learned_clauses", "deleted_clauses")


class DesignWorkContext:
    """Settles property classes of one design with engine affinity."""

    def __init__(
        self,
        unit: WorkUnit,
        engine: Optional[IpcEngine] = None,
        analysis: Optional[FanoutAnalysis] = None,
        graph: Optional[DependencyGraph] = None,
    ) -> None:
        self._unit = unit
        self._module = unit.module
        self._config = unit.config
        self._graph = graph
        self._analysis = analysis if analysis is not None else unit.analysis
        self._engine = engine
        # Sequential-mode collaborators: one persistent unroller per context
        # (the sequential counterpart of the engine's clause-reuse affinity)
        # and the fixed output -> class mapping.
        self._unroller: Optional[SequentialUnroller] = None
        self._sequential_outputs: Optional[List[str]] = None
        # True while the context's (self-created) engine has not settled
        # anything yet: a settle on a virgin engine is already canonical.
        # Externally provided engines may carry prior state, so they are
        # conservatively treated as non-virgin.
        self._virgin = engine is None
        # Solver *work* (calls, conflicts) done on canonical re-settle
        # engines (see settle_class) — folded into stats_snapshot() so the
        # report's solver telemetry covers every engine this context used.
        # CNF size is deliberately excluded: ``cnf_clauses`` stays the
        # persistent context's encoding size, the metric the report always
        # carried.
        self._extra_stats = {counter: 0 for counter in _WORK_COUNTERS}

    # ------------------------------------------------------------------ #
    # Lazily built collaborators (a fully cached run builds none of them)
    # ------------------------------------------------------------------ #

    @property
    def unit(self) -> WorkUnit:
        return self._unit

    @property
    def graph(self) -> DependencyGraph:
        if self._graph is None:
            self._graph = DependencyGraph(self._module)
        return self._graph

    @property
    def analysis(self) -> FanoutAnalysis:
        if self._analysis is None:
            self._analysis = compute_fanout_classes(
                self._module, inputs=self._config.inputs, graph=self.graph
            )
        return self._analysis

    @property
    def engine(self) -> IpcEngine:
        if self._engine is None:
            self._engine = IpcEngine(
                self._module,
                solver_backend=self._config.solver_backend,
                simplify=self._config.simplify,
                sim_patterns=self._config.sim_patterns,
                fraig_rounds=self._config.fraig_rounds,
                inprocess=self._config.inprocess,
                sim_backend=self._config.sim_backend,
            )
        return self._engine

    @property
    def unroller(self) -> SequentialUnroller:
        """The context's persistent design-vs-golden unroller (sequential mode)."""
        if self._unroller is None:
            if self._unit.golden is None:
                raise ConfigError(
                    f"sequential mode needs a golden model for design "
                    f"{self._unit.name!r} (none was provided)"
                )
            self._unroller = SequentialUnroller(
                self._module,
                self._unit.golden,
                reset_values=self._config.reset_values,
                solver_backend=self._config.solver_backend,
                simplify=self._config.simplify,
                sim_patterns=self._config.sim_patterns,
                fraig_rounds=self._config.fraig_rounds,
                inprocess=self._config.inprocess,
                sim_backend=self._config.sim_backend,
            )
        return self._unroller

    @property
    def sequential_outputs(self) -> List[str]:
        """Output checked by sequential class ``k`` at position ``k``."""
        if self._sequential_outputs is None:
            if self._unit.golden is None:
                raise ConfigError(
                    f"sequential mode needs a golden model for design "
                    f"{self._unit.name!r} (none was provided)"
                )
            self._sequential_outputs = sequential_output_classes(
                self._module, self._unit.golden
            )
        return self._sequential_outputs

    def stats_snapshot(self) -> Dict[str, int]:
        snapshot = dict(_EMPTY_STATS)
        for counter in _WORK_COUNTERS:
            snapshot[counter] = self._extra_stats[counter]
        for holder in (self._engine, self._unroller):
            if holder is None:
                continue
            stats = holder.stats()
            for counter in _WORK_COUNTERS:
                snapshot[counter] += stats[counter]
            snapshot["cnf_clauses"] += stats["cnf_clauses"]
        return snapshot

    def backend_name(self) -> str:
        if self._unroller is not None:
            return self._unroller.solver_context.backend_name
        if self._engine is None:
            return resolved_backend_name(self._config)
        return self._engine.solver_context.backend_name

    # ------------------------------------------------------------------ #
    # Property construction and settling
    # ------------------------------------------------------------------ #

    def build_property(self, k: int) -> IntervalProperty:
        if k == 0:
            return build_init_property(self._module, self.analysis, self._config)
        return build_fanout_property(self._module, self.analysis, k, self._config)

    def settle_class(
        self, k: int, allow_split: bool = True
    ) -> Union[ClassResult, SplitResult]:
        """Settle property class ``k`` (0 = init property) to a final result.

        When splitting is enabled (``config.split``, combinational mode) the
        first raw SAT call runs under a ``config.split_conflicts`` budget; a
        class whose check exhausts it comes back as a
        :class:`~repro.exec.records.SplitResult` carrying 2^depth cube tasks
        for the scheduler to fan out instead of a final verdict.  Callers
        that must produce a final answer themselves (the per-cube-SAT
        re-settle, the canonical witness settle) pass ``allow_split=False``
        to run unbudgeted.

        Fast path: settle against this context's shared incremental solver
        state.  If that produced *any* counterexample (a terminal failure or
        auto-resolved spurious rounds), the class is re-settled on a fresh,
        single-use context with the *canonical witness settings*
        (:func:`canonical_witness_config`): which satisfying assignment a
        CDCL search finds depends on everything the solver learned before,
        and which pattern a simulation batch trips over depends on every
        refinement pattern fraig accumulated — so a shared-context
        counterexample would vary with worker sharding and with the
        preprocessing flags.  The canonical re-settle depends only on
        (module, semantic config, class index), making counterexamples,
        diagnoses and spurious-round counts identical for every ``jobs``
        setting *and* for ``--no-simplify`` vs the default — the determinism
        the report contract, the result cache and the simplify-equivalence
        guarantee all rely on.  Classes that simply hold (the overwhelming
        majority) never pay for it, and neither does a class whose fast path
        already ran on a virgin engine with canonical settings — that settle
        *is* the canonical one.
        """
        if self._config.mode == "sequential":
            kind = "sequential"
        else:
            kind = "init" if k == 0 else "fanout"
        with _progress.progress_scope(self._unit.name, k, kind), _trace.span(
            "settle", cls=k, kind=kind
        ):
            return self._settle_class_inner(k, allow_split=allow_split)

    def _settle_class_inner(
        self, k: int, allow_split: bool = True
    ) -> Union[ClassResult, SplitResult]:
        virgin = self._virgin
        budget: Optional[int] = None
        if allow_split and self._config.split and self._config.mode != "sequential":
            budget = self._config.split_conflicts
        # One wall-clock deadline covers the *whole* class settle — the fast
        # path, spurious-resolution rounds and the canonical witness
        # re-settle together — so ``check_timeout_s`` bounds the task a
        # supervisor would otherwise see hang, not one solver call.
        started = _time.perf_counter()
        deadline_s: Optional[float] = None
        if self._config.check_timeout_s is not None:
            deadline_s = _time.monotonic() + self._config.check_timeout_s
        try:
            try:
                result = self._settle_once(k, conflict_limit=budget, deadline_s=deadline_s)
            except ConflictLimitExceeded:
                # The monolithic check blew its conflict budget: abandon it
                # (the persistent context is backtracked and fully reusable)
                # and turn the class into cube tasks instead.
                return self._split_class(k)
            if (result.rounds or result.terminal == "cex") and not (
                virgin and _has_canonical_settings(self._config)
            ):
                canonical_unit = replace(
                    self._unit, config=canonical_witness_config(self._config)
                )
                canonical = DesignWorkContext(
                    canonical_unit, analysis=self._analysis, graph=self._graph
                )
                result = canonical._settle_once(k, deadline_s=deadline_s)
                # The re-proof's solver work happened on the canonical engine;
                # fold it into this context's accounting so chunk deltas (and
                # therefore the report's solver telemetry) cover it.
                canonical_stats = canonical.stats_snapshot()
                for counter in _WORK_COUNTERS:
                    self._extra_stats[counter] += canonical_stats[counter]
        except CheckDeadlineExceeded:
            # The class ran past its wall-clock budget.  The engine is left
            # backtracked and reusable; the class degrades to an
            # *inconclusive* timeout outcome with partial telemetry instead
            # of aborting the run.
            return self._timeout_result(k, elapsed_s=_time.perf_counter() - started)
        if not self._config.simplify:
            _clear_preprocess_telemetry(result.outcome.result)
        return result

    def _timeout_result(self, k: int, elapsed_s: float) -> ClassResult:
        """The inconclusive ``terminal="timeout"`` result of a blown deadline.

        ``holds=True`` keeps a timeout from masquerading as a detection; the
        ``status="timeout"`` marker is what forces the run's verdict down to
        ``inconclusive`` (never up to ``secure``) and keeps the outcome out
        of the result cache.
        """
        if self._config.mode == "sequential":
            kind = "sequential"
            name = f"sequential_equivalence[{self.sequential_outputs[k]}]"
            commitments = self._config.depth
        else:
            kind = "init" if k == 0 else "fanout"
            prop = self.build_property(k)
            name = prop.name
            commitments = len(prop.commitments)
        result = PropertyCheckResult(
            prop=IntervalProperty(
                name=name,
                description=(
                    f"check abandoned after exceeding the "
                    f"{self._config.check_timeout_s}s wall-clock deadline"
                ),
            ),
            holds=True,
            runtime_seconds=elapsed_s,
        )
        outcome = PropertyOutcome(kind=kind, index=k, result=result, status="timeout")
        return ClassResult(
            design=self._unit.name,
            index=k,
            kind=kind,
            property_name=name,
            commitments=commitments,
            terminal="timeout",
            outcome=outcome,
        )

    def _settle_once(
        self,
        k: int,
        conflict_limit: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> ClassResult:
        """One settle pass against this context's own solver state."""
        self._virgin = False
        if self._config.mode == "sequential":
            return self._settle_sequential_once(k, deadline_s=deadline_s)
        return self._settle_combinational_once(
            k, conflict_limit=conflict_limit, deadline_s=deadline_s
        )

    def _settle_sequential_once(
        self, k: int, deadline_s: Optional[float] = None
    ) -> ClassResult:
        """Settle sequential class ``k``: bounded design-vs-golden divergence
        of the ``k``-th common output (see :mod:`repro.core.unroll`).

        There is no spurious-counterexample loop here: a bounded divergence
        from the golden model is a divergence, full stop — the waiver
        machinery of the combinational mode exists only because *that* mode
        compares a design against itself over unconstrained starting states.
        """
        output = self.sequential_outputs[k]
        depth = self._config.depth
        # The unroller's native search cannot be interrupted mid-call, so the
        # deadline is enforced at the call boundary (same contract as the
        # pysat backend one layer down).
        if deadline_s is not None and _time.monotonic() >= deadline_s:
            raise CheckDeadlineExceeded("check deadline exceeded")
        check = self.unroller.check_output(output, depth)
        result = PropertyCheckResult(
            prop=IntervalProperty(
                name=f"sequential_equivalence[{output}]",
                description=(
                    f"design output {output!r} equals the golden model's for "
                    f"{depth} cycles from reset"
                ),
            ),
            holds=check.holds,
            cex=check.cex,
            structurally_proven=check.structurally_proven,
            runtime_seconds=check.runtime_seconds,
            sat_conflicts=check.sat_conflicts,
            sat_decisions=check.sat_decisions,
            cnf_new_clauses=check.cnf_new_clauses,
            cnf_reused_clauses=check.cnf_reused_clauses,
            solver_calls=check.solver_calls,
            sim_falsified=check.sim_falsified,
            nodes_before=check.nodes_before,
            nodes_after=check.nodes_after,
            merged_nodes=check.merged_nodes,
            sweep_seconds=check.sweep_seconds,
        )
        outcome = PropertyOutcome(
            kind="sequential",
            index=k,
            result=result,
            depth_reached=depth,
            first_divergence_cycle=check.first_divergence_cycle,
        )
        if check.structurally_proven:
            terminal = "structural"
        elif check.holds:
            terminal = "proven"
        else:
            terminal = "cex"
        return ClassResult(
            design=self._unit.name,
            index=k,
            kind="sequential",
            property_name=result.prop.name,
            commitments=depth,
            terminal=terminal,
            outcome=outcome,
        )

    def _settle_combinational_once(
        self,
        k: int,
        conflict_limit: Optional[int] = None,
        deadline_s: Optional[float] = None,
    ) -> ClassResult:
        """One combinational settle pass against this context's own engine.

        Structural discharge first; remaining obligations go to the shared
        incremental solver context.  Counterexamples whose every cause is
        provable by another property of the run are resolved by
        re-verification with strengthened assumptions; each such round is
        recorded so event replay reproduces the full ``CexFound``/``CexWaived``
        history.
        """
        kind = "init" if k == 0 else "fanout"
        prop = self.build_property(k)
        base = dict(
            design=self._unit.name,
            index=k,
            kind=kind,
            property_name=prop.name,
            commitments=len(prop.commitments),
        )
        if not prop.commitments:
            # Nothing to prove for this class; trivially holds.
            outcome = PropertyOutcome(
                kind=kind,
                index=k,
                result=PropertyCheckResult(prop=prop, holds=True, structurally_proven=True),
            )
            return ClassResult(terminal="structural", outcome=outcome, **base)

        prepared = self.engine.begin_check(prop)
        if prepared.discharged:
            outcome = PropertyOutcome(
                kind=kind, index=k, result=self.engine.finish_check(prepared)
            )
            return ClassResult(terminal="structural", outcome=outcome, **base)

        # SAT phase with per-class spurious-CEX resolution, against the
        # context's persistent solver state.
        rounds: List[SpuriousRound] = []
        resolved = 0
        extra_assumptions: List[str] = []
        # Only the *first* raw solve is budgeted: once it completes (or once
        # the class split into cubes), every follow-up — spurious-resolution
        # re-checks, cube-SAT re-settles — must run to completion.
        result = self.engine.finish_check(
            prepared, conflict_limit=conflict_limit, deadline_s=deadline_s
        )
        while True:
            if result.holds:
                outcome = PropertyOutcome(
                    kind=kind, index=k, result=result, resolved_spurious=resolved
                )
                return ClassResult(
                    terminal="proven", outcome=outcome, rounds=rounds, **base
                )
            diagnosis = diagnose_counterexample(
                self._module, self.analysis, prop, result.cex, self.graph, self._config
            )
            if diagnosis.auto_resolvable:
                new_assumptions = [
                    signal
                    for signal in diagnosis.proposed_assumptions()
                    if signal not in extra_assumptions
                ]
                if new_assumptions:
                    rounds.append(
                        SpuriousRound(
                            cex=result.cex,
                            diagnosis=diagnosis,
                            waived_signals=list(new_assumptions),
                            solve_s=result.runtime_seconds,
                        )
                    )
                    extra_assumptions.extend(new_assumptions)
                    resolved += 1
                    prop = self.build_property(k)
                    for signal in extra_assumptions:
                        prop.assume_equal(signal, 0)
                    # Between-call deadline check covers backends that cannot
                    # interrupt a native search mid-call.
                    if deadline_s is not None and _time.monotonic() >= deadline_s:
                        raise CheckDeadlineExceeded("check deadline exceeded")
                    result = self.engine.finish_check(
                        self.engine.begin_check(prop), deadline_s=deadline_s
                    )
                    continue
            outcome = PropertyOutcome(
                kind=kind,
                index=k,
                result=result,
                diagnosis=diagnosis,
                resolved_spurious=resolved,
            )
            return ClassResult(terminal="cex", outcome=outcome, rounds=rounds, **base)

    def _split_class(self, k: int) -> Union[ClassResult, SplitResult]:
        """Turn a budget-exhausted class into cube tasks (Sec. cube-and-conquer).

        Cube selection must be a pure function of (module, semantic config,
        class index): the scheduler caches per-cube verdicts under keys that
        embed the cube literals, and two runs (any ``jobs`` value, cold or
        resumed) must fan the same class into the same cubes.  The ambient
        engine cannot provide that — its cone shape and simulation patterns
        depend on every class the worker settled before — so planning runs on
        a fresh single-use context with the *canonical witness settings*
        (:func:`canonical_witness_config`), the same trick the witness
        re-settle uses.  If the canonical cone yields fewer than two cubes
        (or canonical preprocessing already discharges/falsifies the check),
        the class falls back to an unbudgeted monolithic settle on another
        fresh canonical context, which is byte-identical to what a
        ``--no-split`` run reports.
        """
        kind = "init" if k == 0 else "fanout"
        canonical_unit = replace(
            self._unit, config=canonical_witness_config(self._config)
        )
        planner = DesignWorkContext(
            canonical_unit, analysis=self._analysis, graph=self._graph
        )
        prop = planner.build_property(k)
        cubes: List[Cube] = []
        prepared = None
        if prop.commitments:
            planner._virgin = False
            prepared = planner.engine.begin_check(prop)
            if prepared.needs_sat and prepared.sim_model is None:
                cubes = planner.engine.plan_cubes(prepared, self._config.split_depth)
        planner_stats = planner.stats_snapshot()
        for counter in _WORK_COUNTERS:
            self._extra_stats[counter] += planner_stats[counter]
        if prepared is None or len(cubes) < 2:
            # Unsplittable: settle monolithically on a *fresh* canonical
            # context (the planner's engine already preprocessed the cone, so
            # reusing it would not reproduce the canonical settle).  Virgin +
            # canonical settings means the inner settle never re-settles.
            fallback = DesignWorkContext(
                canonical_unit, analysis=self._analysis, graph=self._graph
            )
            result = fallback._settle_class_inner(k, allow_split=False)
            fallback_stats = fallback.stats_snapshot()
            for counter in _WORK_COUNTERS:
                self._extra_stats[counter] += fallback_stats[counter]
            if not self._config.simplify:
                _clear_preprocess_telemetry(result.outcome.result)
            return result
        # The all-cubes-UNSAT outcome, pre-built: its deterministic fields
        # (merged/clause assumption counts, structural flags) are computed
        # before preprocessing from structural hashing, so the canonical
        # prepared result carries exactly what the ambient engine would have
        # reported for a monolithic UNSAT — everything else is volatile
        # telemetry the normalized report strips anyway.
        template_result = prepared.result
        template_result.holds = True
        template_result.cex = None
        if not self._config.simplify:
            _clear_preprocess_telemetry(template_result)
        template = outcome_to_dict(
            PropertyOutcome(kind=kind, index=k, result=template_result)
        )
        return SplitResult(
            design=self._unit.name,
            index=k,
            kind=kind,
            property_name=prop.name,
            commitments=len(prop.commitments),
            cubes=cubes,
            outcome_template=template,
        )

    def run_cube(self, index: int, cube: Cube) -> Tuple[CubeVerdict, Dict[str, object]]:
        """Solve one cube of class ``index`` on this context's engine.

        The cube's literals join the check's clause assumptions *before*
        preprocessing, so simulation-first falsification and assumption
        merging work inside the cube exactly as they do for a whole class.
        Only satisfiability travels back (no counterexample is extracted):
        any SAT cube sends the class to a canonical re-settle that produces
        the witness, so the verdict is semantic — cacheable and identical on
        every engine.

        Stats have the same shape as :meth:`run_chunk`'s, so the scheduler
        aggregates cube work into the report's solver telemetry uniformly.
        """
        started = _time.perf_counter()
        tracer = _trace.Tracer() if self._config.trace else None
        before = self.stats_snapshot()
        with _trace.install_tracer(tracer) if tracer is not None else _nullcontext():
            with _progress.progress_scope(self._unit.name, index, "cube"), _trace.span(
                "cube", cls=index, literals=len(cube)
            ):
                self._virgin = False
                prop = self.build_property(index)
                prepared = self.engine.begin_check(prop, cube=cube)
                result = self.engine.finish_check(prepared, want_cex=False)
        after = self.stats_snapshot()
        stats: Dict[str, object] = {
            "backend": self.backend_name(),
            "cnf_clauses": after["cnf_clauses"],
            "elapsed_s": _time.perf_counter() - started,
        }
        for counter in _WORK_COUNTERS:
            stats[counter] = after[counter] - before[counter]
        if tracer is not None:
            stats["spans"] = tracer.export()
        verdict = CubeVerdict(
            design=self._unit.name, index=index, cube=cube, sat=not result.holds
        )
        return verdict, stats

    def run_chunk(
        self, indices: Sequence[int], stop_on_failure: bool, allow_split: bool = True
    ) -> Tuple[List[Union[ClassResult, SplitResult]], Dict[str, object]]:
        """Settle a shard of classes in index order; returns (results, stats).

        The stats dict is this chunk's *delta* of the context's solver work
        (plus the current CNF size snapshot and the chunk's worker-side wall
        time), so a scheduler can aggregate per-design totals from chunks
        that ran on different workers.

        When the config asks for tracing, a chunk-local tracer is installed
        around the settle loop and its spans travel back in the stats dict
        (``stats["spans"]``, plain JSON-native dicts) — the one channel that
        already crosses the worker-process boundary.  Pool and serial
        executors thus merge traces identically, with no reliance on fork
        semantics.
        """
        started = _time.perf_counter()
        tracer = _trace.Tracer() if self._config.trace else None
        before = self.stats_snapshot()
        results: List[Union[ClassResult, SplitResult]] = []
        with _trace.install_tracer(tracer) if tracer is not None else _nullcontext():
            for k in indices:
                result = self.settle_class(k, allow_split=allow_split)
                results.append(result)
                # A SplitResult is undecided — it cannot trip the
                # stop-on-failure early exit (the reducer re-submits it).
                if (
                    stop_on_failure
                    and isinstance(result, ClassResult)
                    and not result.outcome.holds
                ):
                    break
        after = self.stats_snapshot()
        stats: Dict[str, object] = {
            "backend": self.backend_name(),
            "cnf_clauses": after["cnf_clauses"],
            "elapsed_s": _time.perf_counter() - started,
        }
        for counter in _WORK_COUNTERS:
            stats[counter] = after[counter] - before[counter]
        if tracer is not None:
            stats["spans"] = tracer.export()
        return results, stats
