"""Content fingerprints for the on-disk result cache.

A cached property result may only be replayed when *nothing that can change
the result* has changed: the elaborated netlist, the semantically relevant
parts of the detection configuration, the property class index, and the
serialized-record schema.  All four are folded into one SHA-256 hex digest,
the cache key of :class:`repro.exec.cache.ResultCache`.

The module fingerprint is a canonical serialization of the flat RTL IR, not
a pickle: expression trees are walked iteratively (AES S-box mux chains are
deep enough to overflow the recursion limit) and every dict is visited in
sorted order, so the digest is stable across Python versions and interning
behaviour.

Deliberately *excluded* from the config fingerprint are the knobs that do
not change any individual property's outcome: ``stop_at_first_failure`` and
``max_class`` only select *which* classes run, and ``jobs`` / ``cache_dir``
/ ``use_cache`` only select *how* they run.  ``sim_backend`` is excluded
too: the numpy and Python simulation kernels are bit-identical by
construction (see :mod:`repro.aig.simd`), so not a single bit of any record
can depend on the kernel choice.  A truncated audit therefore warms the
cache for a later full audit, a serial run warms it for a parallel one, and
a numpy run warms it for a machine without numpy.
"""

from __future__ import annotations

import hashlib
from typing import List

from repro.core.config import DetectionConfig
from repro.rtl import exprs
from repro.rtl.ir import Module

#: Version of the serialized class-record layout (see
#: :mod:`repro.exec.records`).  Part of every cache key, so a layout change
#: silently invalidates all previously written entries instead of trying to
#: read them.  v3: outcome records gained the sequential-mode fields
#: (``depth_reached``, ``first_divergence_cycle``).  v4: outcome records
#: gained the preprocessing telemetry (``sim_falsified``, ``nodes_before``,
#: ``nodes_after``, ``merged_nodes``, ``sweep_s``), and counterexample
#: witnesses became canonical under the simulation-guided settle.  v5: the
#: canonical witness settle runs solver inprocessing between checks
#: (vivified clauses propagate differently, so the CDCL search may land on
#: a different satisfying assignment than v4's) — witnesses cached by
#: earlier versions must not replay.  v6: outcome records gained the
#: cube-and-conquer telemetry (``cubes``, ``cubes_cached``), and the cache
#: gained two new record types under their own key shapes — split records
#: (the cube set of an aborted monolithic solve) and per-cube verdicts.
#: v7: outcome records gained the ``status`` field and the ``timeout`` /
#: ``error`` terminals (fault-tolerant execution) — older readers would
#: reject the new terminals, so the layouts must not alias.
CACHE_SCHEMA_VERSION = 7


class _Hasher:
    """Tiny token-stream hasher: feed()s are length-prefixed, so the token
    boundaries are part of the digest (``("ab","c")`` != ``("a","bc")``)."""

    def __init__(self) -> None:
        self._digest = hashlib.sha256()

    def feed(self, token: str) -> None:
        data = token.encode("utf-8")
        self._digest.update(str(len(data)).encode("ascii"))
        self._digest.update(b":")
        self._digest.update(data)

    def hexdigest(self) -> str:
        return self._digest.hexdigest()


def _feed_expr(hasher: _Hasher, root: exprs.Expr) -> None:
    """Feed a canonical pre-order token stream of ``root`` (iterative)."""
    stack: List[object] = [root]
    while stack:
        node = stack.pop()
        if isinstance(node, str):  # a literal marker token
            hasher.feed(node)
            continue
        if isinstance(node, exprs.Const):
            hasher.feed(f"const/{node.width}/{node.value}")
        elif isinstance(node, exprs.Ref):
            hasher.feed(f"ref/{node.width}/{node.name}")
        elif isinstance(node, exprs.Unop):
            hasher.feed(f"unop/{node.width}/{node.op}")
            stack.append(node.operand)
        elif isinstance(node, exprs.Binop):
            hasher.feed(f"binop/{node.width}/{node.op}")
            stack.append(node.right)
            stack.append(node.left)
        elif isinstance(node, exprs.Mux):
            hasher.feed(f"mux/{node.width}")
            stack.append(node.otherwise)
            stack.append(node.then)
            stack.append(node.cond)
        elif isinstance(node, exprs.Concat):
            hasher.feed(f"concat/{node.width}/{len(node.parts)}")
            stack.extend(reversed(node.parts))
        elif isinstance(node, exprs.Slice):
            hasher.feed(f"slice/{node.width}/{node.lsb}")
            stack.append(node.base)
        elif isinstance(node, exprs.Lut):
            table = ",".join(str(entry) for entry in node.table)
            hasher.feed(f"lut/{node.width}/{table}")
            stack.append(node.index)
        else:  # future node types must not silently alias an existing hash
            hasher.feed(f"other/{type(node).__name__}/{node!r}")


def module_fingerprint(module: Module) -> str:
    """SHA-256 of the canonical serialization of an elaborated module."""
    hasher = _Hasher()
    hasher.feed("module")
    hasher.feed(module.name)
    for section, table in (("inputs", module.inputs), ("outputs", module.outputs),
                           ("signals", module.signals)):
        hasher.feed(section)
        for name in sorted(table):
            hasher.feed(f"{name}/{table[name]}")
    hasher.feed("clocks")
    for name in sorted(module.clocks):
        hasher.feed(name)
    hasher.feed("resets")
    for name in sorted(module.resets):
        hasher.feed(name)
    hasher.feed("comb")
    for name in sorted(module.comb):
        hasher.feed(name)
        _feed_expr(hasher, module.comb[name])
    hasher.feed("registers")
    for name in sorted(module.registers):
        register = module.registers[name]
        hasher.feed(f"{name}/{register.width}/{register.reset_value}")
        _feed_expr(hasher, register.next)
    return hasher.hexdigest()


def config_fingerprint(config: DetectionConfig, backend_name: str) -> str:
    """SHA-256 of the semantically relevant configuration fields.

    ``backend_name`` must be the *resolved* backend (never ``"auto"``), so a
    machine where ``auto`` picks a different solver does not replay results
    whose counterexamples that solver never produced.

    The detection ``mode`` is always part of the digest; every other knob is
    folded in only for the mode it can affect.  Sequential outcomes depend
    on ``depth`` and ``reset_values`` but not on traced inputs, waivers, or
    the property-shape switches (the golden-model check has no fanout
    partition and no assumption machinery), and vice versa for
    combinational outcomes — hashing a knob into the mode it cannot
    influence would only make warm caches go cold.  A sequential rerun at
    the *same* depth therefore replays entirely from cache even when the
    waiver list changes, while a deeper bound misses and re-proves.

    Pure execution knobs — ``jobs``, ``cache_dir``, ``use_cache``,
    ``sim_backend``, ``trace`` — are deliberately excluded: the allowlist
    below feeds only the named semantic fields, so a traced run replays
    (and populates) exactly the cache entries of an untraced one.
    """
    hasher = _Hasher()
    hasher.feed("config")
    hasher.feed(f"backend/{backend_name}")
    hasher.feed(f"mode/{config.mode}")
    # The preprocessing switch affects both modes: it decides whether a class
    # record carries simulation or solver telemetry, so records of simplified
    # and unsimplified runs must never alias (verdicts and witnesses are
    # identical either way, but the telemetry contract is per-configuration).
    # The batch/round knobs are inert with simplify off — hashing them then
    # would only make warm --no-simplify caches go cold.
    hasher.feed(f"simplify/{config.simplify}")
    if config.simplify:
        hasher.feed(f"sim/{config.sim_patterns}/{config.fraig_rounds}")
    # Like simplify, inprocessing never changes a verdict or a reported
    # witness (the canonical settle pins it), but it does change the solver
    # telemetry of every class settled after the first inprocessing pass —
    # so records of inprocessed and untouched runs must never alias.
    hasher.feed(f"inprocess/{config.inprocess}")
    # The wall-clock deadline decides whether a hard class settles at all
    # (timeout outcomes are never cached, but a deadline also changes the
    # partial telemetry of every class that races it), so runs with
    # different deadlines must never share records.  Both modes check it.
    hasher.feed(f"check-timeout/{config.check_timeout_s}")
    if config.mode == "sequential":
        hasher.feed(f"depth/{config.depth}")
        hasher.feed("reset-values")
        for name in sorted(config.reset_values or {}):
            hasher.feed(f"{name}/{config.reset_values[name]}")
    else:
        inputs = list(config.inputs) if config.inputs is not None else None
        hasher.feed(f"inputs/{inputs!r}")
        hasher.feed(f"cumulative/{config.cumulative_assumptions}")
        hasher.feed(f"assume-inputs/{config.assume_inputs_at_prove_time}")
        hasher.feed("waivers")
        for signal in sorted(config.waived_signals()):
            hasher.feed(signal)
        # Cube-and-conquer knobs (combinational only: the sequential mode
        # never splits).  Splitting preserves verdicts, witnesses and
        # normalized reports, but it changes which record types a run
        # writes (split records, per-cube verdicts) and which budgeted
        # telemetry a class record carries — and per-cube entries are only
        # resumable when the budget and depth that produced them are
        # pinned.  The budget/depth values are inert with split off.
        hasher.feed(f"split/{config.split}")
        if config.split:
            hasher.feed(f"split-budget/{config.split_conflicts}/{config.split_depth}")
    return hasher.hexdigest()


def pair_module_fingerprint(design_fp: str, golden_fp: str) -> str:
    """Combined netlist fingerprint of a (design, golden model) pair.

    Sequential-mode cache entries depend on *both* netlists: a re-generated
    golden model must invalidate replays just like a changed design.  The
    pair digest is ordered (design first), so swapping the two roles never
    aliases.
    """
    hasher = _Hasher()
    hasher.feed("module-pair")
    hasher.feed(design_fp)
    hasher.feed(golden_fp)
    return hasher.hexdigest()


def class_cache_key(module_fp: str, config_fp: str, index: int) -> str:
    """Cache key of one property class under one (netlist, config) pair."""
    hasher = _Hasher()
    hasher.feed(f"repro-result-cache/v{CACHE_SCHEMA_VERSION}")
    hasher.feed(module_fp)
    hasher.feed(config_fp)
    hasher.feed(f"class/{index}")
    return hasher.hexdigest()


def split_cache_key(module_fp: str, config_fp: str, index: int) -> str:
    """Cache key of a class's split record (its deterministic cube set).

    Written when a class's monolithic attempt blows its conflict budget, so
    an interrupted run can re-enter the reduce stage without repeating the
    budgeted attempt or the cube-selection lookahead.
    """
    hasher = _Hasher()
    hasher.feed(f"repro-result-cache/v{CACHE_SCHEMA_VERSION}")
    hasher.feed(module_fp)
    hasher.feed(config_fp)
    hasher.feed(f"split/{index}")
    return hasher.hexdigest()


def cube_cache_key(module_fp: str, config_fp: str, index: int, cube) -> str:
    """Cache key of one cube verdict: the class key extended by the cube.

    ``cube`` is the portable literal tuple
    ``((instance, time, signal, bit, value), ...)``; each literal is fed as
    its own token so cube boundaries are part of the digest.
    """
    hasher = _Hasher()
    hasher.feed(f"repro-result-cache/v{CACHE_SCHEMA_VERSION}")
    hasher.feed(module_fp)
    hasher.feed(config_fp)
    hasher.feed(f"class/{index}/cube")
    for instance, time, signal, bit, value in cube:
        hasher.feed(f"{instance}/{time}/{signal}/{bit}/{value}")
    return hasher.hexdigest()
