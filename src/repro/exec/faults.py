"""Deterministic fault injection for the fault-tolerance test suite.

Robustness code is only trustworthy if its failure paths actually run, and
real faults (a worker OOM-killed mid-solve, a cache entry corrupted by a
torn write, a SAT check that stalls for minutes) are miserable to reproduce
on demand.  This module turns them into a deterministic, env-driven plan::

    REPRO_FAULTS=worker_kill@task:2,cache_corrupt@class:1,solver_stall@check:3

Each spec is ``kind@scope:nth`` — *kind* names the fault, *scope* names the
unit the seam counts, and *nth* is the 1-based occurrence at which the fault
fires (exactly once per process).  The supported kinds and their seams:

``worker_kill@task:N``
    The pool worker loop (:func:`repro.exec.executor._pool_worker_main`)
    SIGKILLs its own process when it picks up its N-th task — the closest
    deterministic stand-in for a crash/OOM kill.  Counted per worker
    process, so a respawned worker starts a fresh count and the retried
    task completes.
``cache_corrupt@class:N``
    The N-th :meth:`repro.exec.cache.ResultCache.get` in the process
    behaves as if the entry on disk were corrupt (counted as
    ``corrupt_skipped``, returned as a miss).
``solver_stall@check:N``
    The N-th :meth:`repro.sat.solver.SatSolver.solve` call in the process
    stalls (sleeps) past its wall-clock deadline before searching, so the
    ``check_timeout_s`` path fires deterministically.  Without a deadline
    the stall is bounded (0.25 s) so a misconfigured plan cannot hang a run.

Faults are counted per process and inherited over ``fork`` via the
environment, so pool workers each run their own copy of the plan.  The
module is a no-op (one dict lookup per seam) unless a plan is installed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ReproError

#: Environment variable holding the fault plan.
FAULTS_ENV = "REPRO_FAULTS"

#: Supported fault kinds and the scope token each one's seam counts.
FAULT_SCOPES = {
    "worker_kill": "task",
    "cache_corrupt": "class",
    "solver_stall": "check",
}


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``kind@scope:nth`` entry of a fault plan."""

    kind: str
    scope: str
    nth: int


class FaultPlan:
    """A set of fault specs plus per-kind occurrence counters.

    ``fire(kind)`` increments the counter for *kind* and reports whether
    this occurrence is one the plan wants faulted.  Counters live on the
    plan instance, so one plan == one process's deterministic schedule.
    """

    def __init__(self, specs: Tuple[FaultSpec, ...] = ()):
        self.specs = tuple(specs)
        self._nths: Dict[str, frozenset] = {}
        for spec in self.specs:
            nths = set(self._nths.get(spec.kind, frozenset()))
            nths.add(spec.nth)
            self._nths[spec.kind] = frozenset(nths)
        self._counts: Dict[str, int] = {}

    def fire(self, kind: str) -> bool:
        """Count one occurrence of *kind*'s seam; true when it must fault."""
        nths = self._nths.get(kind)
        if nths is None:
            return False
        count = self._counts.get(kind, 0) + 1
        self._counts[kind] = count
        return count in nths

    def __bool__(self) -> bool:
        return bool(self.specs)


def parse_fault_plan(text: str) -> FaultPlan:
    """Parse a ``kind@scope:nth[,...]`` plan string (:data:`FAULTS_ENV`).

    Malformed specs raise :class:`ReproError` — a typoed chaos plan must
    fail the run loudly, not silently inject nothing.
    """
    specs: List[FaultSpec] = []
    for raw in text.split(","):
        entry = raw.strip()
        if not entry:
            continue
        head, sep, nth_text = entry.partition(":")
        kind, at, scope = head.partition("@")
        if not sep or not at or not kind or not scope or not nth_text:
            raise ReproError(
                f"malformed fault spec {entry!r}; expected kind@scope:nth "
                f"(e.g. worker_kill@task:2)"
            )
        if kind not in FAULT_SCOPES:
            raise ReproError(
                f"unknown fault kind {kind!r}; "
                f"available: {', '.join(sorted(FAULT_SCOPES))}"
            )
        if scope != FAULT_SCOPES[kind]:
            raise ReproError(
                f"fault {kind!r} is counted per {FAULT_SCOPES[kind]!r}, "
                f"not per {scope!r}"
            )
        try:
            nth = int(nth_text)
        except ValueError:
            nth = 0
        if nth < 1:
            raise ReproError(
                f"fault occurrence must be a 1-based integer, got {nth_text!r}"
            )
        specs.append(FaultSpec(kind=kind, scope=scope, nth=nth))
    return FaultPlan(tuple(specs))


# The process-wide active plan.  ``None`` means "not yet resolved from the
# environment"; an empty FaultPlan means "resolved, nothing to inject".
_active: Optional[FaultPlan] = None


def active_plan() -> FaultPlan:
    """The process's fault plan, resolved lazily from :data:`FAULTS_ENV`."""
    global _active
    if _active is None:
        text = os.environ.get(FAULTS_ENV, "")
        _active = parse_fault_plan(text) if text else FaultPlan()
    return _active


def set_plan(plan: Optional[FaultPlan]) -> None:
    """Install *plan* as the process's active plan (tests), or reset with
    ``None`` so the next seam re-reads :data:`FAULTS_ENV`."""
    global _active
    _active = plan


def fire(kind: str) -> bool:
    """Seam entry point: count one occurrence of *kind*, true to fault."""
    return active_plan().fire(kind)
