"""repro.exec — the parallel execution subsystem.

Everything between "the scheduler decided these property classes must be
settled" and "here are their deterministic, typed results" lives in this
package:

* :mod:`repro.exec.executor` — the :class:`Executor` abstraction:
  :class:`SerialExecutor` (inline, lazy) and :class:`ProcessPoolExecutor`
  (forked workers stealing shards from one shared queue, with per-worker
  ``IpcEngine``/``SatContext`` affinity so clause reuse survives inside a
  worker).
* :mod:`repro.exec.scheduler` — :class:`DesignPlan` + :func:`run_plans`:
  shards properties within a design and designs within a batch, merges
  chunk outcomes back into the ordered event stream, assembles reports.
* :mod:`repro.exec.worker` — :class:`DesignWorkContext`, the per-design
  compute kernel (property build, structural discharge, SAT settle loop).
* :mod:`repro.exec.cache` / :mod:`repro.exec.fingerprint` — the persistent
  :class:`ResultCache`, content-addressed by SHA-256 fingerprints of the
  elaborated netlist, the semantic config, the class index and the record
  schema version.
* :mod:`repro.exec.records` — the JSON-native class-record round-trip shared
  by worker transport and cache persistence, plus the report normalization
  helpers used by determinism tests and benchmarks.
"""

from repro.exec.cache import ResultCache
from repro.exec.executor import (
    ChunkOutcome,
    ChunkTask,
    ContextSeed,
    CubeTask,
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    create_executor,
)
from repro.exec.fingerprint import (
    CACHE_SCHEMA_VERSION,
    class_cache_key,
    config_fingerprint,
    cube_cache_key,
    module_fingerprint,
    split_cache_key,
)
from repro.exec.records import (
    ClassResult,
    CubeVerdict,
    SplitResult,
    class_result_from_record,
    class_result_to_record,
    cube_verdict_from_record,
    cube_verdict_to_record,
    normalized_batch_report_dict,
    normalized_report_dict,
    split_result_from_record,
    split_result_to_record,
    task_entry_from_record,
    task_entry_to_record,
)
from repro.exec.scheduler import DesignPlan, run_plans, shard_indices
from repro.exec.worker import DesignWorkContext, WorkUnit, resolved_backend_name

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "ChunkOutcome",
    "ChunkTask",
    "ClassResult",
    "ContextSeed",
    "CubeTask",
    "CubeVerdict",
    "DesignPlan",
    "DesignWorkContext",
    "Executor",
    "ProcessPoolExecutor",
    "ResultCache",
    "SerialExecutor",
    "SplitResult",
    "WorkUnit",
    "class_cache_key",
    "class_result_from_record",
    "class_result_to_record",
    "config_fingerprint",
    "create_executor",
    "cube_cache_key",
    "cube_verdict_from_record",
    "cube_verdict_to_record",
    "module_fingerprint",
    "normalized_batch_report_dict",
    "normalized_report_dict",
    "resolved_backend_name",
    "run_plans",
    "shard_indices",
    "split_cache_key",
    "split_result_from_record",
    "split_result_to_record",
    "task_entry_from_record",
    "task_entry_to_record",
]
