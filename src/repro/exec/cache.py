"""On-disk, content-addressed cache of settled property classes.

Layout on disk (one JSON document per settled class)::

    <cache_dir>/
      objects/
        ab/
          ab3f...e1.json      {"cache_schema": N, "key": "ab3f...e1",
                               "record": {...}}   (see repro.exec.records)

The key is the SHA-256 fingerprint of (netlist, config, property class,
record schema) computed by :mod:`repro.exec.fingerprint`, so a cache
directory can be shared between designs, configs, branches and machines
without any coordination: a stale or foreign entry is simply never looked
up.  Writes go through a temp file + ``os.replace`` so that concurrent
workers or an interrupted run can never leave a torn entry behind; corrupt
or unreadable entries are treated as misses, never as errors.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from repro.exec import faults as _faults
from repro.exec.fingerprint import CACHE_SCHEMA_VERSION
from repro.obs.trace import span as _span


class ResultCache:
    """A persistent store of settled property-class records."""

    def __init__(self, root: str) -> None:
        self._root = Path(root)
        self._objects = self._root / "objects"
        # Directories are created lazily on the first write: an unreadable
        # or read-only cache location degrades to cache-off behaviour (and
        # `cache stats` never creates the directory it is asked about).
        #: Entries that existed but could not be used (corrupt JSON, wrong
        #: schema, key mismatch).  Exposed for telemetry/tests; such entries
        #: count as plain misses for the run itself.
        self.corrupt_skipped = 0

    @property
    def root(self) -> Path:
        return self._root

    def _path_for(self, key: str) -> Path:
        return self._objects / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------ #
    # Lookup / store
    # ------------------------------------------------------------------ #

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The record stored under ``key``, or None (miss / unusable entry)."""
        path = self._path_for(key)
        if _faults.fire("cache_corrupt"):
            # Fault-injection seam: behave exactly as a torn/corrupt entry
            # would — count it and miss — so the degradation path is testable
            # without staging broken files on disk.
            self.corrupt_skipped += 1
            return None
        with _span("cache", op="get"):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
            except FileNotFoundError:
                return None
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                self.corrupt_skipped += 1
                return None
        if (
            not isinstance(entry, dict)
            or entry.get("cache_schema") != CACHE_SCHEMA_VERSION
            or entry.get("key") != key
            or not isinstance(entry.get("record"), dict)
        ):
            self.corrupt_skipped += 1
            return None
        return entry["record"]

    def put(self, key: str, record: Dict[str, Any]) -> None:
        """Store ``record`` under ``key`` (atomic; failures are non-fatal).

        The cache is an accelerator, never a correctness dependency: a full
        disk or read-only directory degrades to cache-off behaviour.
        """
        path = self._path_for(key)
        entry = {"cache_schema": CACHE_SCHEMA_VERSION, "key": key, "record": record}
        with _span("cache", op="put"):
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                fd, tmp_name = tempfile.mkstemp(
                    prefix=".tmp-", suffix=".json", dir=str(path.parent)
                )
                try:
                    with os.fdopen(fd, "w", encoding="utf-8") as handle:
                        json.dump(entry, handle, sort_keys=True)
                    os.replace(tmp_name, path)
                except BaseException:
                    try:
                        os.unlink(tmp_name)
                    except OSError:
                        pass
                    raise
            except OSError:
                pass

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #

    def _entry_paths(self):
        if not self._objects.is_dir():
            return
        for bucket in sorted(self._objects.iterdir()):
            if not bucket.is_dir():
                continue
            for path in sorted(bucket.glob("*.json")):
                yield path

    def stats(self) -> Dict[str, Any]:
        """Entry count and total size of the cache directory."""
        entries = 0
        total_bytes = 0
        for path in self._entry_paths():
            try:
                total_bytes += path.stat().st_size
            except OSError:
                continue
            entries += 1
        return {
            "root": str(self._root),
            "entries": entries,
            "bytes": total_bytes,
            "cache_schema": CACHE_SCHEMA_VERSION,
        }

    def clear(self) -> int:
        """Delete every cached entry; returns the number of entries removed."""
        removed = 0
        for path in list(self._entry_paths()):
            try:
                path.unlink()
            except OSError:
                continue
            removed += 1
        return removed
