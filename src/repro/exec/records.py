"""Settled property classes as portable, JSON-native *class records*.

The execution subsystem moves settled classes across two boundaries with one
serialization: worker processes send records back over the result queue, and
the :class:`repro.exec.cache.ResultCache` persists the very same records to
disk.  A record fully reproduces what the consumer of a run can observe for
one class — the scheduled-property metadata, every spurious-counterexample
round, the terminal event, and the :class:`PropertyOutcome` — so replaying a
record (from a worker or from the cache) emits the same typed events the
in-process scheduler would have emitted.

``normalized_report_dict`` is the comparison form used by the determinism
tests and the scaling benchmark: a serialized report with the volatile
performance telemetry (wall-clock timings, solver/clause accounting,
executor topology) stripped, leaving only the schedule-independent semantic
content.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.events import (
    CexFound,
    CexWaived,
    ClassProven,
    ClassSimFalsified,
    ClassSplit,
    ConeSimplified,
    PropertyScheduled,
    RunEvent,
    StructurallyDischarged,
    WorkerLost,
)
from repro.core.report import (
    PropertyOutcome,
    cex_from_dict,
    cex_to_dict,
    diagnosis_from_dict,
    diagnosis_to_dict,
    outcome_from_dict,
    outcome_to_dict,
)
from repro.errors import ReproError


@dataclass
class SpuriousRound:
    """One auto-resolved counterexample round of a class's settle loop."""

    cex: Any  # CounterExample
    diagnosis: Any  # CexDiagnosis
    waived_signals: List[str]
    solve_s: float = 0.0


@dataclass
class ClassResult:
    """Everything one settled property class contributes to a run."""

    design: str
    index: int
    kind: str  # "init", "fanout", or "sequential"
    property_name: str
    commitments: int
    # "structural" | "proven" | "cex" are real verdicts; "timeout" (the
    # check exceeded its wall-clock deadline) and "error" (the task's
    # worker was quarantined) are inconclusive — their outcomes carry
    # ``status != "ok"`` and are never written to the result cache.
    terminal: str
    outcome: PropertyOutcome
    rounds: List[SpuriousRound] = field(default_factory=list)
    from_cache: bool = False
    # Retry count behind an "error" terminal (how often the task was
    # requeued before quarantine).  Event-stream telemetry only: not part
    # of the serialized record, because error results are synthesized on
    # the scheduler side and never cross the queue or the cache.
    retries: int = 0

    def events(self) -> List[RunEvent]:
        """The typed event group this class contributes, in emission order."""
        events: List[RunEvent] = [
            PropertyScheduled(
                design=self.design,
                index=self.index,
                kind=self.kind,
                property_name=self.property_name,
                commitments=self.commitments,
            )
        ]
        final = self.outcome.result
        if self.outcome.cubes > 1:
            events.append(
                ClassSplit(
                    design=self.design,
                    index=self.index,
                    cubes=self.outcome.cubes,
                    cubes_cached=self.outcome.cubes_cached,
                    kind=self.kind,
                )
            )
        if final.merged_nodes or (
            final.nodes_before and final.nodes_after < final.nodes_before
        ):
            events.append(
                ConeSimplified(
                    design=self.design,
                    index=self.index,
                    nodes_before=final.nodes_before,
                    nodes_after=final.nodes_after,
                    merged_nodes=final.merged_nodes,
                    kind=self.kind,
                )
            )
        if final.sim_falsified and self.terminal == "cex":
            events.append(
                ClassSimFalsified(
                    design=self.design, index=self.index, kind=self.kind
                )
            )
        for round_ in self.rounds:
            events.append(
                CexFound(
                    design=self.design,
                    index=self.index,
                    cex=round_.cex,
                    diagnosis=round_.diagnosis,
                    auto_resolvable=True,
                    solve_s=round_.solve_s,
                    from_cache=self.from_cache,
                    kind=self.kind,
                )
            )
            events.append(
                CexWaived(
                    design=self.design,
                    index=self.index,
                    signals=tuple(round_.waived_signals),
                )
            )
        if self.terminal == "error":
            events.append(
                WorkerLost(
                    design=self.design,
                    index=self.index,
                    kind=self.kind,
                    retries=self.retries,
                    quarantined=True,
                )
            )
        elif self.terminal == "timeout":
            # An inconclusive class has no terminal verdict event: the
            # outcome (status="timeout", partial telemetry) rides in the
            # report, and consumers treat RunFinished as the stream's end.
            pass
        elif self.terminal == "structural":
            events.append(
                StructurallyDischarged(
                    design=self.design,
                    index=self.index,
                    outcome=self.outcome,
                    from_cache=self.from_cache,
                )
            )
        elif self.terminal == "proven":
            events.append(
                ClassProven(
                    design=self.design,
                    index=self.index,
                    outcome=self.outcome,
                    solve_s=self.outcome.result.runtime_seconds,
                    from_cache=self.from_cache,
                )
            )
        else:
            events.append(
                CexFound(
                    design=self.design,
                    index=self.index,
                    cex=self.outcome.result.cex,
                    diagnosis=self.outcome.diagnosis,
                    auto_resolvable=False,
                    solve_s=self.outcome.result.runtime_seconds,
                    from_cache=self.from_cache,
                    kind=self.kind,
                )
            )
        return events


#: A portable cube: a tuple of ``(instance, time, signal, bit, value)``
#: literals over free leaf bits (see :mod:`repro.sat.cubes` and
#: :meth:`repro.ipc.engine.IpcEngine.plan_cubes`).
Cube = Tuple[Tuple[int, int, str, int, int], ...]


@dataclass
class SplitResult:
    """A class whose monolithic solve was aborted and cubed (not settled).

    Workers return this instead of a :class:`ClassResult` when the budgeted
    first SAT call of a class blows ``DetectionConfig.split_conflicts``; the
    scheduler's reducer then turns the cubes into :class:`CubeVerdict` tasks
    and merges their verdicts back into one final class result.
    ``outcome_template`` is the serialized proven-case
    :class:`PropertyOutcome` (its deterministic fields — merged/clause
    assumption counts, structural status — are set before any preprocessing
    and are therefore identical to what the monolithic solve would report).
    """

    design: str
    index: int
    kind: str
    property_name: str
    commitments: int
    cubes: List[Cube]
    outcome_template: Dict[str, Any]


@dataclass
class CubeVerdict:
    """The verdict of one cube task: satisfiable or not, nothing more.

    Counterexamples are never carried here — a SAT cube sends the class to
    the canonical monolithic re-settle, which reproduces the same witness
    any schedule produces.  Verdicts are semantic (engine-state independent),
    so they are safe to cache per cube and replay across runs and job
    counts.
    """

    design: str
    index: int
    cube: Cube
    sat: bool
    from_cache: bool = False


# ---------------------------------------------------------------------- #
# Record round-trip (queue transport and cache persistence)
# ---------------------------------------------------------------------- #


def class_result_to_record(result: ClassResult) -> Dict[str, Any]:
    """Serialize a class result to a JSON-native record."""
    return {
        "index": result.index,
        "kind": result.kind,
        "property_name": result.property_name,
        "commitments": result.commitments,
        "terminal": result.terminal,
        "rounds": [
            {
                "cex": cex_to_dict(round_.cex),
                "diagnosis": diagnosis_to_dict(round_.diagnosis),
                "waived_signals": list(round_.waived_signals),
                "solve_s": round_.solve_s,
            }
            for round_ in result.rounds
        ],
        "outcome": outcome_to_dict(result.outcome),
        "diagnosis": diagnosis_to_dict(result.outcome.diagnosis),
    }


def class_result_from_record(
    design: str, record: Dict[str, Any], from_cache: bool = False
) -> ClassResult:
    """Rebuild a class result from a record (queue message or cache entry).

    Raises :class:`ReproError` on malformed payloads so that the cache layer
    can turn the failure into a plain miss.
    """
    try:
        outcome = outcome_from_dict(record["outcome"])
        outcome.diagnosis = diagnosis_from_dict(record.get("diagnosis"))
        rounds = [
            SpuriousRound(
                cex=cex_from_dict(entry.get("cex")),
                diagnosis=diagnosis_from_dict(entry.get("diagnosis")),
                waived_signals=list(entry.get("waived_signals", [])),
                solve_s=entry.get("solve_s", 0.0),
            )
            for entry in record.get("rounds", [])
        ]
        terminal = record["terminal"]
        if terminal not in ("structural", "proven", "cex", "timeout", "error"):
            raise ReproError(f"unknown terminal kind {terminal!r}")
        return ClassResult(
            design=design,
            index=record["index"],
            kind=record["kind"],
            property_name=record["property_name"],
            commitments=record["commitments"],
            terminal=terminal,
            outcome=outcome,
            rounds=rounds,
            from_cache=from_cache,
        )
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise ReproError(f"malformed class record: {error}") from error


def _cube_from_record(entry: Any) -> Cube:
    cube = []
    for literal in entry:
        instance, time, signal, bit, value = literal
        cube.append((int(instance), int(time), str(signal), int(bit), int(value)))
    return tuple(cube)


def split_result_to_record(split: SplitResult) -> Dict[str, Any]:
    """Serialize a split result (queue transport and split cache entries)."""
    return {
        "index": split.index,
        "kind": split.kind,
        "property_name": split.property_name,
        "commitments": split.commitments,
        "cubes": [[list(literal) for literal in cube] for cube in split.cubes],
        "outcome": dict(split.outcome_template),
    }


def split_result_from_record(design: str, record: Dict[str, Any]) -> SplitResult:
    """Rebuild a split result; raises :class:`ReproError` on malformed data."""
    try:
        cubes = [_cube_from_record(entry) for entry in record["cubes"]]
        outcome = record["outcome"]
        if not cubes or not isinstance(outcome, dict):
            raise ReproError("split record needs a non-empty cube list and an outcome")
        return SplitResult(
            design=design,
            index=record["index"],
            kind=record["kind"],
            property_name=record["property_name"],
            commitments=record["commitments"],
            cubes=cubes,
            outcome_template=dict(outcome),
        )
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise ReproError(f"malformed split record: {error}") from error


def cube_verdict_to_record(verdict: CubeVerdict) -> Dict[str, Any]:
    """Serialize a cube verdict (queue transport and per-cube cache entries)."""
    return {
        "index": verdict.index,
        "cube": [list(literal) for literal in verdict.cube],
        "sat": bool(verdict.sat),
    }


def cube_verdict_from_record(
    design: str, record: Dict[str, Any], from_cache: bool = False
) -> CubeVerdict:
    """Rebuild a cube verdict; raises :class:`ReproError` on malformed data."""
    try:
        sat = record["sat"]
        if not isinstance(sat, bool):
            raise ReproError(f"cube verdict 'sat' must be a bool, got {sat!r}")
        return CubeVerdict(
            design=design,
            index=record["index"],
            cube=_cube_from_record(record["cube"]),
            sat=sat,
            from_cache=from_cache,
        )
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise ReproError(f"malformed cube record: {error}") from error


#: Anything a worker may return for one task entry.
TaskEntry = Union[ClassResult, SplitResult, CubeVerdict]


def task_entry_to_record(entry: TaskEntry) -> Dict[str, Any]:
    """Type-tagged union serialization for the executor's result queue."""
    if isinstance(entry, SplitResult):
        return {"entry": "split", **split_result_to_record(entry)}
    if isinstance(entry, CubeVerdict):
        return {"entry": "cube", **cube_verdict_to_record(entry)}
    return {"entry": "class", **class_result_to_record(entry)}


def task_entry_from_record(design: str, record: Dict[str, Any]) -> TaskEntry:
    """Inverse of :func:`task_entry_to_record`; :class:`ReproError` on bad tags."""
    tag = record.get("entry", "class")
    if tag == "split":
        return split_result_from_record(design, record)
    if tag == "cube":
        return cube_verdict_from_record(design, record)
    if tag == "class":
        return class_result_from_record(design, record)
    raise ReproError(f"unknown task entry tag {tag!r}")


# ---------------------------------------------------------------------- #
# Report normalization (determinism comparisons)
# ---------------------------------------------------------------------- #

#: Per-outcome keys whose values legitimately depend on scheduling: how the
#: classes were sharded over workers decides which clauses each solver
#: context had already encoded and learned.
_VOLATILE_OUTCOME_KEYS = (
    "runtime_seconds",
    "sat_conflicts",
    "sat_decisions",
    "cnf_new_clauses",
    "cnf_reused_clauses",
    "solver_calls",
    # Preprocessing telemetry: whether simulation or the solver produced a
    # result (and how much sweeping shrank a cone) legitimately depends on
    # the preprocessing flags and on accumulated per-worker pattern state.
    "sim_falsified",
    "nodes_before",
    "nodes_after",
    "merged_nodes",
    "sweep_s",
    # Cube-and-conquer telemetry: whether a class split (and how many cube
    # verdicts the cache replayed) depends on the budget knobs and on warm
    # cache state, never on the class's semantic outcome.
    "cubes",
    "cubes_cached",
)


def normalized_report_dict(data: Dict[str, Any]) -> Dict[str, Any]:
    """A report dict with volatile performance telemetry stripped.

    Two runs of the same audit — any worker count, cold or warm cache —
    must produce equal normalized dicts; everything removed here is timing
    or solver/executor telemetry by construction.
    """
    normalized = copy.deepcopy(data)
    normalized.pop("total_runtime_seconds", None)
    normalized.pop("solver", None)
    normalized.pop("execution", None)
    normalized.pop("preprocess", None)
    # The phase profile is pure observability output: it exists only when
    # tracing was on, and it is timing by definition.
    normalized.pop("profile", None)
    for outcome in normalized.get("outcomes", []):
        for key in _VOLATILE_OUTCOME_KEYS:
            outcome.pop(key, None)
    return normalized


def normalized_batch_report_dict(data: Dict[str, Any]) -> Dict[str, Any]:
    """Batch-report counterpart of :func:`normalized_report_dict`."""
    normalized = copy.deepcopy(data)
    normalized.pop("total_runtime_seconds", None)
    normalized.pop("execution", None)
    normalized["reports"] = [
        normalized_report_dict(report) for report in normalized.get("reports", [])
    ]
    return normalized
