"""The batch scheduler: plans, shards, merges, and assembles reports.

A :class:`DesignPlan` captures one design's schedule: how many property
classes the run covers, which of them replay instantly from the
:class:`ResultCache`, and how the remaining *misses* are sharded into
:class:`ChunkTask` s.  :func:`run_plans` then drives any number of plans over
one :class:`Executor` and turns the (possibly wildly out-of-order) chunk
outcomes back into the deterministic, typed event stream of
:mod:`repro.core.events`:

* tasks are submitted design-major / class-major, and the executor yields
  outcomes in submission order, so the merge is a plain in-order walk;
* within a design, events are emitted as per-class groups in class order —
  cached replays and freshly computed shards are indistinguishable except
  for their ``from_cache`` flag;
* ``stop_at_first_failure`` trims exactly like the classic serial flow: the
  report covers the contiguous class prefix up to the failing class, and
  the remaining shards of that design are cancelled.

Report assembly (verdict, coverage check, solver/cache/executor accounting)
lives here too, shared by the single-design flow and multi-design batches.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.config import DetectionConfig
from repro.core.coverage import check_signal_coverage
from repro.core.events import RunEvent, RunFinished, RunStarted
from repro.core.report import (
    DetectionReport,
    PropertyOutcome,
    Verdict,
    outcome_from_dict,
)
from repro.core.unroll import sequential_output_classes
from repro.errors import ConfigError, ReproError
from repro.exec.cache import ResultCache
from repro.exec.executor import ChunkOutcome, ChunkTask, CubeTask, Executor
from repro.exec.fingerprint import (
    class_cache_key,
    config_fingerprint,
    cube_cache_key,
    module_fingerprint,
    pair_module_fingerprint,
    split_cache_key,
)
from repro.exec.records import (
    ClassResult,
    CubeVerdict,
    SplitResult,
    class_result_from_record,
    class_result_to_record,
    cube_verdict_from_record,
    cube_verdict_to_record,
    split_result_from_record,
    split_result_to_record,
)
from repro.exec.worker import WorkUnit, resolved_backend_name
from repro.ipc.engine import PropertyCheckResult
from repro.ipc.prop import IntervalProperty
from repro.obs import trace as _obs_trace
from repro.rtl.fanout import FanoutAnalysis, compute_fanout_classes
from repro.rtl.ir import Module
from repro.rtl.netlist import DependencyGraph


def shard_indices(
    indices: Sequence[int], jobs: int, max_shards: Optional[int] = None
) -> List[Tuple[int, ...]]:
    """Split class indices into contiguous shards sized for ``jobs`` workers.

    Serial execution shards per class (maximum laziness for streaming
    consumers); parallel execution aims for ``max_shards`` shards (default
    ~4 per worker) so the shared queue always has shards left to steal when
    one worker's classes settle faster than another's.  A multi-design
    batch passes a smaller budget per design — the designs themselves
    already provide stealing granularity, and coarser shards keep each
    worker from paying the per-design engine setup for every design in the
    batch.  Shards never span a gap (a cached class in the middle), so
    every shard is a contiguous run of misses.
    """
    ordered = sorted(indices)
    if not ordered:
        return []
    runs: List[List[int]] = [[ordered[0]]]
    for index in ordered[1:]:
        if index == runs[-1][-1] + 1:
            runs[-1].append(index)
        else:
            runs.append([index])
    if jobs <= 1:
        chunk_size = 1
    else:
        target = max_shards if max_shards is not None else jobs * 4
        target = max(1, target)
        chunk_size = max(1, -(-len(ordered) // target))  # ceil division
    shards: List[Tuple[int, ...]] = []
    for run in runs:
        for start in range(0, len(run), chunk_size):
            shards.append(tuple(run[start : start + chunk_size]))
    return shards


def quarantined_class_result(
    name: str,
    config: DetectionConfig,
    index: int,
    kind: Optional[str] = None,
    property_name: Optional[str] = None,
    commitments: int = 0,
) -> ClassResult:
    """Synthesize the inconclusive result of a quarantined class.

    A class lands here when every worker process that picked its task up
    died before reporting (the retry budget ``config.task_retries`` is
    exhausted).  ``holds=True`` keeps the crash from masquerading as a
    detection; the ``status="error"`` marker forces the run's verdict down
    to ``inconclusive`` and keeps the outcome out of the result cache.  The
    property name is a placeholder — the worker that would have built the
    real property is exactly the thing that kept dying.
    """
    if kind is None:
        if config.mode == "sequential":
            kind = "sequential"
        else:
            kind = "init" if index == 0 else "fanout"
    if property_name is None:
        property_name = f"quarantined_class_{index}"
    result = PropertyCheckResult(
        prop=IntervalProperty(
            name=property_name,
            description=(
                f"class abandoned: the worker process holding its task died "
                f"{config.task_retries + 1} time(s)"
            ),
        ),
        holds=True,
    )
    outcome = PropertyOutcome(kind=kind, index=index, result=result, status="error")
    return ClassResult(
        design=name,
        index=index,
        kind=kind,
        property_name=property_name,
        commitments=commitments,
        terminal="error",
        outcome=outcome,
        retries=config.task_retries,
    )


@dataclass
class DesignPlan:
    """One design's schedule: replays from cache plus shards of misses.

    ``depth`` is the number of *scheduled property classes* — the fanout
    placement depth in combinational mode, the number of common
    design/golden outputs in sequential mode (one class per output; the
    cycle bound lives in ``config.depth``).  ``analysis`` is None for
    sequential plans: the fanout partition plays no role there, and
    skipping it keeps cache-warm sequential runs free of structural work.
    """

    key: str
    name: str
    module: Module
    config: DetectionConfig
    analysis: Optional[FanoutAnalysis]
    depth: int
    backend_name: str
    golden: Optional[Module] = None
    graph: Optional[DependencyGraph] = None
    cache: Optional[ResultCache] = None
    cache_keys: Dict[int, str] = field(default_factory=dict)
    replays: Dict[int, ClassResult] = field(default_factory=dict)
    #: Classes with a cached *split* record but no final class record: an
    #: interrupted hard proof.  They skip the budgeted monolithic attempt and
    #: go straight to cube reduction, resuming from settled cube verdicts.
    presplit: Dict[int, SplitResult] = field(default_factory=dict)
    miss_indices: List[int] = field(default_factory=list)
    tasks: List[ChunkTask] = field(default_factory=list)
    module_fp: str = ""
    config_fp: str = ""

    @classmethod
    def build(
        cls,
        key: str,
        name: str,
        module: Module,
        config: DetectionConfig,
        analysis: Optional[FanoutAnalysis] = None,
        graph: Optional[DependencyGraph] = None,
        cache: Optional[ResultCache] = None,
        golden: Optional[Module] = None,
    ) -> "DesignPlan":
        if config.mode == "sequential":
            if golden is None:
                raise ConfigError(
                    f"sequential mode needs a golden model for design {name!r}; "
                    f"pass one (benchmarks: a catalogued golden top, CLI: "
                    f"--golden-top) or use the combinational mode"
                )
            # max_class bounds *fanout iterations*; applying it here would
            # silently drop output classes and turn a trojan on a
            # later-declared output into a vacuous SECURE verdict, so
            # sequential schedules always cover every common output.
            depth = len(sequential_output_classes(module, golden))
        else:
            golden = None  # a stray golden model must not leak into cache keys
            if analysis is None:
                analysis = compute_fanout_classes(module, inputs=config.inputs, graph=graph)
            depth = analysis.placement_depth
            if config.max_class is not None:
                depth = min(depth, config.max_class)
        backend_name = resolved_backend_name(config)
        plan = cls(
            key=key,
            name=name,
            module=module,
            config=config,
            analysis=analysis if config.mode != "sequential" else None,
            depth=depth,
            backend_name=backend_name,
            golden=golden,
            graph=graph,
            cache=cache if config.use_cache else None,
        )
        plan._look_up_cache()
        return plan

    def _look_up_cache(self) -> None:
        if self.cache is None:
            self.miss_indices = list(range(self.depth))
            return
        module_fp = module_fingerprint(self.module)
        if self.golden is not None:
            module_fp = pair_module_fingerprint(module_fp, module_fingerprint(self.golden))
        config_fp = config_fingerprint(self.config, self.backend_name)
        self.module_fp = module_fp
        self.config_fp = config_fp
        for index in range(self.depth):
            self.cache_keys[index] = class_cache_key(module_fp, config_fp, index)
        misses: List[int] = []
        for index in range(self.depth):
            record = self.cache.get(self.cache_keys[index])
            if record is None:
                misses.append(index)
                continue
            try:
                self.replays[index] = class_result_from_record(
                    self.name, record, from_cache=True
                )
            except ReproError:
                # A readable entry with an unusable payload: plain miss.
                self.cache.corrupt_skipped += 1
                misses.append(index)
        # A miss may still carry a cached *split* record from an interrupted
        # proof: the class resumes at cube reduction instead of re-running
        # (and possibly re-budgeting) the monolithic attempt.  Split records
        # only exist when the run's semantic config enabled splitting, and
        # the split knobs are part of the config fingerprint, so a
        # ``--no-split`` rerun never sees them.
        still_missing: List[int] = []
        for index in misses:
            record = self.cache.get(split_cache_key(module_fp, config_fp, index))
            if record is None:
                still_missing.append(index)
                continue
            try:
                self.presplit[index] = split_result_from_record(self.name, record)
            except ReproError:
                self.cache.corrupt_skipped += 1
                still_missing.append(index)
        misses = still_missing
        if self.config.stop_at_first_failure:
            failing = [
                index
                for index, result in self.replays.items()
                if not result.outcome.holds
            ]
            if failing:
                # The audit will stop at the first cached failure; classes
                # beyond it were never part of the cold run's report either.
                first_failure = min(failing)
                misses = [index for index in misses if index < first_failure]
        self.miss_indices = misses

    # ------------------------------------------------------------------ #
    # Sharding
    # ------------------------------------------------------------------ #

    @property
    def work_unit(self) -> WorkUnit:
        return WorkUnit(
            key=self.key,
            name=self.name,
            module=self.module,
            config=self.config,
            analysis=self.analysis,
            golden=self.golden,
        )

    def make_tasks(
        self, jobs: int, first_task_id: int, max_shards: Optional[int] = None
    ) -> List[ChunkTask]:
        """Shard this plan's misses into tasks with globally unique ids."""
        self.tasks = [
            ChunkTask(
                task_id=first_task_id + offset,
                design_key=self.key,
                indices=shard,
                stop_on_failure=self.config.stop_at_first_failure,
            )
            for offset, shard in enumerate(
                shard_indices(self.miss_indices, jobs, max_shards)
            )
        ]
        return self.tasks

    # ------------------------------------------------------------------ #
    # Report assembly and cache write-back
    # ------------------------------------------------------------------ #

    def assemble_report(
        self,
        merged: List[ClassResult],
        chunk_stats: List[ChunkOutcome],
        workers: int,
        elapsed: float,
    ) -> DetectionReport:
        report = DetectionReport(
            design=self.name,
            verdict=Verdict.SECURE,
            fanout_analysis=self.analysis,
        )
        for result in merged:
            outcome = result.outcome
            if not outcome.holds:
                report.verdict = Verdict.TROJAN_SUSPECTED
                report.detected_by = outcome.label
                report.counterexample = outcome.result.cex
                report.diagnosis = outcome.diagnosis
        report.outcomes = [result.outcome for result in merged]
        report.spurious_resolved = sum(
            outcome.resolved_spurious for outcome in report.outcomes
        )

        # Solver accounting: per-chunk work deltas sum across workers; the
        # persistent-CNF size is the largest snapshot each worker's context
        # reached for this design.
        report.solver_backend = (
            str(chunk_stats[0].stats.get("backend", self.backend_name))
            if chunk_stats
            else self.backend_name
        )
        report.solver_calls = sum(int(cs.stats.get("solver_calls", 0)) for cs in chunk_stats)
        report.solver_conflicts = sum(int(cs.stats.get("conflicts", 0)) for cs in chunk_stats)
        report.solver_restarts = sum(int(cs.stats.get("restarts", 0)) for cs in chunk_stats)
        report.solver_learned_clauses = sum(
            int(cs.stats.get("learned_clauses", 0)) for cs in chunk_stats
        )
        report.solver_deleted_clauses = sum(
            int(cs.stats.get("deleted_clauses", 0)) for cs in chunk_stats
        )
        per_worker_cnf: Dict[str, int] = {}
        for cs in chunk_stats:
            snapshot = int(cs.stats.get("cnf_clauses", 0))
            per_worker_cnf[cs.worker] = max(per_worker_cnf.get(cs.worker, 0), snapshot)
        report.cnf_clauses = sum(per_worker_cnf.values())
        report.cnf_clauses_reused = sum(
            outcome.result.cnf_reused_clauses for outcome in report.outcomes
        )

        # Preprocessing accounting: aggregated from the outcomes themselves,
        # so cache replays report the telemetry of the run that proved them.
        results = [outcome.result for outcome in report.outcomes]
        report.preprocess_nodes_before = sum(r.nodes_before for r in results)
        report.preprocess_nodes_after = sum(r.nodes_after for r in results)
        report.preprocess_merged_nodes = sum(r.merged_nodes for r in results)
        report.preprocess_sim_falsified = sum(1 for r in results if r.sim_falsified)
        report.preprocess_sweep_s = sum(r.sweep_seconds for r in results)

        # Phase profile: aggregated from the worker-side spans each chunk
        # carried home.  Attached only when tracing was requested — it is a
        # pure observability payload, stripped by normalized_report_dict.
        if self.config.trace:
            spans = [
                event
                for cs in chunk_stats
                for event in cs.stats.get("spans", ())
            ]
            report.profile = _obs_trace.phase_profile(spans)

        report.workers = workers
        if self.cache is not None:
            report.cache_hits = sum(1 for result in merged if result.from_cache)
            report.cache_misses = len(merged) - report.cache_hits

        # Per-design runtime: in a pooled batch, workers may solve this
        # design while the consumer is still merging an earlier one, so the
        # consumer-side merge window alone would misattribute the cost.
        # Charge the design at least its workers' own wall time.
        solve_elapsed = sum(float(cs.stats.get("elapsed_s", 0.0)) for cs in chunk_stats)
        elapsed = max(elapsed, solve_elapsed)

        stopped_early = self.config.stop_at_first_failure and any(
            not result.outcome.holds for result in merged
        )
        if not stopped_early and self.analysis is not None:
            # Coverage check (Algorithm 1, line 17): only meaningful when the
            # run was not cut short by a failing property.  Sequential plans
            # (analysis is None) have no fanout partition to cover — their
            # soundness story is the bound, reported per outcome instead.
            graph = self.graph if self.graph is not None else DependencyGraph(self.module)
            coverage = check_signal_coverage(self.module, self.analysis, graph)
            report.coverage = coverage
            if report.verdict is Verdict.SECURE and not coverage.complete:
                report.verdict = Verdict.UNCOVERED_SIGNALS
                report.detected_by = "coverage check"
        if report.verdict is Verdict.SECURE and any(
            outcome.status != "ok" for outcome in report.outcomes
        ):
            # Fail closed: a run that could not settle every scheduled class
            # (timeouts, quarantined crashes) must not claim the design
            # secure.  A genuine detection or coverage gap still outranks
            # the unsettled classes — those verdicts stand on the classes
            # that *did* settle.
            report.verdict = Verdict.INCONCLUSIVE
        report.total_runtime_seconds = elapsed
        return report

    def write_back(self, merged: List[ClassResult]) -> None:
        """Persist freshly computed class results to the cache."""
        if self.cache is None:
            return
        for result in merged:
            if result.from_cache:
                continue
            if result.outcome.status != "ok":
                # Timeouts and quarantines are artifacts of *this* run's
                # execution (deadlines, crashes), not verdicts about the
                # design; they must never replay from the cache.
                continue
            key = self.cache_keys.get(result.index)
            if key is not None:
                self.cache.put(key, class_result_to_record(result))


def run_plans(plans: Sequence[DesignPlan], executor: Executor) -> Iterator[RunEvent]:
    """Execute every plan over ``executor``, yielding the merged event stream.

    Designs are processed in plan order; their shards are all submitted up
    front, so with a process pool the executor is free to settle design N+1's
    classes while design N's stragglers finish.  The event stream and the
    reports depend only on (plans, worker results) — never on completion
    order.

    This is also where cube-and-conquer reduction happens: a worker that
    returns a :class:`SplitResult` instead of a final verdict has its class
    fanned out into :class:`CubeTask` s (submitted *urgent*, so idle workers
    steal cubes before remaining shards), and the cube verdicts merge back
    deterministically — any SAT cube sends the class to a canonical
    re-settle that produces the witness, all-UNSAT proves it from the
    split's pre-built outcome template.  Per-cube verdicts are cached
    individually, so an interrupted hard proof resumes from its settled
    cubes.
    """
    next_task_id = 0
    all_tasks: List[ChunkTask] = []
    # Shard budget per design: a lone design gets ~4 shards per worker; in a
    # batch the designs themselves provide stealing granularity, so each
    # design's budget shrinks accordingly (a big batch runs one shard per
    # design, which also minimizes duplicated per-design engine setup).
    shard_budget = max(1, -(-executor.workers * 4 // max(1, len(plans))))
    for plan in plans:
        tasks = plan.make_tasks(executor.workers, next_task_id, shard_budget)
        next_task_id += len(tasks)
        all_tasks.extend(tasks)

    if all_tasks:
        executor.submit(all_tasks)
    workers = executor.effective_workers(len(all_tasks))

    def consume_stats(outcome: ChunkOutcome, chunk_stats: List[ChunkOutcome]) -> None:
        if outcome.skipped:
            return
        chunk_stats.append(outcome)
        # Worker-side spans merge into the ambient tracer (if any) so one
        # traced run yields one timeline.
        spans = outcome.stats.get("spans")
        if spans:
            _obs_trace.absorb(spans)

    def reduce_split(
        plan: DesignPlan, split: SplitResult, chunk_stats: List[ChunkOutcome]
    ) -> ClassResult:
        """Merge one split class's cube verdicts into a final ClassResult."""
        nonlocal next_task_id
        verdicts: List[CubeVerdict] = []
        pending: List[Tuple[CubeTask, Optional[str]]] = []
        for cube in split.cubes:
            key: Optional[str] = None
            if plan.cache is not None:
                key = cube_cache_key(plan.module_fp, plan.config_fp, split.index, cube)
                record = plan.cache.get(key)
                if record is not None:
                    try:
                        verdicts.append(
                            cube_verdict_from_record(plan.name, record, from_cache=True)
                        )
                        continue
                    except ReproError:
                        plan.cache.corrupt_skipped += 1
            task = CubeTask(
                task_id=next_task_id,
                design_key=plan.key,
                index=split.index,
                cube=cube,
            )
            next_task_id += 1
            pending.append((task, key))
        if pending:
            executor.submit([task for task, _ in pending], urgent=True)
        for task, key in pending:
            outcome = executor.wait(task.task_id)
            if outcome.quarantined:
                # Every worker that picked this cube up died: the class
                # cannot be completed; degrade it whole to an inconclusive
                # error result (other pending cube outcomes are abandoned).
                return quarantined_class_result(
                    plan.name,
                    plan.config,
                    split.index,
                    kind=split.kind,
                    property_name=split.property_name,
                    commitments=split.commitments,
                )
            if outcome.skipped or not outcome.results:
                raise ReproError(
                    f"cube task for class {split.index} of {plan.name!r} "
                    f"returned no verdict"
                )
            consume_stats(outcome, chunk_stats)
            verdict = outcome.results[0]
            verdicts.append(verdict)
            if plan.cache is not None and key is not None:
                plan.cache.put(key, cube_verdict_to_record(verdict))
        cached_hits = sum(1 for verdict in verdicts if verdict.from_cache)
        if any(verdict.sat for verdict in verdicts):
            # Some cube holds a counterexample.  The witness the report
            # carries must be the canonical one, so the class re-settles
            # monolithically (unbudgeted) exactly like a failing class does
            # in a no-split run.
            task = ChunkTask(
                task_id=next_task_id,
                design_key=plan.key,
                indices=(split.index,),
                stop_on_failure=False,
                allow_split=False,
            )
            next_task_id += 1
            executor.submit([task], urgent=True)
            outcome = executor.wait(task.task_id)
            if outcome.quarantined:
                return quarantined_class_result(
                    plan.name,
                    plan.config,
                    split.index,
                    kind=split.kind,
                    property_name=split.property_name,
                    commitments=split.commitments,
                )
            consume_stats(outcome, chunk_stats)
            result = next(
                (
                    entry
                    for entry in outcome.results
                    if isinstance(entry, ClassResult) and entry.index == split.index
                ),
                None,
            )
            if result is None:
                raise ReproError(
                    f"re-settle of split class {split.index} of {plan.name!r} "
                    f"returned no result"
                )
        else:
            # The cubes partition the full assignment space over the chosen
            # split bits, so all-UNSAT is a proof of the class.  The
            # template's deterministic fields match what a monolithic UNSAT
            # would have reported (they are fixed before preprocessing).
            result = ClassResult(
                design=plan.name,
                index=split.index,
                kind=split.kind,
                property_name=split.property_name,
                commitments=split.commitments,
                terminal="proven",
                outcome=outcome_from_dict(dict(split.outcome_template)),
            )
        result.outcome.cubes = len(split.cubes)
        result.outcome.cubes_cached = cached_hits
        return result

    for plan in plans:
        started = _time.perf_counter()
        yield RunStarted(
            design=plan.name,
            scheduled_classes=plan.depth,
            solver_backend=plan.backend_name,
            workers=workers,
        )
        index_to_task = {
            index: task for task in plan.tasks for index in task.indices
        }
        merged: List[ClassResult] = []
        chunk_stats: List[ChunkOutcome] = []
        outcomes_by_task: Dict[int, ChunkOutcome] = {}
        for index in range(plan.depth):
            result: Optional[ClassResult] = None
            if index in plan.replays:
                result = plan.replays[index]
            elif index in plan.presplit:
                result = reduce_split(plan, plan.presplit[index], chunk_stats)
            elif index in index_to_task:
                task = index_to_task[index]
                if task.task_id not in outcomes_by_task:
                    outcome = executor.wait(task.task_id)
                    outcomes_by_task[task.task_id] = outcome
                    consume_stats(outcome, chunk_stats)
                outcome = outcomes_by_task[task.task_id]
                entry = next(
                    (entry for entry in outcome.results if entry.index == index), None
                )
                if entry is None and outcome.quarantined:
                    result = quarantined_class_result(plan.name, plan.config, index)
                elif isinstance(entry, SplitResult):
                    if plan.cache is not None:
                        plan.cache.put(
                            split_cache_key(plan.module_fp, plan.config_fp, index),
                            split_result_to_record(entry),
                        )
                    result = reduce_split(plan, entry, chunk_stats)
                else:
                    result = entry
            if result is None:
                # Neither cached nor scheduled: scheduling ended at an
                # earlier (cached) failure, or a shard stopped after one.
                break
            merged.append(result)
            for event in result.events():
                yield event
            if not result.outcome.holds and plan.config.stop_at_first_failure:
                executor.cancel_design(plan.key)
                break
        elapsed = _time.perf_counter() - started
        report = plan.assemble_report(merged, chunk_stats, workers, elapsed)
        # Fault accounting is executor-global (a pooled batch cannot
        # attribute a worker death to one design), so every report of the
        # run carries the run-level totals; normalization strips them.
        report.workers_lost = executor.workers_lost
        report.tasks_retried = executor.tasks_retried
        plan.write_back(merged)
        yield RunFinished(
            design=plan.name, report=report, elapsed_s=report.total_runtime_seconds
        )
