"""Executors: where chunk tasks run — inline, or on a worker-process pool.

An :class:`Executor` consumes :class:`ChunkTask` shards (one design key plus
a tuple of property-class indices) and yields one :class:`ChunkOutcome` per
task **in submission order**, regardless of completion order.  That ordering
contract is what lets the scheduler merge events and assemble reports
deterministically while the underlying execution is free to be as
out-of-order as the hardware allows.

* :class:`SerialExecutor` runs each task inline when the consumer pulls it —
  the lazy, streaming behaviour of the classic single-process flow.
* :class:`ProcessPoolExecutor` runs tasks on ``--jobs`` forked worker
  processes pulling from one shared queue.  The shared queue *is* the
  work-stealing mechanism: an idle worker steals the next pending shard no
  matter which design it belongs to.  Each worker keeps one
  :class:`DesignWorkContext` per design, so the per-worker ``IpcEngine`` /
  ``SatContext`` affinity preserves clause reuse inside a worker.  Results
  travel back as JSON-native records (:mod:`repro.exec.records`).

``cancel_design`` makes abandoning a design cheap after a failing class:
tasks not yet handed out are dropped (serial: skipped inline; pool: never
enqueued thanks to the bounded feeder).
"""

from __future__ import annotations

import multiprocessing
import queue as _queue
import traceback
import warnings
from abc import ABC, abstractmethod
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

#: Per-worker bound on live design contexts.  Each context holds a full
#: IpcEngine (AIG + CNF + solver state), so an unbounded cache would grow
#: with batch size; least-recently-used designs are evicted beyond this.
MAX_CONTEXTS_PER_WORKER = 4

from repro.errors import ReproError
from repro.exec.records import ClassResult, class_result_from_record, class_result_to_record
from repro.exec.worker import DesignWorkContext, WorkUnit
from repro.ipc.engine import IpcEngine
from repro.rtl.fanout import FanoutAnalysis
from repro.rtl.netlist import DependencyGraph


@dataclass(frozen=True)
class ChunkTask:
    """One schedulable shard: a run of property classes of one design."""

    task_id: int
    design_key: str
    indices: Tuple[int, ...]
    stop_on_failure: bool


@dataclass
class ChunkOutcome:
    """The settled results of one chunk task plus solver-work accounting."""

    task_id: int
    design_key: str
    results: List[ClassResult]
    stats: Dict[str, object]
    worker: str
    skipped: bool = False


@dataclass
class ContextSeed:
    """Pre-built collaborators for an in-process work context.

    The serial executor accepts seeds so that a :class:`TrojanDetectionFlow`
    can share its own engine/analysis/graph with the context that settles
    its classes — keeping ``flow.engine`` meaningful and avoiding duplicate
    structural analysis.  Pool workers never see seeds (engines do not cross
    process boundaries); they build their own collaborators.
    """

    engine_factory: Optional[Callable[[], IpcEngine]] = None
    analysis: Optional[FanoutAnalysis] = None
    graph: Optional[DependencyGraph] = None


class ContextPool:
    """LRU-bounded per-design work contexts (one pool per worker).

    Each context holds a full engine (AIG + CNF + solver state), so the
    pool is what keeps worker memory bounded on large batches while still
    giving recently used designs their clause-reuse affinity.
    """

    def __init__(
        self,
        factory: Callable[[str], DesignWorkContext],
        capacity: int = MAX_CONTEXTS_PER_WORKER,
    ) -> None:
        self._factory = factory
        self._capacity = capacity
        self._contexts: "OrderedDict[str, DesignWorkContext]" = OrderedDict()

    def get(self, design_key: str) -> DesignWorkContext:
        context = self._contexts.get(design_key)
        if context is None:
            context = self._factory(design_key)
            self._contexts[design_key] = context
            while len(self._contexts) > self._capacity:
                self._contexts.popitem(last=False)
        else:
            self._contexts.move_to_end(design_key)
        return context

    def clear(self) -> None:
        self._contexts.clear()

    def __len__(self) -> int:
        return len(self._contexts)


class Executor(ABC):
    """Runs chunk tasks; yields outcomes in submission order."""

    @property
    @abstractmethod
    def workers(self) -> int:
        """Configured parallelism (the sizing intent, e.g. for shard budgets)."""

    def effective_workers(self, task_count: int) -> int:
        """Workers that will actually run ``task_count`` tasks.

        What reports should carry: a pool never forks more processes than
        there are tasks, and a fully cache-warm run forks none at all.
        """
        return self.workers

    @abstractmethod
    def run(self, tasks: Sequence[ChunkTask]) -> Iterator[ChunkOutcome]:
        """Execute ``tasks``, yielding one outcome per task in task order."""

    @abstractmethod
    def cancel_design(self, design_key: str) -> None:
        """Best-effort: skip tasks of ``design_key`` not yet handed out."""

    @abstractmethod
    def close(self) -> None:
        """Release workers and per-design state; idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process executor: one task at a time, computed when pulled."""

    def __init__(
        self,
        units: Dict[str, WorkUnit],
        seeds: Optional[Dict[str, ContextSeed]] = None,
    ) -> None:
        self._units = units
        self._seeds = seeds or {}
        self._contexts = ContextPool(self._build_context)
        self._cancelled: Set[str] = set()

    @property
    def workers(self) -> int:
        return 1

    def _build_context(self, design_key: str) -> DesignWorkContext:
        seed = self._seeds.get(design_key, ContextSeed())
        engine = seed.engine_factory() if seed.engine_factory is not None else None
        return DesignWorkContext(
            self._units[design_key],
            engine=engine,
            analysis=seed.analysis,
            graph=seed.graph,
        )

    def run(self, tasks: Sequence[ChunkTask]) -> Iterator[ChunkOutcome]:
        for task in tasks:
            if task.design_key in self._cancelled:
                yield ChunkOutcome(
                    task_id=task.task_id,
                    design_key=task.design_key,
                    results=[],
                    stats={},
                    worker="serial-0",
                    skipped=True,
                )
                continue
            context = self._contexts.get(task.design_key)
            results, stats = context.run_chunk(task.indices, task.stop_on_failure)
            yield ChunkOutcome(
                task_id=task.task_id,
                design_key=task.design_key,
                results=results,
                stats=stats,
                worker="serial-0",
            )

    def cancel_design(self, design_key: str) -> None:
        self._cancelled.add(design_key)

    def close(self) -> None:
        self._contexts.clear()


# ---------------------------------------------------------------------- #
# Process pool
# ---------------------------------------------------------------------- #


def _pool_worker_main(worker_name, units, task_queue, result_queue) -> None:
    """Worker loop: steal tasks, settle them with per-design engine affinity.

    Runs in the child process.  Every exception is reported as a message,
    never as a dead worker, so the parent can fail loudly with the original
    traceback.
    """
    # Fork copies the parent's contextvars: a parent-installed tracer or
    # progress sink would silently collect into objects whose consumers live
    # on the other side of the fork.  Worker spans travel through the chunk
    # stats channel instead (run_chunk installs its own tracer), and worker
    # heartbeats are dropped by design — they cannot reach a live consumer.
    from repro.obs import progress as _obs_progress
    from repro.obs import trace as _obs_trace

    _obs_trace.clear()
    _obs_progress.clear()
    contexts = ContextPool(lambda design_key: DesignWorkContext(units[design_key]))
    while True:
        task = task_queue.get()
        if task is None:
            break
        try:
            context = contexts.get(task.design_key)
            results, stats = context.run_chunk(task.indices, task.stop_on_failure)
            records = [class_result_to_record(result) for result in results]
            result_queue.put((task.task_id, task.design_key, records, stats, worker_name, None))
        except Exception:  # noqa: BLE001 - crossing a process boundary
            result_queue.put(
                (task.task_id, task.design_key, [], {}, worker_name, traceback.format_exc())
            )


class ProcessPoolExecutor(Executor):
    """Multi-process executor over one shared work-stealing task queue.

    Workers are forked lazily on the first :meth:`run` call (fork keeps the
    unit table out of the pickle path and inherits the parent's imports).
    The feeder keeps at most ``2 × workers`` tasks in flight, which bounds
    queue memory and gives :meth:`cancel_design` a window to drop shards
    that a failing class made pointless.
    """

    def __init__(self, units: Dict[str, WorkUnit], jobs: int) -> None:
        if jobs < 2:
            raise ReproError(f"ProcessPoolExecutor needs jobs >= 2, got {jobs}")
        self._units = units
        self._jobs = jobs
        self._mp = multiprocessing.get_context("fork")
        self._processes: List[multiprocessing.Process] = []
        self._task_queue = None
        self._result_queue = None
        self._cancelled: Set[str] = set()
        self._closed = False

    @property
    def workers(self) -> int:
        return self._jobs

    def effective_workers(self, task_count: int) -> int:
        if task_count <= 0:
            return 1  # nothing to fork for (e.g. a fully cache-warm run)
        return min(self._jobs, task_count)

    def _start(self, worker_count: int) -> None:
        self._task_queue = self._mp.Queue()
        self._result_queue = self._mp.Queue()
        for worker_index in range(worker_count):
            process = self._mp.Process(
                target=_pool_worker_main,
                args=(
                    f"worker-{worker_index}",
                    self._units,
                    self._task_queue,
                    self._result_queue,
                ),
                daemon=True,
            )
            process.start()
            self._processes.append(process)

    def run(self, tasks: Sequence[ChunkTask]) -> Iterator[ChunkOutcome]:
        if self._closed:
            raise ReproError("executor is closed")
        if not tasks:
            return
        worker_count = min(self._jobs, len(tasks))
        if not self._processes:
            self._start(worker_count)
        pending = deque(tasks)
        completed: Dict[int, ChunkOutcome] = {}
        outstanding = 0
        max_outstanding = 2 * len(self._processes)

        def feed() -> None:
            nonlocal outstanding
            while pending and outstanding < max_outstanding:
                task = pending.popleft()
                if task.design_key in self._cancelled:
                    completed[task.task_id] = ChunkOutcome(
                        task_id=task.task_id,
                        design_key=task.design_key,
                        results=[],
                        stats={},
                        worker="cancelled",
                        skipped=True,
                    )
                    continue
                self._task_queue.put(task)
                outstanding += 1

        try:
            feed()
            for task in tasks:
                while task.task_id not in completed:
                    feed()
                    try:
                        message = self._result_queue.get(timeout=5.0)
                    except _queue.Empty:
                        # Workers only exit after the close() sentinel, so a
                        # dead process mid-run means a hard crash (OOM kill,
                        # native segfault).  Its task would never complete —
                        # fail loudly instead of waiting forever, even while
                        # other workers are still alive.
                        dead = [p for p in self._processes if not p.is_alive()]
                        if outstanding and dead:
                            names = ", ".join(p.name or "?" for p in dead)
                            raise ReproError(
                                f"parallel worker process(es) died without reporting "
                                f"a result ({names}); rerun with --jobs 1 to "
                                f"reproduce the failure inline"
                            ) from None
                        continue
                    task_id, design_key, records, stats, worker, error = message
                    outstanding -= 1
                    if error is not None:
                        raise ReproError(
                            f"parallel worker {worker} failed while settling "
                            f"{design_key!r}:\n{error}"
                        )
                    name = self._units[design_key].name
                    completed[task_id] = ChunkOutcome(
                        task_id=task_id,
                        design_key=design_key,
                        results=[
                            class_result_from_record(name, record) for record in records
                        ],
                        stats=stats,
                        worker=worker,
                    )
                yield completed.pop(task.task_id)
        finally:
            self.close()

    def cancel_design(self, design_key: str) -> None:
        self._cancelled.add(design_key)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._task_queue is not None:
            for _ in self._processes:
                try:
                    self._task_queue.put(None)
                except (OSError, ValueError):
                    break
        for process in self._processes:
            process.join(timeout=2.0)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        for q in (self._task_queue, self._result_queue):
            if q is not None:
                q.cancel_join_thread()
                q.close()
        self._processes = []


def create_executor(
    jobs: int,
    units: Dict[str, WorkUnit],
    seeds: Optional[Dict[str, ContextSeed]] = None,
) -> Executor:
    """Executor factory: serial for ``jobs <= 1``, forked pool otherwise.

    Platforms without the ``fork`` start method (e.g. Windows) degrade to
    the serial executor with a warning rather than failing the audit.
    """
    if jobs <= 1:
        return SerialExecutor(units, seeds=seeds)
    if "fork" not in multiprocessing.get_all_start_methods():
        warnings.warn(
            "multiprocessing 'fork' start method unavailable; "
            "running with --jobs 1 (serial) instead",
            RuntimeWarning,
            stacklevel=2,
        )
        return SerialExecutor(units, seeds=seeds)
    return ProcessPoolExecutor(units, jobs)
