"""Executors: where chunk tasks run — inline, or on a worker-process pool.

An :class:`Executor` consumes :class:`ChunkTask` shards (one design key plus
a tuple of property-class indices) and yields one :class:`ChunkOutcome` per
task **in submission order**, regardless of completion order.  That ordering
contract is what lets the scheduler merge events and assemble reports
deterministically while the underlying execution is free to be as
out-of-order as the hardware allows.

* :class:`SerialExecutor` runs each task inline when the consumer pulls it —
  the lazy, streaming behaviour of the classic single-process flow.
* :class:`ProcessPoolExecutor` runs tasks on ``--jobs`` forked worker
  processes pulling from one shared queue.  The shared queue *is* the
  work-stealing mechanism: an idle worker steals the next pending shard no
  matter which design it belongs to.  Each worker keeps one
  :class:`DesignWorkContext` per design, so the per-worker ``IpcEngine`` /
  ``SatContext`` affinity preserves clause reuse inside a worker.  Results
  travel back as JSON-native records (:mod:`repro.exec.records`).

``cancel_design`` makes abandoning a design cheap after a failing class:
tasks not yet handed out are dropped (serial: skipped inline; pool: never
enqueued thanks to the bounded feeder).
"""

from __future__ import annotations

import multiprocessing
import os
import queue as _queue
import signal
import traceback
import warnings
from abc import ABC, abstractmethod
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

#: Per-worker bound on live design contexts.  Each context holds a full
#: IpcEngine (AIG + CNF + solver state), so an unbounded cache would grow
#: with batch size; least-recently-used designs are evicted beyond this.
MAX_CONTEXTS_PER_WORKER = 4

from repro.errors import ReproError
from repro.exec import faults as _faults
from repro.exec.records import (
    Cube,
    TaskEntry,
    task_entry_from_record,
    task_entry_to_record,
)
from repro.exec.worker import DesignWorkContext, WorkUnit
from repro.ipc.engine import IpcEngine
from repro.rtl.fanout import FanoutAnalysis
from repro.rtl.netlist import DependencyGraph


@dataclass(frozen=True)
class ChunkTask:
    """One schedulable shard: a run of property classes of one design.

    ``allow_split`` lets workers turn a budget-exhausted class into a
    :class:`~repro.exec.records.SplitResult` (the default); the reducer's
    canonical re-settle of a cube-SAT class sets it False to force a final
    verdict.
    """

    task_id: int
    design_key: str
    indices: Tuple[int, ...]
    stop_on_failure: bool
    allow_split: bool = True


@dataclass(frozen=True)
class CubeTask:
    """One schedulable cube: an assumption-prefix slice of one hard class.

    Spawned dynamically mid-run when a class's monolithic check exhausts its
    conflict budget.  The scheduler submits cubes *urgent* so they re-enter
    the shared work-stealing queue ahead of the remaining shards — their
    verdicts unblock a class the reducer is already waiting on.
    """

    task_id: int
    design_key: str
    index: int
    cube: Cube


#: Anything the work-stealing queue schedules.  ``ChunkTask`` was the whole
#: story when "class" and "work unit" were synonyms; cube-and-conquer makes
#: the unit of work splittable, so the queue now carries both.
Task = Union[ChunkTask, CubeTask]


@dataclass
class ChunkOutcome:
    """The settled results of one task plus solver-work accounting.

    ``results`` entries are :class:`ClassResult`/:class:`SplitResult` for
    chunk tasks and a single :class:`CubeVerdict` for cube tasks — the tagged
    record transport (:func:`repro.exec.records.task_entry_to_record`) keeps
    the three indistinguishable to the queue machinery.
    """

    task_id: int
    design_key: str
    results: List[TaskEntry]
    stats: Dict[str, object]
    worker: str
    skipped: bool = False
    #: True when the task's worker died repeatedly and the retry budget ran
    #: out: ``results`` is empty and the scheduler settles the task's classes
    #: as inconclusive ``error`` outcomes instead of aborting the run.
    quarantined: bool = False


@dataclass
class ContextSeed:
    """Pre-built collaborators for an in-process work context.

    The serial executor accepts seeds so that a :class:`TrojanDetectionFlow`
    can share its own engine/analysis/graph with the context that settles
    its classes — keeping ``flow.engine`` meaningful and avoiding duplicate
    structural analysis.  Pool workers never see seeds (engines do not cross
    process boundaries); they build their own collaborators.
    """

    engine_factory: Optional[Callable[[], IpcEngine]] = None
    analysis: Optional[FanoutAnalysis] = None
    graph: Optional[DependencyGraph] = None


class ContextPool:
    """LRU-bounded per-design work contexts (one pool per worker).

    Each context holds a full engine (AIG + CNF + solver state), so the
    pool is what keeps worker memory bounded on large batches while still
    giving recently used designs their clause-reuse affinity.
    """

    def __init__(
        self,
        factory: Callable[[str], DesignWorkContext],
        capacity: int = MAX_CONTEXTS_PER_WORKER,
    ) -> None:
        self._factory = factory
        self._capacity = capacity
        self._contexts: "OrderedDict[str, DesignWorkContext]" = OrderedDict()

    def get(self, design_key: str) -> DesignWorkContext:
        context = self._contexts.get(design_key)
        if context is None:
            context = self._factory(design_key)
            self._contexts[design_key] = context
            while len(self._contexts) > self._capacity:
                self._contexts.popitem(last=False)
        else:
            self._contexts.move_to_end(design_key)
        return context

    def clear(self) -> None:
        self._contexts.clear()

    def __len__(self) -> int:
        return len(self._contexts)


class Executor(ABC):
    """Runs chunk tasks; yields outcomes in submission order."""

    #: Worker processes that died mid-run (pool executors count these; the
    #: serial executor cannot lose a worker).  Reports carry both counters
    #: in their ``execution`` block.
    workers_lost: int = 0
    #: Tasks requeued onto a respawned worker after their worker died.
    tasks_retried: int = 0

    @property
    @abstractmethod
    def workers(self) -> int:
        """Configured parallelism (the sizing intent, e.g. for shard budgets)."""

    def effective_workers(self, task_count: int) -> int:
        """Workers that will actually run ``task_count`` tasks.

        What reports should carry: a pool never forks more processes than
        there are tasks, and a fully cache-warm run forks none at all.
        """
        return self.workers

    @abstractmethod
    def submit(self, tasks: Sequence[Task], urgent: bool = False) -> None:
        """Enqueue tasks; they run when capacity (or a ``wait``) demands it.

        ``urgent`` places them *ahead* of all pending work, preserving their
        relative order — the scheduler uses it for dynamically spawned cube
        tasks, whose verdicts gate a class result it is already reducing.
        """

    @abstractmethod
    def wait(self, task_id: int) -> ChunkOutcome:
        """Block until the submitted task ``task_id`` finishes; return its outcome."""

    def run(self, tasks: Sequence[Task]) -> Iterator[ChunkOutcome]:
        """Execute ``tasks``, yielding one outcome per task in task order.

        Convenience wrapper over :meth:`submit`/:meth:`wait` for callers with
        a fixed task list and no mid-run spawning.
        """
        self.submit(tasks)
        for task in tasks:
            yield self.wait(task.task_id)

    @abstractmethod
    def cancel_design(self, design_key: str) -> None:
        """Best-effort: skip tasks of ``design_key`` not yet handed out."""

    @abstractmethod
    def close(self) -> None:
        """Release workers and per-design state; idempotent."""

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class SerialExecutor(Executor):
    """In-process executor: one task at a time, computed when pulled."""

    def __init__(
        self,
        units: Dict[str, WorkUnit],
        seeds: Optional[Dict[str, ContextSeed]] = None,
    ) -> None:
        self._units = units
        self._seeds = seeds or {}
        self._contexts = ContextPool(self._build_context)
        self._cancelled: Set[str] = set()
        self._pending: "deque[Task]" = deque()
        self._done: Dict[int, ChunkOutcome] = {}

    @property
    def workers(self) -> int:
        return 1

    def _build_context(self, design_key: str) -> DesignWorkContext:
        seed = self._seeds.get(design_key, ContextSeed())
        engine = seed.engine_factory() if seed.engine_factory is not None else None
        return DesignWorkContext(
            self._units[design_key],
            engine=engine,
            analysis=seed.analysis,
            graph=seed.graph,
        )

    def submit(self, tasks: Sequence[Task], urgent: bool = False) -> None:
        if urgent:
            self._pending.extendleft(reversed(list(tasks)))
        else:
            self._pending.extend(tasks)

    def wait(self, task_id: int) -> ChunkOutcome:
        if task_id in self._done:
            return self._done.pop(task_id)
        # Lazy, in submission order: nothing runs until a consumer waits, and
        # waiting on task N runs at most the tasks queued before it.
        while self._pending:
            task = self._pending.popleft()
            outcome = self._execute(task)
            if task.task_id == task_id:
                return outcome
            self._done[task.task_id] = outcome
        raise ReproError(f"unknown task id {task_id}")

    def _execute(self, task: Task) -> ChunkOutcome:
        if task.design_key in self._cancelled:
            return ChunkOutcome(
                task_id=task.task_id,
                design_key=task.design_key,
                results=[],
                stats={},
                worker="serial-0",
                skipped=True,
            )
        context = self._contexts.get(task.design_key)
        if isinstance(task, CubeTask):
            verdict, stats = context.run_cube(task.index, task.cube)
            results: List[TaskEntry] = [verdict]
        else:
            results, stats = context.run_chunk(
                task.indices, task.stop_on_failure, allow_split=task.allow_split
            )
        return ChunkOutcome(
            task_id=task.task_id,
            design_key=task.design_key,
            results=results,
            stats=stats,
            worker="serial-0",
        )

    def cancel_design(self, design_key: str) -> None:
        self._cancelled.add(design_key)

    def close(self) -> None:
        self._contexts.clear()


# ---------------------------------------------------------------------- #
# Process pool
# ---------------------------------------------------------------------- #


def _pool_worker_main(worker_name, units, task_queue, result_queue, claim_queue) -> None:
    """Worker loop: steal tasks, settle them with per-design engine affinity.

    Runs in the child process.  Every exception is reported as a message,
    never as a dead worker, so the parent can fail loudly with the original
    traceback.  Before executing a task the worker *claims* it on
    ``claim_queue`` (a SimpleQueue: the put writes straight to the pipe, so
    the claim survives even a SIGKILL issued immediately afterwards) —
    that claim is what lets the parent attribute an in-flight task to a
    worker that died without reporting a result.
    """
    # Fork copies the parent's contextvars: a parent-installed tracer or
    # progress sink would silently collect into objects whose consumers live
    # on the other side of the fork.  Worker spans travel through the chunk
    # stats channel instead (run_chunk installs its own tracer), and worker
    # heartbeats are dropped by design — they cannot reach a live consumer.
    from repro.obs import progress as _obs_progress
    from repro.obs import trace as _obs_trace

    _obs_trace.clear()
    _obs_progress.clear()
    # Fault plans are per-process: the forked worker re-reads REPRO_FAULTS so
    # its counters start fresh (a respawned worker does too, which is what
    # makes worker_kill@task:N a retryable fault rather than a fatal loop).
    _faults.set_plan(None)
    contexts = ContextPool(lambda design_key: DesignWorkContext(units[design_key]))
    while True:
        task = task_queue.get()
        if task is None:
            break
        claim_queue.put((worker_name, task.task_id))
        if _faults.fire("worker_kill"):
            # Drain the result feeder before dying.  The planned fault
            # simulates a crash in the *work*, not inside the IPC layer: a
            # SIGKILL landing while the feeder thread holds the shared
            # result queue's write lock would leave the lock held forever,
            # blocking every surviving worker's puts — a hang no supervisor
            # can attribute, since all remaining workers stay alive.
            result_queue.close()
            result_queue.join_thread()
            os.kill(os.getpid(), signal.SIGKILL)
        try:
            context = contexts.get(task.design_key)
            if isinstance(task, CubeTask):
                verdict, stats = context.run_cube(task.index, task.cube)
                entries: List[TaskEntry] = [verdict]
            else:
                entries, stats = context.run_chunk(
                    task.indices, task.stop_on_failure, allow_split=task.allow_split
                )
            records = [task_entry_to_record(entry) for entry in entries]
            result_queue.put((task.task_id, task.design_key, records, stats, worker_name, None))
        except Exception:  # noqa: BLE001 - crossing a process boundary
            result_queue.put(
                (task.task_id, task.design_key, [], {}, worker_name, traceback.format_exc())
            )


class ProcessPoolExecutor(Executor):
    """Multi-process executor over one shared work-stealing task queue.

    Workers are forked lazily on the first :meth:`run` call (fork keeps the
    unit table out of the pickle path and inherits the parent's imports).
    The feeder keeps at most ``2 × workers`` tasks in flight, which bounds
    queue memory and gives :meth:`cancel_design` a window to drop shards
    that a failing class made pointless.
    """

    def __init__(
        self, units: Dict[str, WorkUnit], jobs: int, task_retries: int = 2
    ) -> None:
        if jobs < 2:
            raise ReproError(f"ProcessPoolExecutor needs jobs >= 2, got {jobs}")
        self._units = units
        self._jobs = jobs
        self._task_retries = task_retries
        self._mp = multiprocessing.get_context("fork")
        self._processes: List[multiprocessing.Process] = []
        self._spawned = 0  # monotonic: respawned workers get fresh names
        self._task_queue = None
        self._result_queue = None
        self._claim_queue = None
        self._cancelled: Set[str] = set()
        self._closed = False
        self._pending: "deque[Task]" = deque()
        self._completed: Dict[int, ChunkOutcome] = {}
        self._outstanding = 0
        # Supervision state: which worker holds which task, the fed-but-
        # unfinished tasks by id (for requeueing), and per-task retry counts.
        self._inflight_by_worker: Dict[str, List[int]] = {}
        self._inflight_tasks: Dict[int, Task] = {}
        self._retry_counts: Dict[int, int] = {}
        self._unattributed_deaths = 0
        self.workers_lost = 0
        self.tasks_retried = 0

    @property
    def workers(self) -> int:
        return self._jobs

    def effective_workers(self, task_count: int) -> int:
        if task_count <= 0:
            return 1  # nothing to fork for (e.g. a fully cache-warm run)
        return min(self._jobs, task_count)

    def _ensure_workers(self, demand: int) -> None:
        """Fork workers lazily, growing the pool up to ``jobs`` as demand does.

        The first submit sizes the pool to its task count (a pool never
        forks more processes than there is work); later submits — e.g. a
        burst of cube tasks from a split — may grow it toward ``jobs``.
        """
        if self._task_queue is None:
            self._task_queue = self._mp.Queue()
            self._result_queue = self._mp.Queue()
            self._claim_queue = self._mp.SimpleQueue()
        target = min(self._jobs, max(demand, 1))
        while len(self._processes) < target:
            worker_name = f"worker-{self._spawned}"
            self._spawned += 1
            process = self._mp.Process(
                target=_pool_worker_main,
                name=worker_name,
                args=(
                    worker_name,
                    self._units,
                    self._task_queue,
                    self._result_queue,
                    self._claim_queue,
                ),
                daemon=True,
            )
            process.start()
            self._processes.append(process)

    def submit(self, tasks: Sequence[Task], urgent: bool = False) -> None:
        if self._closed:
            raise ReproError("executor is closed")
        tasks = list(tasks)
        if not tasks:
            return
        if urgent:
            self._pending.extendleft(reversed(tasks))
        else:
            self._pending.extend(tasks)
        self._ensure_workers(len(self._pending) + self._outstanding)
        self._feed()

    def _feed(self) -> None:
        """Keep at most ``2 × workers`` tasks in flight.

        The bound keeps queue memory flat and gives ``cancel_design`` (and
        urgent cube submissions) a window to act on still-pending shards.
        """
        max_outstanding = 2 * max(1, len(self._processes))
        while self._pending and self._outstanding < max_outstanding:
            task = self._pending.popleft()
            if task.design_key in self._cancelled:
                self._completed[task.task_id] = ChunkOutcome(
                    task_id=task.task_id,
                    design_key=task.design_key,
                    results=[],
                    stats={},
                    worker="cancelled",
                    skipped=True,
                )
                continue
            self._task_queue.put(task)
            self._inflight_tasks[task.task_id] = task
            self._outstanding += 1

    def _drain_claims(self) -> None:
        """Apply pending worker → task claims (non-blocking).

        Claims are written to their pipe *before* the corresponding result
        is put, so draining claims before processing a result guarantees
        the in-flight map is current when the result clears it.
        """
        while self._claim_queue is not None and not self._claim_queue.empty():
            worker, task_id = self._claim_queue.get()
            if task_id in self._inflight_tasks:
                self._inflight_by_worker.setdefault(worker, []).append(task_id)

    def _supervise(self) -> bool:
        """Detect dead workers; requeue or quarantine their in-flight tasks.

        Returns True when supervision made progress (a retry or a
        quarantine), so the caller can reset its stall escalation.  Workers
        only exit after the close() sentinel — any mid-run death is a hard
        crash (OOM kill, native segfault, fault injection).
        """
        self._drain_claims()
        dead = [p for p in self._processes if not p.is_alive()]
        if not dead:
            return False
        progressed = False
        for process in dead:
            self._processes.remove(process)
            worker = process.name
            # Every unsettled claim the worker ever made is suspect: a
            # SIGKILL can swallow results still sitting in the worker's
            # queue-feeder buffer, so an *earlier* claimed task may be lost
            # even though the worker had already moved on to a later one.
            claimed = [
                task_id
                for task_id in self._inflight_by_worker.pop(worker, [])
                if task_id in self._inflight_tasks
            ]
            if not claimed:
                # Died idle, or in the microscopic window between stealing a
                # task and claiming it.  Nothing attributable to requeue —
                # the stall escalation in wait() covers the pathological case.
                if self._outstanding:
                    self._unattributed_deaths += 1
                continue
            self.workers_lost += 1
            for task_id in claimed:
                task = self._inflight_tasks[task_id]
                retries = self._retry_counts.get(task_id, 0)
                if retries < self._task_retries:
                    self._retry_counts[task_id] = retries + 1
                    self.tasks_retried += 1
                    self._task_queue.put(task)  # still counted as outstanding
                else:
                    self._settle_task(task_id)
                    self._completed[task_id] = ChunkOutcome(
                        task_id=task_id,
                        design_key=task.design_key,
                        results=[],
                        stats={},
                        worker=worker,
                        quarantined=True,
                    )
            progressed = True
        if self._pending or self._outstanding:
            self._ensure_workers(self._outstanding + len(self._pending))
        return progressed

    def _settle_task(self, task_id: int) -> None:
        """Drop a finished/quarantined task from the supervision state."""
        self._outstanding -= 1
        self._inflight_tasks.pop(task_id, None)
        self._retry_counts.pop(task_id, None)
        for worker, held in list(self._inflight_by_worker.items()):
            if task_id in held:
                held.remove(task_id)
                if not held:
                    del self._inflight_by_worker[worker]

    def wait(self, task_id: int) -> ChunkOutcome:
        if self._closed and task_id not in self._completed:
            raise ReproError("executor is closed")
        stalled_polls = 0
        while task_id not in self._completed:
            self._feed()
            if not self._outstanding and not self._pending:
                raise ReproError(f"unknown task id {task_id}")
            try:
                message = self._result_queue.get(timeout=1.0)
            except _queue.Empty:
                if self._supervise():
                    stalled_polls = 0
                else:
                    stalled_polls += 1
                # A worker that died before claiming its task leaves the
                # loss unattributable; if nothing at all progresses after
                # that, fail loudly instead of waiting forever.
                if self._unattributed_deaths and stalled_polls >= 30:
                    raise ReproError(
                        "parallel worker process(es) died without reporting "
                        "a result or claiming a task, and the run has "
                        "stalled; rerun with --jobs 1 to reproduce the "
                        "failure inline"
                    ) from None
                continue
            stalled_polls = 0
            self._drain_claims()
            done_id, design_key, records, stats, worker, error = message
            if done_id not in self._inflight_tasks:
                # A late duplicate: the task was requeued after its worker
                # was presumed dead, but the original result made it out
                # first (or vice versa).  The first settle wins.
                continue
            self._settle_task(done_id)
            if error is not None:
                raise ReproError(
                    f"parallel worker {worker} failed while settling "
                    f"{design_key!r}:\n{error}"
                )
            name = self._units[design_key].name
            self._completed[done_id] = ChunkOutcome(
                task_id=done_id,
                design_key=design_key,
                results=[task_entry_from_record(name, record) for record in records],
                stats=stats,
                worker=worker,
            )
        return self._completed.pop(task_id)

    def run(self, tasks: Sequence[Task]) -> Iterator[ChunkOutcome]:
        if self._closed:
            raise ReproError("executor is closed")
        if not tasks:
            return
        try:
            self.submit(tasks)
            for task in tasks:
                yield self.wait(task.task_id)
        finally:
            self.close()

    def cancel_design(self, design_key: str) -> None:
        self._cancelled.add(design_key)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._task_queue is not None:
            for _ in self._processes:
                try:
                    self._task_queue.put(None)
                except (OSError, ValueError):
                    break
        for process in self._processes:
            process.join(timeout=2.0)
        for process in self._processes:
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
            if process.is_alive():
                # A worker stuck in an uninterruptible state can survive
                # SIGTERM; SIGKILL cannot be caught, so this join is final —
                # without it the child stays a zombie for the parent's
                # lifetime.
                process.kill()
                process.join()
        for q in (self._task_queue, self._result_queue):
            if q is not None:
                q.cancel_join_thread()
                q.close()
        if self._claim_queue is not None:
            self._claim_queue.close()
        self._processes = []


def create_executor(
    jobs: int,
    units: Dict[str, WorkUnit],
    seeds: Optional[Dict[str, ContextSeed]] = None,
    task_retries: int = 2,
) -> Executor:
    """Executor factory: serial for ``jobs <= 1``, forked pool otherwise.

    Platforms without the ``fork`` start method (e.g. Windows) degrade to
    the serial executor with a warning rather than failing the audit.
    """
    if jobs <= 1:
        return SerialExecutor(units, seeds=seeds)
    if "fork" not in multiprocessing.get_all_start_methods():
        warnings.warn(
            "multiprocessing 'fork' start method unavailable; "
            "running with --jobs 1 (serial) instead",
            RuntimeWarning,
            stacklevel=2,
        )
        return SerialExecutor(units, seeds=seeds)
    return ProcessPoolExecutor(units, jobs, task_retries=task_retries)
