"""Wall-clock and memory measurement helpers used by the benchmark harness."""

from __future__ import annotations

import threading
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List


class Stopwatch:
    """Accumulates named wall-clock durations (thread-safe).

    Used by the detection flow to report per-property proof runtimes, mirroring
    the "1 to 3 seconds per property" measurement of the paper.  Durations are
    measured with ``time.perf_counter()`` — wall-clock ``time.time()`` can
    jump under NTP adjustment and must only ever stamp absolute timestamps,
    never measure intervals.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._durations: Dict[str, List[float]] = {}

    def time(self, name: str):
        """Return a context manager recording one duration under ``name``."""
        return _StopwatchSpan(self, name)

    def record(self, name: str, seconds: float) -> None:
        with self._lock:
            self._durations.setdefault(name, []).append(seconds)

    def durations(self, name: str) -> List[float]:
        with self._lock:
            return list(self._durations.get(name, []))

    def total(self, name: str | None = None) -> float:
        with self._lock:
            if name is not None:
                return sum(self._durations.get(name, []))
            return sum(sum(values) for values in self._durations.values())

    def names(self) -> List[str]:
        with self._lock:
            return list(self._durations)


class _StopwatchSpan:
    def __init__(self, stopwatch: Stopwatch, name: str) -> None:
        self._stopwatch = stopwatch
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_StopwatchSpan":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc_info) -> None:
        self._stopwatch.record(self._name, time.perf_counter() - self._start)


@dataclass
class PeakMemoryTracker:
    """Tracks the peak Python heap allocation of a code region via ``tracemalloc``."""

    peak_bytes: int = 0
    _was_tracing: bool = field(default=False, repr=False)

    def __enter__(self) -> "PeakMemoryTracker":
        self._was_tracing = tracemalloc.is_tracing()
        if not self._was_tracing:
            tracemalloc.start()
        tracemalloc.reset_peak()
        return self

    def __exit__(self, *_exc_info) -> None:
        _current, peak = tracemalloc.get_traced_memory()
        self.peak_bytes = peak
        if not self._was_tracing:
            tracemalloc.stop()

    @property
    def peak_megabytes(self) -> float:
        return self.peak_bytes / (1024 * 1024)
