"""Graph helpers built on networkx used by netlist and fanout analysis."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set

import networkx as nx


def reachable_from(graph: nx.DiGraph, sources: Iterable[Hashable]) -> Set[Hashable]:
    """All nodes reachable from any of ``sources`` (excluding unreachable sources)."""
    seen: Set[Hashable] = set()
    stack = [node for node in sources if node in graph]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(successor for successor in graph.successors(node) if successor not in seen)
    return seen


def bfs_distances(graph: nx.DiGraph, sources: Iterable[Hashable]) -> Dict[Hashable, int]:
    """Minimum hop distance from any source to every reachable node.

    Sources themselves get distance 0.  Nodes not reachable from any source are
    absent from the returned mapping.
    """
    distances: Dict[Hashable, int] = {}
    frontier: List[Hashable] = []
    for node in sources:
        if node in graph and node not in distances:
            distances[node] = 0
            frontier.append(node)
    while frontier:
        next_frontier: List[Hashable] = []
        for node in frontier:
            for successor in graph.successors(node):
                if successor not in distances:
                    distances[successor] = distances[node] + 1
                    next_frontier.append(successor)
        frontier = next_frontier
    return distances


def topological_order(graph: nx.DiGraph) -> List[Hashable]:
    """Topological order of a DAG; raises ``networkx.NetworkXUnfeasible`` on cycles."""
    return list(nx.topological_sort(graph))


def find_cycle(graph: nx.DiGraph) -> List[Hashable]:
    """Return one cycle as a list of nodes, or an empty list if the graph is acyclic."""
    try:
        edges = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return []
    return [edge[0] for edge in edges]
