"""Small shared helpers: bit-vector arithmetic, graph utilities, timing."""

from repro.utils.bitvec import mask, signed_value, to_bits, from_bits, popcount
from repro.utils.timing import Stopwatch, PeakMemoryTracker

__all__ = [
    "mask",
    "signed_value",
    "to_bits",
    "from_bits",
    "popcount",
    "Stopwatch",
    "PeakMemoryTracker",
]
