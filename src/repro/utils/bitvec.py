"""Bit-vector helpers shared by the simulator, bit-blaster and IPC engine.

All RTL values in the library are plain Python integers interpreted as
unsigned bit-vectors of a known width.  These helpers centralise the masking
and bit-slicing conventions so every subsystem agrees on them.
"""

from __future__ import annotations

from typing import Iterable, List


def mask(width: int) -> int:
    """Return the all-ones mask of ``width`` bits (``width`` may be zero)."""
    if width < 0:
        raise ValueError(f"negative width: {width}")
    return (1 << width) - 1


def truncate(value: int, width: int) -> int:
    """Truncate ``value`` to an unsigned ``width``-bit quantity."""
    return value & mask(width)


def signed_value(value: int, width: int) -> int:
    """Interpret the ``width``-bit unsigned ``value`` as a two's-complement integer."""
    value = truncate(value, width)
    if width == 0:
        return 0
    if value & (1 << (width - 1)):
        return value - (1 << width)
    return value


def to_bits(value: int, width: int) -> List[int]:
    """Expand ``value`` into a list of bits, LSB first."""
    value = truncate(value, width)
    return [(value >> i) & 1 for i in range(width)]


def from_bits(bits: Iterable[int]) -> int:
    """Pack an LSB-first iterable of bits back into an integer."""
    result = 0
    for position, bit in enumerate(bits):
        if bit not in (0, 1):
            raise ValueError(f"bit at position {position} is {bit!r}, expected 0 or 1")
        result |= bit << position
    return result


def popcount(value: int) -> int:
    """Number of set bits in ``value`` (which must be non-negative)."""
    if value < 0:
        raise ValueError("popcount of negative value is undefined")
    return bin(value).count("1")


def rotate_left(value: int, amount: int, width: int) -> int:
    """Rotate the ``width``-bit ``value`` left by ``amount`` positions."""
    if width <= 0:
        return 0
    amount %= width
    value = truncate(value, width)
    return truncate((value << amount) | (value >> (width - amount)), width)


def rotate_right(value: int, amount: int, width: int) -> int:
    """Rotate the ``width``-bit ``value`` right by ``amount`` positions."""
    if width <= 0:
        return 0
    amount %= width
    return rotate_left(value, width - amount, width)
