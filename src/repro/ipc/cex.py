"""Counterexample objects returned by failed property checks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

# (instance index, time offset, signal name) -> value
Valuation = Dict[Tuple[int, int, str], int]


@dataclass
class CounterExample:
    """A concrete witness for a failing interval property.

    Attributes
    ----------
    property_name:
        The property that failed.
    failing_signals:
        Signals of the prove part whose two sides differ, with the differing
        values: ``(signal, time, value_instance1, value_instance2)``.
    values:
        Complete valuation of the signals involved in the check, keyed by
        ``(instance, time, signal)``.  Instance indices are 0-based.
    """

    property_name: str
    failing_signals: List[Tuple[str, int, int, int]] = field(default_factory=list)
    values: Valuation = field(default_factory=dict)

    def value(self, signal: str, time: int = 0, instance: int = 0) -> int:
        return self.values[(instance, time, signal)]

    def signals_with_difference(self) -> List[str]:
        return sorted({signal for signal, _, _, _ in self.failing_signals})

    def format(self, max_signals: int = 16) -> str:
        """Human-readable report, the equivalent of a property checker's waveform."""
        lines = [f"counterexample for {self.property_name}:"]
        for signal, time, left, right in self.failing_signals[:max_signals]:
            lines.append(
                f"  {signal}@t+{time}: instance1 = 0x{left:x}, instance2 = 0x{right:x}"
            )
        hidden = len(self.failing_signals) - max_signals
        if hidden > 0:
            lines.append(f"  ... and {hidden} more differing signals")
        starting_state = [
            (signal, instance, value)
            for (instance, time, signal), value in sorted(self.values.items())
            if time == 0
        ]
        if starting_state:
            lines.append("  starting-state excerpt:")
            for signal, instance, value in starting_state[:max_signals]:
                lines.append(f"    instance{instance + 1}.{signal}@t = 0x{value:x}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format()
