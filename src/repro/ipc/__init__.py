"""Interval Property Checking (IPC) over a symbolic starting state.

IPC proves bounded properties of the form *assume(t..t+n) => prove(t..t+n)*
where the starting state of the design is left completely symbolic (any state
the solver chooses).  A property that holds is therefore valid for *every*
reachable and unreachable starting state — which is what lets the paper
"fast-forward" over arbitrarily long Trojan trigger sequences (Sec. IV-B).

The engine supports *2-safety* properties: terms may refer to one of two
independent instances of the same design, which share nothing except the
constraints stated in the property.  This implements the miter of Fig. 2
without ever duplicating the RTL description.
"""

from repro.ipc.prop import IntervalProperty, Term, Equality
from repro.ipc.engine import IpcEngine, PreparedCheck, PropertyCheckResult
from repro.ipc.cex import CounterExample
from repro.ipc.transition import TransitionEncoder, SymbolicFrame

__all__ = [
    "IntervalProperty",
    "Term",
    "Equality",
    "IpcEngine",
    "PreparedCheck",
    "PropertyCheckResult",
    "CounterExample",
    "TransitionEncoder",
    "SymbolicFrame",
]
