"""Symbolic transition encoding of a flat RTL module onto an AIG.

A :class:`SymbolicFrame` assigns an AIG literal vector to every *leaf* signal
(primary input or register) of one design instance at one time point.  All
combinational signals and the next-state functions are then derived lazily
and cached inside the frame.

Frames of different instances/time points share one AIG, so identical logic
cones built over identical leaf vectors collapse to identical literals via
structural hashing — the mechanism the 2-safety equivalence proofs rely on.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.aig.aig import AIG
from repro.aig.bitblast import BitBlaster, Vector
from repro.errors import BitblastError
from repro.rtl.ir import Module


class SymbolicFrame:
    """Literal vectors of one design instance at one time point.

    Leaves are materialised *lazily*: a register of a frame with a
    ``predecessor`` takes the predecessor's next-state cone on first use,
    every other unbound leaf becomes a fresh symbolic variable.  Laziness
    matters because the property checker binds assumption-merged leaves
    before any cone is built — only leaves that are still unbound at their
    first use become free variables of the proof.
    """

    def __init__(
        self,
        encoder: "TransitionEncoder",
        label: str,
        predecessor: Optional["SymbolicFrame"] = None,
    ) -> None:
        self._encoder = encoder
        self._label = label
        self._predecessor = predecessor
        self._leaves: Dict[str, Vector] = {}
        self._cache: Dict[str, Vector] = {}

    @property
    def label(self) -> str:
        return self._label

    @property
    def predecessor(self) -> Optional["SymbolicFrame"]:
        return self._predecessor

    @property
    def leaves(self) -> Dict[str, Vector]:
        return self._leaves

    def bind_leaf(self, name: str, vector: Vector) -> None:
        """Bind a primary input or register to an existing literal vector."""
        self._leaves[name] = list(vector)

    def is_bound(self, name: str) -> bool:
        return name in self._leaves

    def leaf_vector(self, name: str) -> Vector:
        """Vector of a leaf signal, materialising it on first use."""
        vector = self._leaves.get(name)
        if vector is None:
            if self._predecessor is not None and self._encoder.module.is_register(name):
                vector = self._predecessor.next_state_of(name)
            else:
                width = self._encoder.module.width_of(name)
                vector = self._encoder.blaster.fresh_vector(f"{self._label}:{name}", width)
            self._leaves[name] = vector
        return vector

    def vector_of(self, name: str) -> Vector:
        """Vector of any signal (leaf or combinational) at this time point."""
        module = self._encoder.module
        if module.is_input(name) or module.is_register(name):
            return self.leaf_vector(name)
        cached = self._cache.get(name)
        if cached is not None:
            return cached
        driver = module.driver_of(name)
        if driver is None:
            raise BitblastError(f"signal {name!r} has no driver and is not a leaf")
        vector = self._encoder.blaster.blast(driver, _FrameEnv(self))
        self._cache[name] = vector
        return vector

    def next_state_of(self, register: str) -> Vector:
        """Vector of the register's next-state function evaluated in this frame."""
        key = f"next::{register}"
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        next_expr = self._encoder.module.registers[register].next
        vector = self._encoder.blaster.blast(next_expr, _FrameEnv(self))
        self._cache[key] = vector
        return vector


class _FrameEnv(dict):
    """Environment adapter: lets the bit-blaster resolve signals via a frame."""

    def __init__(self, frame: SymbolicFrame) -> None:
        super().__init__()
        self._frame = frame

    def get(self, name, default=None):  # type: ignore[override]
        try:
            return self._frame.vector_of(name)
        except KeyError:
            return default

    def __getitem__(self, name):  # pragma: no cover - get() is the used path
        return self._frame.vector_of(name)

    def __contains__(self, name) -> bool:  # pragma: no cover
        return True


class TransitionEncoder:
    """Creates and advances symbolic frames of a module over a shared AIG."""

    def __init__(self, module: Module, aig: Optional[AIG] = None) -> None:
        self._module = module
        self._aig = aig or AIG()
        self._blaster = BitBlaster(self._aig)

    @property
    def module(self) -> Module:
        return self._module

    @property
    def aig(self) -> AIG:
        return self._aig

    @property
    def blaster(self) -> BitBlaster:
        return self._blaster

    def new_frame(self, label: str) -> SymbolicFrame:
        """A frame whose leaves are all fresh symbolic variables (lazily created)."""
        return SymbolicFrame(self, label)

    def step(self, frame: SymbolicFrame, label: str) -> SymbolicFrame:
        """Frame for the next time point: registers lazily take their
        next-state cones from ``frame``, primary inputs become fresh variables
        (they are unconstrained unless the property says otherwise)."""
        return SymbolicFrame(self, label, predecessor=frame)

    def unroll(self, label: str, cycles: int) -> List[SymbolicFrame]:
        """Frames for time points ``t .. t+cycles`` (``cycles + 1`` frames)."""
        frames = [self.new_frame(f"{label}@0")]
        for time in range(1, cycles + 1):
            frames.append(self.step(frames[-1], f"{label}@{time}"))
        return frames
