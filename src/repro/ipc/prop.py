"""Interval property representation.

A property is a pair *(assume, prove)* of constraint lists.  Constraints are
equalities between *terms*; a term names a signal of one design instance at
one time offset inside the property window.  This is exactly the shape of the
properties in Figs. 3-5 of the paper:

``init_property``::

    assume:  at t:   inputs(instance 1)      == inputs(instance 2)
    prove:   at t+1: fanouts_CC1(instance 1) == fanouts_CC1(instance 2)

Terms may also be compared against constants, which is occasionally useful
for user-supplied waiver assumptions (Sec. V-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import PropertyError


@dataclass(frozen=True)
class Term:
    """A signal of one instance at a time offset within the property window."""

    signal: str
    time: int = 0
    instance: int = 0

    def __str__(self) -> str:
        return f"inst{self.instance + 1}.{self.signal}@t+{self.time}" if self.time else (
            f"inst{self.instance + 1}.{self.signal}@t"
        )


@dataclass(frozen=True)
class Equality:
    """``left == right`` where ``right`` is another term or an integer constant."""

    left: Term
    right: Union[Term, int]

    def __str__(self) -> str:
        return f"{self.left} == {self.right}"

    def is_term_equality(self) -> bool:
        return isinstance(self.right, Term)


@dataclass
class IntervalProperty:
    """A bounded (interval) property with a symbolic starting state."""

    name: str
    assumptions: List[Equality] = field(default_factory=list)
    commitments: List[Equality] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise PropertyError("a property needs a non-empty name")

    def validate(self) -> None:
        if not self.commitments:
            raise PropertyError(f"property {self.name!r} has an empty prove part")
        if self.window() < 1:
            raise PropertyError(f"property {self.name!r} must span at least one clock cycle")

    def window(self) -> int:
        """Number of clock cycles spanned by the property (maximum time offset)."""
        times = [0]
        for constraint in list(self.assumptions) + list(self.commitments):
            times.append(constraint.left.time)
            if isinstance(constraint.right, Term):
                times.append(constraint.right.time)
        return max(times)

    def instances(self) -> Tuple[int, ...]:
        """Sorted instance indices referenced by the property."""
        indices = set()
        for constraint in list(self.assumptions) + list(self.commitments):
            indices.add(constraint.left.instance)
            if isinstance(constraint.right, Term):
                indices.add(constraint.right.instance)
        return tuple(sorted(indices)) or (0,)

    def assume_equal(self, signal: str, time: int = 0) -> None:
        """Add the 2-safety assumption ``inst1.signal@t+time == inst2.signal@t+time``."""
        self.assumptions.append(
            Equality(Term(signal, time, instance=0), Term(signal, time, instance=1))
        )

    def prove_equal(self, signal: str, time: int) -> None:
        """Add the 2-safety commitment ``inst1.signal@t+time == inst2.signal@t+time``."""
        self.commitments.append(
            Equality(Term(signal, time, instance=0), Term(signal, time, instance=1))
        )

    def proven_signals(self) -> List[str]:
        """Signals named on the left-hand side of commitments (report helper)."""
        return sorted({constraint.left.signal for constraint in self.commitments})

    def summary(self) -> str:
        lines = [f"property {self.name}:"]
        if self.description:
            lines.append(f"  -- {self.description}")
        lines.append("  assume:")
        for constraint in self.assumptions:
            lines.append(f"    {constraint}")
        lines.append("  prove:")
        for constraint in self.commitments:
            lines.append(f"    {constraint}")
        return "\n".join(lines)


def pairwise_equalities(
    signals: Iterable[str], time: int, instances: Sequence[int] = (0, 1)
) -> List[Equality]:
    """Equality constraints ``instA.s@time == instB.s@time`` for every signal."""
    first, second = instances
    return [
        Equality(Term(signal, time, instance=first), Term(signal, time, instance=second))
        for signal in sorted(set(signals))
    ]
