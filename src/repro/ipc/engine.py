"""The IPC engine: checks interval properties over symbolic starting states.

The check of an interval property proceeds in three stages:

1. *Assumption merging.*  Equality assumptions between free leaves (primary
   inputs at any time point, registers at the first time point) are applied
   by construction: the right-hand instance's leaf simply reuses the literal
   vector of the left-hand instance.  This is sound — it restricts the model
   exactly as the assumption does — and it is what lets structurally identical
   logic collapse in the next stage.
2. *Structural discharge.*  Both sides of every commitment are bit-blasted
   onto one shared, structurally hashed AIG.  A commitment whose two sides
   reduce to the same literal vector is proven without touching the SAT
   solver.  In an untampered design this discharges every proof obligation.
3. *SAT search.*  Remaining commitments form a miter (OR of bit differences)
   which is checked together with the non-merged assumptions by the CDCL
   solver.  A satisfying assignment is turned into a readable
   :class:`repro.ipc.cex.CounterExample`.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.aig.aig import FALSE, TRUE, negate
from repro.aig.bitblast import Vector
from repro.aig.preprocess import Preprocessor
from repro.aig.simvec import DEFAULT_PATTERNS
from repro.errors import PropertyError
from repro.ipc.cex import CounterExample
from repro.ipc.prop import Equality, IntervalProperty, Term
from repro.obs.trace import span as _obs_span
from repro.ipc.transition import SymbolicFrame, TransitionEncoder
from repro.rtl.ir import Module
from repro.sat.context import SolverContext
from repro.sat.cubes import LOOKAHEAD_PATTERNS, enumerate_cubes, select_split_bits
from repro.utils.bitvec import from_bits

#: A portable cube literal: ``(instance, time, signal, bit, value)``.  Cubes
#: name free leaf *bits*, never AIG nodes, so a cube computed on one engine
#: can be applied on any other engine of the same module — across worker
#: processes, runs, and cache generations.
CubeLiteral = Tuple[int, int, str, int, int]
Cube = Tuple[CubeLiteral, ...]


@dataclass
class PropertyCheckResult:
    """Outcome of one property check."""

    prop: IntervalProperty
    holds: bool
    cex: Optional[CounterExample] = None
    structurally_proven: bool = False
    runtime_seconds: float = 0.0
    sat_conflicts: int = 0
    sat_decisions: int = 0
    aig_nodes: int = 0
    cnf_vars: int = 0
    cnf_clauses: int = 0
    merged_assumptions: int = 0
    clause_assumptions: int = 0
    # Incremental-solving statistics: clauses newly encoded for this check vs.
    # clauses already present in the persistent solver context, the number of
    # SAT calls this check issued (0 when discharged without the solver), and
    # the context's conflict total after the check.
    cnf_new_clauses: int = 0
    cnf_reused_clauses: int = 0
    solver_calls: int = 0
    cumulative_conflicts: int = 0
    # Preprocessing telemetry (:mod:`repro.aig` simvec/simplify/fraig):
    # whether bit-parallel random simulation falsified the miter without any
    # CDCL call, the miter-cone size before and after the fraig sweep, the
    # number of proven node merges substituted, and the preprocessing wall
    # time.  All zero/False when the check ran with simplification off.
    sim_falsified: bool = False
    nodes_before: int = 0
    nodes_after: int = 0
    merged_nodes: int = 0
    sweep_seconds: float = 0.0

    @property
    def name(self) -> str:
        return self.prop.name

    def __bool__(self) -> bool:  # truthiness == "property holds"
        return self.holds


@dataclass
class PreparedCheck:
    """A property after the cheap structural stage, before any SAT work.

    Produced by :meth:`IpcEngine.begin_check`; finished (SAT search, model
    extraction, counterexample construction) by :meth:`IpcEngine.finish_check`.
    The split lets a scheduler first discharge *every* property structurally
    on the shared AIG and only then run the remaining SAT obligations against
    the shared incremental solver context.
    """

    prop: IntervalProperty
    result: PropertyCheckResult
    frames: Dict[int, List[SymbolicFrame]]
    obligations: List[Tuple[Equality, Vector, Vector, int]]
    clause_assumptions: List[int]
    window: int
    miter: int = FALSE
    needs_sat: bool = False
    prepare_seconds: float = 0.0
    #: A concrete falsifying input assignment found by sim-first
    #: falsification (AIG input node -> bit); when set, finish_check builds
    #: the counterexample from it and never calls the SAT solver.
    sim_model: Optional[Dict[int, int]] = None

    @property
    def discharged(self) -> bool:
        """True when the property was settled without any SAT obligation."""
        return not self.needs_sat


class IpcEngine:
    """Checks interval properties of one module, reusing work across checks.

    The engine keeps the frames of instance 0 (and the shared AIG) alive
    between calls, because the iterative detection flow checks one property
    per fanout class over the *same* one-cycle window.  Frames of further
    instances are rebuilt per property since their leaf merging depends on the
    property's assumptions.
    """

    def __init__(
        self,
        module: Module,
        persistent_instances: Tuple[int, ...] = (0,),
        solver_backend: str = "auto",
        simplify: bool = False,
        sim_patterns: int = DEFAULT_PATTERNS,
        fraig_rounds: int = 1,
        inprocess: bool = True,
        sim_backend: str = "auto",
    ) -> None:
        self._module = module
        self._encoder = TransitionEncoder(module)
        self._base_frames: Dict[int, List[SymbolicFrame]] = {}
        # Frames of these instances are kept across check() calls; their leaves
        # must never be rebound by assumption merging (a clause constraint is
        # used instead), otherwise one property could constrain the next.
        self._persistent_instances = set(persistent_instances)
        # One CNF builder + one incremental solver for the engine's lifetime:
        # the node→var cache and all emitted clauses persist, so overlapping
        # cones of later checks are never re-encoded or re-learned.
        self._context = SolverContext(self._encoder.aig, backend=solver_backend)
        # Preprocessing state shares the engine's lifetime too: patterns
        # (plus every refinement pattern fraig learned) and proven merges
        # keep helping across all checks of the run.
        self._simplify = simplify
        self._sim_patterns = sim_patterns
        self._fraig_rounds = fraig_rounds
        self._preprocessor: Optional[Preprocessor] = None
        # Inprocessing between checks: after every SAT-settled check the
        # persistent context vivifies its clauses and eliminates dead
        # per-check miter variables at level 0, keeping the shared clause
        # database from growing monotonically over hundreds of checks.
        self._inprocess = inprocess
        self._sim_backend = sim_backend
        self._inprocess_runs = 0
        self._inprocess_removed = 0
        self._inprocess_eliminated = 0

    @property
    def module(self) -> Module:
        return self._module

    @property
    def encoder(self) -> TransitionEncoder:
        return self._encoder

    @property
    def solver_context(self) -> SolverContext:
        return self._context

    def stats(self) -> Dict[str, object]:
        """Snapshot of the engine's shared solver-context statistics.

        One flat dict so that schedulers and reports never need to reach into
        the context object: backend name, number of SAT calls issued, total
        conflicts, and the size of the persistent CNF encoding.
        """
        context = self._context
        return {
            "backend": context.backend_name,
            "solver_calls": context.solve_calls,
            "conflicts": context.cumulative_conflicts,
            "restarts": context.cumulative_restarts,
            "learned_clauses": context.cumulative_learned_clauses,
            "deleted_clauses": context.cumulative_deleted_clauses,
            "cnf_vars": context.num_vars,
            "cnf_clauses": context.num_clauses,
            "aig_nodes": self._encoder.aig.num_nodes,
            "inprocess_runs": self._inprocess_runs,
            "inprocess_removed_clauses": self._inprocess_removed,
            "inprocess_eliminated_vars": self._inprocess_eliminated,
        }

    # ------------------------------------------------------------------ #
    # Frame management
    # ------------------------------------------------------------------ #

    def _frames_for_instance(self, instance: int, window: int, persistent: bool) -> List[SymbolicFrame]:
        if persistent:
            frames = self._base_frames.setdefault(instance, [])
        else:
            frames = []
        if not frames:
            frames.append(self._encoder.new_frame(f"i{instance}@0"))
        while len(frames) <= window:
            time_index = len(frames)
            frames.append(self._encoder.step(frames[-1], f"i{instance}@{time_index}"))
        return frames

    # ------------------------------------------------------------------ #
    # Property checking
    # ------------------------------------------------------------------ #

    def check(self, prop: IntervalProperty) -> PropertyCheckResult:
        """Check one interval property; returns the result with optional CEX."""
        return self.finish_check(self.begin_check(prop))

    def begin_check(
        self, prop: IntervalProperty, cube: Optional[Cube] = None
    ) -> PreparedCheck:
        """Structural stage: bit-blast, merge assumptions, discharge on the AIG.

        Cheap (no SAT): a commitment whose sides hash to the same literal
        vector is proven structurally.  The returned :class:`PreparedCheck`
        records whether SAT obligations remain; if so, :meth:`finish_check`
        settles them against the shared incremental solver context.

        ``cube`` optionally restricts the check to an assumption prefix over
        free leaf bits (see :mod:`repro.sat.cubes`): each
        ``(instance, time, signal, bit, value)`` literal joins the clause
        assumptions *before* preprocessing, so sim-first falsification and
        the SAT search both respect the cube.
        """
        started = _time.perf_counter()
        prop.validate()
        window = prop.window()
        instances = prop.instances()

        with _obs_span("bitblast", prop=prop.name):
            frames: Dict[int, List[SymbolicFrame]] = {}
            for instance in instances:
                # Persistent-instance frames survive across properties; the
                # leaves of the other instances depend on the property's
                # merge set, so they are rebuilt for every check.
                persistent = instance in self._persistent_instances
                frames[instance] = self._frames_for_instance(instance, window, persistent)

            merged, clause_assumptions = self._apply_assumption_merging(prop, frames, window)
            if cube:
                clause_assumptions = clause_assumptions + self._cube_literals(cube, frames)

            # Bit-blast both sides of every commitment.
            obligations: List[Tuple[Equality, Vector, Vector, int]] = []
            for commitment in prop.commitments:
                left_vector = self._term_vector(commitment.left, frames)
                right_vector = self._constraint_rhs_vector(commitment, frames, left_vector)
                difference = self._difference_literal(left_vector, right_vector)
                obligations.append((commitment, left_vector, right_vector, difference))

        pending = [entry for entry in obligations if entry[3] != FALSE]
        result = PropertyCheckResult(
            prop=prop,
            holds=True,
            structurally_proven=not pending and not clause_assumptions,
            merged_assumptions=merged,
            clause_assumptions=len(clause_assumptions),
            aig_nodes=self._encoder.aig.num_nodes,
        )
        prepared = PreparedCheck(
            prop=prop,
            result=result,
            frames=frames,
            obligations=obligations,
            clause_assumptions=clause_assumptions,
            window=window,
        )
        if pending:
            if any(literal == FALSE for literal in clause_assumptions):
                # An assumption is structurally false: holds vacuously.
                pass
            else:
                miter = self._encoder.aig.or_many([entry[3] for entry in pending])
                if miter != FALSE:
                    prepared.miter = miter
                    prepared.needs_sat = True
                    if self._simplify:
                        self._preprocess(prepared)
        prepared.prepare_seconds = _time.perf_counter() - started
        result.runtime_seconds = prepared.prepare_seconds
        return prepared

    # ------------------------------------------------------------------ #
    # Preprocessing (sim-first falsification + fraig sweeping)
    # ------------------------------------------------------------------ #

    def _get_preprocessor(self) -> Preprocessor:
        if self._preprocessor is None:
            self._preprocessor = Preprocessor(
                self._encoder.aig,
                self._context,
                sim_patterns=self._sim_patterns,
                fraig_rounds=self._fraig_rounds,
                sim_backend=self._sim_backend,
            )
        return self._preprocessor

    def _preprocess(self, prepared: PreparedCheck) -> None:
        """Shrink a prepared check's SAT obligation before the solver sees it.

        Stage 1 — *sim-first falsification*: evaluate the miter together
        with the clause assumptions over a batch of random patterns; any
        pattern satisfying all of them is a genuine counterexample, recorded
        (after deterministic zero-minimization) as ``prepared.sim_model`` —
        :meth:`finish_check` then never touches the CDCL solver.

        Stage 2 — *fraig sweeping* (only when simulation could not falsify):
        merge simulation-equivalent nodes by bounded SAT proof and rebuild
        the miter/assumption cones with the merges substituted, constants
        folded and the 2-AND rewriting rules applied.  The rebuilt literals
        are equivalence-preserving, so the check's verdict is unchanged —
        only the CNF the solver receives is smaller.

        Both stages live in :class:`repro.aig.preprocess.Preprocessor`,
        shared with the sequential unroller.
        """
        result = prepared.result
        roots = [prepared.miter] + list(prepared.clause_assumptions)
        outcome = self._get_preprocessor().run(roots)
        result.nodes_before = outcome.nodes_before
        result.nodes_after = outcome.nodes_after
        result.merged_nodes = outcome.merged_nodes
        result.sweep_seconds = outcome.elapsed_seconds
        if outcome.sim_model is not None:
            prepared.sim_model = outcome.sim_model
            result.sim_falsified = True
        else:
            prepared.miter = outcome.roots[0]
            prepared.clause_assumptions = [
                literal for literal in outcome.roots[1:] if literal != TRUE
            ]

    def finish_check(
        self,
        prepared: PreparedCheck,
        conflict_limit: Optional[int] = None,
        want_cex: bool = True,
        deadline_s: Optional[float] = None,
    ) -> PropertyCheckResult:
        """SAT stage: settle a prepared check's remaining obligations.

        ``conflict_limit`` budgets the CDCL call: when the limit is reached
        :class:`repro.errors.ConflictLimitExceeded` propagates with the
        persistent context backtracked and fully reusable — the caller may
        split the check into cubes and retry.  ``deadline_s`` budgets the
        call in wall-clock terms (absolute ``time.monotonic()`` deadline):
        capable backends raise :class:`repro.errors.CheckDeadlineExceeded`
        with the context equally reusable.  ``want_cex=False`` skips model
        extraction and counterexample construction on SAT (a cube verdict
        needs only the satisfiability bit).
        """
        result = prepared.result
        if not prepared.needs_sat:
            return result
        started = _time.perf_counter()
        if prepared.sim_model is not None:
            # Sim-first falsification already produced a concrete model; the
            # counterexample is built from it with zero CDCL calls.
            result.holds = False
            if want_cex:
                result.cex = self._build_counterexample(
                    prepared.prop,
                    prepared.frames,
                    prepared.obligations,
                    prepared.sim_model,
                    prepared.window,
                )
        else:
            holds, model_values = self._solve(
                prepared,
                conflict_limit=conflict_limit,
                want_model=want_cex,
                deadline_s=deadline_s,
            )
            result.holds = holds
            if not holds and want_cex:
                result.cex = self._build_counterexample(
                    prepared.prop, prepared.frames, prepared.obligations, model_values, prepared.window
                )
            if self._inprocess:
                self._run_inprocessing()
        result.runtime_seconds = prepared.prepare_seconds + (_time.perf_counter() - started)
        return result

    def _run_inprocessing(self) -> None:
        """Simplify the persistent solver context after a SAT-settled check.

        Runs strictly between checks (the solver is back at level 0, the
        model of the finished check has already been extracted), so clause
        vivification and elimination of dead per-check miter variables can
        never perturb a verdict — only the formula the *next* check lands on.
        """
        stats = self._context.inprocess()
        self._inprocess_runs += 1
        self._inprocess_removed += int(stats.get("removed_clauses", 0))
        self._inprocess_eliminated += len(stats.get("eliminated") or [])

    # ------------------------------------------------------------------ #
    # Assumptions
    # ------------------------------------------------------------------ #

    def _is_free_leaf(self, term: Term) -> bool:
        module = self._module
        if module.is_input(term.signal):
            return True
        return module.is_register(term.signal) and term.time == 0

    def _apply_assumption_merging(
        self,
        prop: IntervalProperty,
        frames: Dict[int, List[SymbolicFrame]],
        window: int,
    ) -> Tuple[int, List[int]]:
        """Bind mergeable equalities directly; return (merge count, other literals).

        Merging happens in a first pass over *all* assumptions, and only then
        are the remaining assumptions turned into clause constraints.  The
        clause constraints bit-blast combinational cones of the non-persistent
        instance, which must not happen before every bindable leaf has been
        bound — otherwise a cone cached early would keep referring to stale
        free variables of a leaf that a later assumption merges.
        """
        merged = 0
        deferred: List[Tuple[Term, Union[Term, int]]] = []
        bound: set = set()

        def try_bind(target: Term, vector) -> bool:
            frame = frames[target.instance][target.time]
            if frame.is_bound(target.signal):
                return False
            frame.bind_leaf(target.signal, vector)
            bound.add((target.instance, target.time, target.signal))
            return True

        for assumption in prop.assumptions:
            left, right = assumption.left, assumption.right
            if isinstance(right, Term):
                mergeable = (
                    self._is_free_leaf(right)
                    and right.instance not in self._persistent_instances
                    and right.time <= window
                    and (right.instance, right.time, right.signal) not in bound
                    and self._module.width_of(left.signal) == self._module.width_of(right.signal)
                    and (right.instance, right.signal) != (left.instance, left.signal)
                )
                if mergeable and try_bind(right, self._term_vector(left, frames)):
                    merged += 1
                    continue
                deferred.append((left, right))
            else:
                width = self._module.width_of(left.signal)
                constant_vector = self._encoder.blaster.constant(int(right), width)
                bindable = (
                    self._is_free_leaf(left)
                    and left.instance not in self._persistent_instances
                    and (left.instance, left.time, left.signal) not in bound
                )
                if bindable and try_bind(left, constant_vector):
                    merged += 1
                    continue
                deferred.append((left, right))

        clause_literals: List[int] = []
        for left, right in deferred:
            left_vector = self._term_vector(left, frames)
            if isinstance(right, Term):
                right_vector = self._term_vector(right, frames)
            else:
                right_vector = self._encoder.blaster.constant(int(right), len(left_vector))
            clause_literals.append(self._equality_literal(left_vector, right_vector))
        return merged, [literal for literal in clause_literals if literal != TRUE]

    # ------------------------------------------------------------------ #
    # Cube splitting (cube-and-conquer, :mod:`repro.sat.cubes`)
    # ------------------------------------------------------------------ #

    def _cube_literals(self, cube: Cube, frames: Dict[int, List[SymbolicFrame]]) -> List[int]:
        """Resolve a portable cube to AIG assumption literals on this engine.

        Constant-``TRUE`` resolutions are dropped (already implied);
        constant-``FALSE`` ones are kept so the vacuous-assumption check of
        :meth:`begin_check` settles the cube as UNSAT without any solving.
        """
        literals: List[int] = []
        for instance, time_index, signal, bit, value in cube:
            try:
                vector = frames[instance][time_index].vector_of(signal)
                literal = vector[bit]
            except (KeyError, IndexError) as error:
                raise PropertyError(
                    f"cube literal ({instance}, {time_index}, {signal!r}, {bit}) "
                    f"does not name a leaf bit of this check"
                ) from error
            literals.append(literal if value else negate(literal))
        return [literal for literal in literals if literal != TRUE]

    def _free_leaf_bit_names(
        self, prepared: PreparedCheck
    ) -> Dict[int, Tuple[int, int, str, int]]:
        """Map free-leaf input nodes to portable ``(instance, time, signal, bit)``.

        Merged leaves share one input vector; each node keeps the
        lexicographically smallest of its names, so the chosen name is the
        same on every engine regardless of which instance was bound first.
        """
        module = self._module
        names: Dict[int, Tuple[int, int, str, int]] = {}
        for instance in sorted(prepared.frames):
            for time_index, frame in enumerate(
                prepared.frames[instance][: prepared.window + 1]
            ):
                for signal in sorted(frame.leaves):
                    free = module.is_input(signal) or (
                        module.is_register(signal) and time_index == 0
                    )
                    if not free:
                        continue
                    for bit, literal in enumerate(frame.leaves[signal]):
                        node = literal >> 1
                        if self._encoder.aig.is_input(node):
                            names.setdefault(node, (instance, time_index, signal, bit))
        return names

    def plan_cubes(
        self,
        prepared: PreparedCheck,
        depth: int,
        num_patterns: int = LOOKAHEAD_PATTERNS,
    ) -> List[Cube]:
        """Split a prepared check into up to ``2^depth`` covering cubes.

        Branching bits come from the lookahead of
        :func:`repro.sat.cubes.select_split_bits` over the check's miter and
        assumption cone.  Returns fewer cubes when the cone has fewer than
        ``depth`` eligible bits, and ``[]`` when it has none (the caller then
        falls back to the monolithic solve).  Deterministic on a freshly
        built engine: selection depends only on cone structure and portable
        leaf names.
        """
        names = self._free_leaf_bit_names(prepared)
        if not names:
            return []
        roots = [prepared.miter] + list(prepared.clause_assumptions)
        chosen = select_split_bits(
            self._encoder.aig,
            roots,
            [(node, name) for node, name in names.items()],
            depth,
            num_patterns=num_patterns,
        )
        if not chosen:
            return []
        return [
            tuple(name + (value,) for name, value in pairs)
            for pairs in enumerate_cubes([names[node] for node in chosen])
        ]

    # ------------------------------------------------------------------ #
    # Term evaluation
    # ------------------------------------------------------------------ #

    def _term_vector(self, term: Term, frames: Dict[int, List[SymbolicFrame]]) -> Vector:
        if term.signal not in self._module.signals:
            raise PropertyError(f"property references unknown signal {term.signal!r}")
        return frames[term.instance][term.time].vector_of(term.signal)

    def _constraint_rhs_vector(
        self,
        constraint: Equality,
        frames: Dict[int, List[SymbolicFrame]],
        left_vector: Vector,
    ) -> Vector:
        if isinstance(constraint.right, Term):
            return self._term_vector(constraint.right, frames)
        return self._encoder.blaster.constant(int(constraint.right), len(left_vector))

    def _difference_literal(self, left: Vector, right: Vector) -> int:
        return negate(self._encoder.blaster.equal_vectors(left, right))

    def _equality_literal(self, left: Vector, right: Vector) -> int:
        return self._encoder.blaster.equal_vectors(left, right)

    # ------------------------------------------------------------------ #
    # SAT interaction
    # ------------------------------------------------------------------ #

    def _solve(
        self,
        prepared: PreparedCheck,
        conflict_limit: Optional[int] = None,
        want_model: bool = True,
        deadline_s: Optional[float] = None,
    ) -> Tuple[bool, Dict[int, int]]:
        """Settle a prepared check's miter against the shared solver context.

        The miter goal and the non-merged assumptions are passed as solver
        *assumptions*, never as permanent unit clauses: the solver keeps its
        clause database (and everything it learned) valid for the next check.
        """
        aig = self._encoder.aig
        context = self._context

        goal_literal = context.literal_of(prepared.miter)
        assumption_literals = [
            context.literal_of(literal) for literal in prepared.clause_assumptions
        ]
        result = prepared.result
        outcome = context.solve(
            assumption_literals + [goal_literal],
            conflict_limit=conflict_limit,
            deadline_s=deadline_s,
        )
        result.cnf_vars = context.num_vars
        result.cnf_clauses = context.num_clauses
        result.cnf_new_clauses = outcome.new_clauses
        result.cnf_reused_clauses = outcome.reused_clauses
        result.solver_calls = 1
        result.cumulative_conflicts = context.cumulative_conflicts
        result.sat_conflicts = outcome.result.conflicts
        result.sat_decisions = outcome.result.decisions
        if not outcome.satisfiable:
            return True, {}
        if not want_model:
            return False, {}

        # Map the CNF model back to AIG input-node values.  Only inputs in the
        # support of *this* check's constraints are extracted; variables that
        # earlier checks encoded into the persistent context carry arbitrary
        # model values and must not leak into the counterexample.
        support_roots = [prepared.miter] + list(prepared.clause_assumptions)
        model = outcome.result.model
        input_values: Dict[int, int] = {}
        for node in aig.cone_nodes(support_roots):
            if not aig.is_input(node):
                continue
            cnf_literal = context.literal_of(node << 1)
            value = model.get(abs(cnf_literal))
            if value is None:
                continue
            input_values[node] = int(value if cnf_literal > 0 else not value)
        return False, input_values

    # ------------------------------------------------------------------ #
    # Counterexample reconstruction
    # ------------------------------------------------------------------ #

    def _vector_value(self, vector: Vector, input_values: Dict[int, int]) -> int:
        bits = self._encoder.aig.evaluate(vector, input_values)
        return from_bits(bits)

    def _build_counterexample(
        self,
        prop: IntervalProperty,
        frames: Dict[int, List[SymbolicFrame]],
        obligations: List[Tuple[Equality, Vector, Vector, int]],
        input_values: Dict[int, int],
        window: int,
    ) -> CounterExample:
        cex = CounterExample(property_name=prop.name)
        for commitment, left_vector, right_vector, difference in obligations:
            if difference == FALSE:
                continue
            left_value = self._vector_value(left_vector, input_values)
            right_value = self._vector_value(right_vector, input_values)
            if left_value != right_value:
                cex.failing_signals.append(
                    (commitment.left.signal, commitment.left.time, left_value, right_value)
                )
        # Record the starting-state and input valuation of both instances for
        # every leaf that participated in the check.
        for instance, instance_frames in frames.items():
            for time_index, frame in enumerate(instance_frames[: window + 1]):
                for signal, vector in frame.leaves.items():
                    cex.values[(instance, time_index, signal)] = self._vector_value(vector, input_values)
        # Also record the values that appear explicitly in the property.
        for constraint in list(prop.assumptions) + list(prop.commitments):
            terms = [constraint.left]
            if isinstance(constraint.right, Term):
                terms.append(constraint.right)
            for term in terms:
                key = (term.instance, term.time, term.signal)
                if key not in cex.values:
                    vector = self._term_vector(term, frames)
                    cex.values[key] = self._vector_value(vector, input_values)
        return cex
