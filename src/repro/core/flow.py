"""Algorithm 1 as an event-emitting batched property scheduler.

The flow builds one property per fanout class (plus the init property) and
settles them in two phases over the engine's shared, structurally hashed AIG:

1. *Structural phase* — every scheduled property is bit-blasted and
   discharged on the AIG where possible.  No SAT solver is involved; in an
   untampered design this phase settles every class.
2. *SAT phase* — the remaining obligations run, in class order, against the
   engine's persistent incremental solver context, so the CNF encoding and
   everything the solver learned for one class is reused by the next.

Every failing property yields a counterexample together with a diagnosis
(Sec. V-B); causes that are provable by another property of the same run are
resolved automatically by re-verification with strengthened assumptions,
everything else is reported to the user.

The scheduler does not accumulate results privately: :meth:`TrojanDetectionFlow.events`
is a generator that emits the typed events of :mod:`repro.core.events`
(``PropertyScheduled``, ``StructurallyDischarged``, ``CexFound``, ``CexWaived``,
``ClassProven``, ``RunFinished``) as each class settles, which is what the
streaming :meth:`repro.api.DetectionSession.iter_results` surface consumes.
:meth:`TrojanDetectionFlow.run` simply drains that generator and returns the
final report.
"""

from __future__ import annotations

import time as _time
import warnings
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.config import DetectionConfig
from repro.core.coverage import check_signal_coverage
from repro.core.events import (
    CexFound,
    CexWaived,
    ClassProven,
    PropertyScheduled,
    RunEvent,
    RunFinished,
    RunStarted,
    StructurallyDischarged,
)
from repro.core.falsealarm import CexDiagnosis, diagnose_counterexample
from repro.core.properties import build_fanout_property, build_init_property
from repro.core.report import DetectionReport, PropertyOutcome, Verdict
from repro.ipc.engine import IpcEngine, PreparedCheck, PropertyCheckResult
from repro.ipc.prop import IntervalProperty
from repro.rtl.fanout import FanoutAnalysis, compute_fanout_classes
from repro.rtl.ir import Module
from repro.rtl.netlist import DependencyGraph


class TrojanDetectionFlow:
    """Runs the batched detection flow of Algorithm 1 on one module."""

    def __init__(
        self,
        module: Module,
        config: Optional[DetectionConfig] = None,
        design_name: Optional[str] = None,
        analysis: Optional[FanoutAnalysis] = None,
    ) -> None:
        self._module = module
        # Reports and events carry the *design* name (e.g. the benchmark
        # name), which the session API may set to something more specific
        # than the top module's identifier.
        self._design_name = design_name or module.name
        self._config = config or DetectionConfig()
        self._graph = DependencyGraph(module)
        # A pre-computed fanout analysis (e.g. Design.analysis()'s cache) may
        # be passed in; it must match the config's traced inputs.
        self._analysis = analysis if analysis is not None else compute_fanout_classes(
            module, inputs=self._config.inputs, graph=self._graph
        )
        self._engine = IpcEngine(module, solver_backend=self._config.solver_backend)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def module(self) -> Module:
        return self._module

    @property
    def config(self) -> DetectionConfig:
        return self._config

    @property
    def analysis(self) -> FanoutAnalysis:
        return self._analysis

    @property
    def engine(self) -> IpcEngine:
        return self._engine

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #

    def run(self) -> DetectionReport:
        """Execute the complete flow and return the detection report."""
        report: Optional[DetectionReport] = None
        for event in self.events():
            if isinstance(event, RunFinished):
                report = event.report
        assert report is not None  # events() always ends with RunFinished
        return report

    def events(self) -> Iterator[RunEvent]:
        """Execute the flow lazily, emitting one typed event per step.

        The generator *is* the run: properties settle as the consumer
        iterates, so a caller can render progress, collect telemetry, or
        abandon the iteration for an early abort while the SAT phase is
        still running.  The final event is always :class:`RunFinished`
        carrying the complete report.
        """
        design = self._design_name
        started = _time.perf_counter()
        report = DetectionReport(
            design=design,
            verdict=Verdict.SECURE,
            fanout_analysis=self._analysis,
        )

        depth = self._analysis.placement_depth
        if self._config.max_class is not None:
            depth = min(depth, self._config.max_class)

        yield RunStarted(
            design=design,
            scheduled_classes=depth,
            solver_backend=self._engine.solver_context.backend_name,
        )

        # Phase 1 — structural pass over every scheduled class on the shared
        # AIG.  Discharged classes are settled here without any SAT work;
        # classes with remaining obligations queue up for the SAT phase.
        outcomes: Dict[int, PropertyOutcome] = {}
        sat_queue: List[Tuple[int, PreparedCheck]] = []
        for k in range(0, depth):
            kind = "init" if k == 0 else "fanout"
            prop = self._build_property(k)
            yield PropertyScheduled(
                design=design,
                index=k,
                kind=kind,
                property_name=prop.name,
                commitments=len(prop.commitments),
            )
            if not prop.commitments:
                # Nothing to prove for this class; trivially holds.
                outcomes[k] = PropertyOutcome(
                    kind=kind,
                    index=k,
                    result=PropertyCheckResult(prop=prop, holds=True, structurally_proven=True),
                )
                yield StructurallyDischarged(design=design, index=k, outcome=outcomes[k])
                continue
            prepared = self._engine.begin_check(prop)
            if prepared.discharged:
                outcomes[k] = PropertyOutcome(
                    kind=kind, index=k, result=self._engine.finish_check(prepared)
                )
                yield StructurallyDischarged(design=design, index=k, outcome=outcomes[k])
            else:
                sat_queue.append((k, prepared))

        # Phase 2 — remaining SAT obligations, in class order, against the
        # shared incremental solver context (with per-class spurious-CEX
        # resolution exactly as in the one-at-a-time flow).
        stopped_early = False
        failed_class: Optional[int] = None
        for k, prepared in sat_queue:
            outcome = yield from self._settle_with_sat(k, prepared)
            outcomes[k] = outcome
            if outcome.holds:
                yield ClassProven(design=design, index=k, outcome=outcome)
            else:
                report.verdict = Verdict.TROJAN_SUSPECTED
                report.detected_by = outcome.label
                report.counterexample = outcome.result.cex
                report.diagnosis = outcome.diagnosis
                if self._config.stop_at_first_failure:
                    stopped_early = True
                    failed_class = k
                    break

        # On an early stop, report the contiguous prefix up to the failing
        # class (structural results beyond it were computed but never part of
        # the verdict; SAT obligations beyond it were never attempted).
        report.outcomes = [
            outcomes[k]
            for k in sorted(outcomes)
            if failed_class is None or k <= failed_class
        ]
        report.spurious_resolved = sum(
            outcome.resolved_spurious for outcome in report.outcomes
        )
        self._record_solver_stats(report)
        if stopped_early:
            report.total_runtime_seconds = _time.perf_counter() - started
            yield RunFinished(design=design, report=report)
            return

        # Coverage check (Algorithm 1, line 17): only meaningful when no
        # property already failed.
        coverage = check_signal_coverage(self._module, self._analysis, self._graph)
        report.coverage = coverage
        if report.verdict is Verdict.SECURE and not coverage.complete:
            report.verdict = Verdict.UNCOVERED_SIGNALS
            report.detected_by = "coverage check"

        report.total_runtime_seconds = _time.perf_counter() - started
        yield RunFinished(design=design, report=report)

    def _record_solver_stats(self, report: DetectionReport) -> None:
        stats = self._engine.stats()
        report.solver_backend = stats["backend"]
        report.solver_calls = stats["solver_calls"]
        report.solver_conflicts = stats["conflicts"]
        report.cnf_clauses = stats["cnf_clauses"]
        report.cnf_clauses_reused = sum(
            outcome.result.cnf_reused_clauses for outcome in report.outcomes
        )

    # ------------------------------------------------------------------ #
    # Per-class property checking with spurious-CEX resolution
    # ------------------------------------------------------------------ #

    def _build_property(self, k: int) -> IntervalProperty:
        if k == 0:
            return build_init_property(self._module, self._analysis, self._config)
        return build_fanout_property(self._module, self._analysis, k, self._config)

    def _settle_with_sat(self, k: int, prepared: PreparedCheck) -> Iterator[RunEvent]:
        """Settle the SAT obligations of class ``k`` (0 = init property).

        A generator: emits a :class:`CexFound` event for every counterexample
        the solver produces and a :class:`CexWaived` event whenever one is
        resolved by re-verification with strengthened assumptions; its return
        value (via ``yield from``) is the class's final outcome.

        If the property fails, the counterexample is diagnosed; when every
        cause is provable by another property of the run (Sec. V-B scenario 1)
        the property is re-verified with those equalities added.  Causes that
        would need engineering judgement are never assumed automatically.
        Re-verification runs full checks against the same shared solver
        context, so the strengthened property reuses all encoded clauses.
        """
        design = self._design_name
        kind = "init" if k == 0 else "fanout"
        prop = prepared.prop
        resolved = 0
        extra_assumptions: List[str] = []
        diagnosis: Optional[CexDiagnosis] = None
        result = self._engine.finish_check(prepared)

        while True:
            if result.holds:
                return PropertyOutcome(kind=kind, index=k, result=result, resolved_spurious=resolved)
            diagnosis = diagnose_counterexample(
                self._module, self._analysis, prop, result.cex, self._graph, self._config
            )
            if diagnosis.auto_resolvable:
                new_assumptions = [
                    signal
                    for signal in diagnosis.proposed_assumptions()
                    if signal not in extra_assumptions
                ]
                if new_assumptions:
                    yield CexFound(
                        design=design,
                        index=k,
                        cex=result.cex,
                        diagnosis=diagnosis,
                        auto_resolvable=True,
                    )
                    yield CexWaived(design=design, index=k, signals=tuple(new_assumptions))
                    extra_assumptions.extend(new_assumptions)
                    resolved += 1
                    prop = self._build_property(k)
                    for signal in extra_assumptions:
                        prop.assume_equal(signal, 0)
                    result = self._engine.check(prop)
                    continue
            yield CexFound(
                design=design,
                index=k,
                cex=result.cex,
                diagnosis=diagnosis,
                auto_resolvable=False,
            )
            return PropertyOutcome(
                kind=kind,
                index=k,
                result=result,
                diagnosis=diagnosis,
                resolved_spurious=resolved,
            )


def detect_trojans(module: Module, config: Optional[DetectionConfig] = None) -> DetectionReport:
    """Run Algorithm 1 on ``module`` and return the report.

    .. deprecated::
        ``detect_trojans`` is kept as a thin compatibility shim; new code
        should use the session API::

            from repro.api import Design, DetectionSession

            report = DetectionSession(Design.from_module(module), config).run()
    """
    warnings.warn(
        "detect_trojans() is deprecated; use repro.api.DetectionSession "
        "(see ARCHITECTURE.md for the migration path)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import DetectionSession

    return DetectionSession(module, config=config).run()
