"""Algorithm 1 as a plan handed to the parallel execution subsystem.

The flow builds one property per fanout class (plus the init property).  As
of the exec-subsystem refactor it no longer loops over them itself: it
builds a :class:`repro.exec.scheduler.DesignPlan` — which consults the
persistent :class:`repro.exec.cache.ResultCache` and shards the remaining
classes into chunk tasks — and hands the shards to an
:class:`repro.exec.executor.Executor`:

* ``DetectionConfig.jobs == 1`` (default): a :class:`SerialExecutor` settles
  each class inline as the event consumer iterates, using this flow's own
  persistent :class:`IpcEngine` — the classic lazy streaming behaviour with
  full clause reuse across classes.
* ``jobs > 1``: a :class:`ProcessPoolExecutor` forks workers that steal
  shards from one shared queue; each worker keeps one engine per design, so
  clause reuse survives inside a worker.

Either way the consumer sees the same deterministic, typed event stream of
:mod:`repro.core.events` (``PropertyScheduled``, ``StructurallyDischarged``,
``CexFound``, ``CexWaived``, ``ClassProven``, ``RunFinished``) merged back in
class order, and :meth:`TrojanDetectionFlow.run` simply drains that stream
and returns the final report.  Per-class settling (structural discharge,
SAT search, spurious-counterexample resolution of Sec. V-B) lives in
:class:`repro.exec.worker.DesignWorkContext`.
"""

from __future__ import annotations

import warnings
from typing import Iterator, Optional

from repro.core.config import DetectionConfig
from repro.core.events import RunEvent, RunFinished
from repro.core.report import DetectionReport
from repro.exec.cache import ResultCache
from repro.exec.executor import ContextSeed, create_executor
from repro.exec.scheduler import DesignPlan, run_plans
from repro.ipc.engine import IpcEngine
from repro.obs.trace import span as _obs_span
from repro.rtl.fanout import FanoutAnalysis, compute_fanout_classes
from repro.rtl.ir import Module
from repro.rtl.netlist import DependencyGraph


def open_result_cache(config: DetectionConfig) -> Optional[ResultCache]:
    """The config's result cache, or None when disabled (no dir / --no-cache)."""
    if config.cache_dir is None or not config.use_cache:
        return None
    return ResultCache(config.cache_dir)


class TrojanDetectionFlow:
    """Runs the batched detection flow of Algorithm 1 on one module."""

    def __init__(
        self,
        module: Module,
        config: Optional[DetectionConfig] = None,
        design_name: Optional[str] = None,
        analysis: Optional[FanoutAnalysis] = None,
        golden: Optional[Module] = None,
    ) -> None:
        self._module = module
        # Reports and events carry the *design* name (e.g. the benchmark
        # name), which the session API may set to something more specific
        # than the top module's identifier.
        self._design_name = design_name or module.name
        self._config = config or DetectionConfig()
        # The golden model of the sequential mode (None for the default
        # combinational flow, which is golden-free by construction).
        self._golden = golden
        self._sequential = self._config.mode == "sequential"
        if self._sequential:
            # The fanout partition and dependency graph drive only the
            # combinational properties and the coverage check; sequential
            # runs schedule one class per common design/golden output.
            self._graph = None
            self._analysis = None
        else:
            self._graph = DependencyGraph(module)
            # A pre-computed fanout analysis (e.g. Design.analysis()'s cache)
            # may be passed in; it must match the config's traced inputs.
            self._analysis = analysis if analysis is not None else compute_fanout_classes(
                module, inputs=self._config.inputs, graph=self._graph
            )
        # The engine is created on first use: a fully cache-warm run (and a
        # jobs > 1 run, where workers own their engines) never builds one.
        self._lazy_engine: Optional[IpcEngine] = None

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def module(self) -> Module:
        return self._module

    @property
    def config(self) -> DetectionConfig:
        return self._config

    @property
    def analysis(self) -> Optional[FanoutAnalysis]:
        """The fanout partition of combinational runs (None in sequential mode)."""
        return self._analysis

    @property
    def golden(self) -> Optional[Module]:
        """The sequential mode's golden model (None for combinational runs)."""
        return self._golden

    @property
    def engine(self) -> IpcEngine:
        """The flow's persistent property-checking engine (created lazily).

        Serial runs settle their classes on exactly this engine, so direct
        ``flow.engine.check(...)`` experiments after a run reuse everything
        the run encoded and learned.
        """
        if self._lazy_engine is None:
            self._lazy_engine = IpcEngine(
                self._module,
                solver_backend=self._config.solver_backend,
                simplify=self._config.simplify,
                sim_patterns=self._config.sim_patterns,
                fraig_rounds=self._config.fraig_rounds,
                inprocess=self._config.inprocess,
                sim_backend=self._config.sim_backend,
            )
        return self._lazy_engine

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #

    def run(self) -> DetectionReport:
        """Execute the complete flow and return the detection report."""
        report: Optional[DetectionReport] = None
        for event in self.events():
            if isinstance(event, RunFinished):
                report = event.report
        assert report is not None  # events() always ends with RunFinished
        return report

    def events(self) -> Iterator[RunEvent]:
        """Execute the flow lazily, emitting one typed event per step.

        The generator *is* the run: with the default serial executor,
        properties settle as the consumer iterates, so a caller can render
        progress, collect telemetry, or abandon the iteration for an early
        abort while the SAT phase is still running.  With ``config.jobs > 1``
        the shards execute on worker processes while the consumer drains the
        merged, deterministic event stream.  The final event is always
        :class:`RunFinished` carrying the complete report.
        """
        cache = open_result_cache(self._config)
        with _obs_span("plan", design=self._design_name):
            plan = DesignPlan.build(
                key=self._design_name,
                name=self._design_name,
                module=self._module,
                config=self._config,
                analysis=self._analysis,
                graph=self._graph,
                cache=cache,
                golden=self._golden,
            )
        # Sequential contexts own a SequentialUnroller instead of an IPC
        # engine; seeding the flow's engine there would build (and leak) an
        # engine no sequential class ever uses.
        seed = (
            ContextSeed()
            if self._sequential
            else ContextSeed(
                engine_factory=lambda: self.engine,
                analysis=self._analysis,
                graph=self._graph,
            )
        )
        executor = create_executor(
            self._config.jobs,
            {plan.key: plan.work_unit},
            seeds={plan.key: seed},
            task_retries=self._config.task_retries,
        )
        try:
            yield from run_plans([plan], executor)
        finally:
            executor.close()


def detect_trojans(module: Module, config: Optional[DetectionConfig] = None) -> DetectionReport:
    """Run Algorithm 1 on ``module`` and return the report.

    .. deprecated::
        ``detect_trojans`` is kept as a thin compatibility shim; new code
        should use the session API::

            from repro.api import Design, DetectionSession

            report = DetectionSession(Design.from_module(module), config).run()
    """
    warnings.warn(
        "detect_trojans() is deprecated; use repro.api.DetectionSession "
        "(see ARCHITECTURE.md for the migration path)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.api import DetectionSession

    return DetectionSession(module, config=config).run()
