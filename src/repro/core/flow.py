"""Algorithm 1: the iterative formal hardware-Trojan detection flow.

The flow checks the init property, then one fanout property per fanout class,
and concludes with the structural signal-coverage check.  Every failing
property yields a counterexample together with a diagnosis (Sec. V-B); causes
that are provable by another property of the same run are resolved
automatically by re-verification with strengthened assumptions, everything
else is reported to the user.
"""

from __future__ import annotations

import time as _time
from typing import List, Optional

from repro.core.config import DetectionConfig
from repro.core.coverage import check_signal_coverage
from repro.core.falsealarm import CexDiagnosis, diagnose_counterexample
from repro.core.properties import build_fanout_property, build_init_property
from repro.core.report import DetectionReport, PropertyOutcome, Verdict
from repro.ipc.engine import IpcEngine, PropertyCheckResult
from repro.ipc.prop import IntervalProperty
from repro.rtl.fanout import FanoutAnalysis, compute_fanout_classes
from repro.rtl.ir import Module
from repro.rtl.netlist import DependencyGraph


class TrojanDetectionFlow:
    """Runs the iterative detection flow of Algorithm 1 on one module."""

    def __init__(self, module: Module, config: Optional[DetectionConfig] = None) -> None:
        self._module = module
        self._config = config or DetectionConfig()
        self._graph = DependencyGraph(module)
        self._analysis = compute_fanout_classes(
            module, inputs=self._config.inputs, graph=self._graph
        )
        self._engine = IpcEngine(module)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def module(self) -> Module:
        return self._module

    @property
    def config(self) -> DetectionConfig:
        return self._config

    @property
    def analysis(self) -> FanoutAnalysis:
        return self._analysis

    @property
    def engine(self) -> IpcEngine:
        return self._engine

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #

    def run(self) -> DetectionReport:
        """Execute the complete flow and return the detection report."""
        started = _time.perf_counter()
        report = DetectionReport(
            design=self._module.name,
            verdict=Verdict.SECURE,
            fanout_analysis=self._analysis,
        )

        depth = self._analysis.placement_depth
        if self._config.max_class is not None:
            depth = min(depth, self._config.max_class)

        for k in range(0, depth):
            outcome = self._check_class(k)
            report.outcomes.append(outcome)
            report.spurious_resolved += outcome.resolved_spurious
            if not outcome.holds:
                report.verdict = Verdict.TROJAN_SUSPECTED
                report.detected_by = outcome.label
                report.counterexample = outcome.result.cex
                report.diagnosis = outcome.diagnosis
                if self._config.stop_at_first_failure:
                    report.total_runtime_seconds = _time.perf_counter() - started
                    return report

        # Coverage check (Algorithm 1, line 17): only meaningful when no
        # property already failed.
        coverage = check_signal_coverage(self._module, self._analysis, self._graph)
        report.coverage = coverage
        if report.verdict is Verdict.SECURE and not coverage.complete:
            report.verdict = Verdict.UNCOVERED_SIGNALS
            report.detected_by = "coverage check"

        report.total_runtime_seconds = _time.perf_counter() - started
        return report

    # ------------------------------------------------------------------ #
    # Per-class property checking with spurious-CEX resolution
    # ------------------------------------------------------------------ #

    def _build_property(self, k: int) -> IntervalProperty:
        if k == 0:
            return build_init_property(self._module, self._analysis, self._config)
        return build_fanout_property(self._module, self._analysis, k, self._config)

    def _check_class(self, k: int) -> PropertyOutcome:
        """Check the property of class ``k`` (0 = init property).

        If the property fails, the counterexample is diagnosed; when every
        cause is provable by another property of the run (Sec. V-B scenario 1)
        the property is re-verified with those equalities added.  Causes that
        would need engineering judgement are never assumed automatically.
        """
        kind = "init" if k == 0 else "fanout"
        prop = self._build_property(k)
        resolved = 0
        extra_assumptions: List[str] = []
        diagnosis: Optional[CexDiagnosis] = None

        while True:
            if extra_assumptions:
                prop = self._build_property(k)
                for signal in extra_assumptions:
                    prop.assume_equal(signal, 0)
            result = self._check_property(prop)
            if result.holds:
                return PropertyOutcome(kind=kind, index=k, result=result, resolved_spurious=resolved)
            diagnosis = diagnose_counterexample(
                self._module, self._analysis, prop, result.cex, self._graph, self._config
            )
            if diagnosis.auto_resolvable:
                new_assumptions = [
                    signal
                    for signal in diagnosis.proposed_assumptions()
                    if signal not in extra_assumptions
                ]
                if new_assumptions:
                    extra_assumptions.extend(new_assumptions)
                    resolved += 1
                    continue
            return PropertyOutcome(
                kind=kind,
                index=k,
                result=result,
                diagnosis=diagnosis,
                resolved_spurious=resolved,
            )

    def _check_property(self, prop: IntervalProperty) -> PropertyCheckResult:
        if not prop.commitments:
            # Nothing to prove for this class; report a trivially holding result.
            return PropertyCheckResult(prop=prop, holds=True, structurally_proven=True)
        return self._engine.check(prop)


def detect_trojans(module: Module, config: Optional[DetectionConfig] = None) -> DetectionReport:
    """Convenience wrapper: run Algorithm 1 on ``module`` and return the report."""
    return TrojanDetectionFlow(module, config).run()
