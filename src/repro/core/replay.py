"""Counterexample replay: confirm a formal finding by simulation.

A failed init/fanout property returns a :class:`repro.ipc.cex.CounterExample`
with the starting state and inputs of both miter instances.  Replaying that
counterexample on the RTL simulator serves two purposes:

* it double-checks the formal engine (the divergence predicted by the SAT
  model must also appear in plain RTL simulation), and
* it gives the verification engineer a concrete waveform of the malicious
  behaviour, which is how the paper describes counterexamples being used to
  locate the Trojan payload.

The replay builds one simulator per miter instance, loads the registers with
the counterexample's starting state, applies the counterexample's input
values for the property window and compares the signals the property proved.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ipc.cex import CounterExample
from repro.ipc.prop import IntervalProperty, Term
from repro.rtl.ir import Module
from repro.sim.simulator import Simulator
from repro.sim.trace import Trace


@dataclass
class ReplayResult:
    """Outcome of replaying a counterexample on the RTL simulator."""

    confirmed: bool
    divergent_signals: List[Tuple[str, int, int, int]] = field(default_factory=list)
    traces: Dict[int, Trace] = field(default_factory=dict)

    def summary(self) -> str:
        if not self.confirmed:
            return "counterexample replay: no divergence observed (formal result not confirmed)"
        lines = ["counterexample replay confirmed the divergence:"]
        for signal, time, left, right in self.divergent_signals[:8]:
            lines.append(f"  {signal}@t+{time}: instance1 = 0x{left:x}, instance2 = 0x{right:x}")
        return "\n".join(lines)


def _starting_state(cex: CounterExample, module: Module, instance: int) -> Dict[str, int]:
    state = {}
    for (cex_instance, time, signal), value in cex.values.items():
        if cex_instance == instance and time == 0 and module.is_register(signal):
            state[signal] = value
    return state


def _inputs_at(cex: CounterExample, module: Module, instance: int, time: int) -> Dict[str, int]:
    stimulus = {}
    for name in module.inputs:
        value = cex.values.get((instance, time, name))
        if value is None:
            # Inputs merged between the instances are stored under instance 0.
            value = cex.values.get((0, time, name), 0)
        stimulus[name] = value
    return stimulus


def replay_counterexample(
    module: Module,
    prop: IntervalProperty,
    cex: CounterExample,
    extra_cycles: int = 0,
) -> ReplayResult:
    """Replay ``cex`` for ``prop`` on two simulator instances of ``module``.

    Returns which of the property's proven signals indeed diverge in
    simulation.  ``extra_cycles`` extends the replay window past the property
    window, which can make the payload's downstream effect visible as well.
    """
    window = prop.window()
    simulators = {
        instance: Simulator(module, initial_state=_starting_state(cex, module, instance))
        for instance in (0, 1)
    }
    traces = {0: Trace(), 1: Trace()}
    values_by_time: Dict[int, Dict[int, Dict[str, int]]] = {0: {}, 1: {}}

    for instance, simulator in simulators.items():
        # Record the starting state (time 0) before any clock edge.
        settled = simulator.evaluate_combinational(_inputs_at(cex, module, instance, 0))
        values_by_time[instance][0] = dict(settled)
        traces[instance].record(settled)
        for time in range(1, window + 1 + extra_cycles):
            stimulus = _inputs_at(cex, module, instance, min(time - 1, window))
            simulator.step(stimulus)
            settled = simulator.evaluate_combinational(_inputs_at(cex, module, instance, min(time, window)))
            values_by_time[instance][time] = dict(settled)
            traces[instance].record(settled)

    result = ReplayResult(confirmed=False, traces=traces)
    for commitment in prop.commitments:
        if not isinstance(commitment.right, Term):
            continue
        left_term, right_term = commitment.left, commitment.right
        left_value = values_by_time[left_term.instance][left_term.time].get(left_term.signal)
        right_value = values_by_time[right_term.instance][right_term.time].get(right_term.signal)
        if left_value is None or right_value is None:
            continue
        if left_value != right_value:
            result.divergent_signals.append(
                (left_term.signal, left_term.time, left_value, right_value)
            )
    result.confirmed = bool(result.divergent_signals)
    return result
