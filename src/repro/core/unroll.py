"""Bounded design-vs-golden unrolling: the sequential detection mode's core.

The combinational flow of :mod:`repro.core.flow` proves 2-safety equality of
one design against *itself* over a one-cycle window with a symbolic starting
state — it needs no golden model, but a payload hidden behind a waived (or
cross-instance-equal) trigger never shows up in its properties.  The
sequential mode closes that gap with the complementary classic check: unroll
the design next to a known-good *golden* model for ``depth`` cycles from the
reset state, feed both the same fully symbolic input sequence, and ask the
SAT solver for an input sequence that makes a common output diverge within
the bound.

:class:`SequentialUnroller` is that check as a persistent, incremental
engine, shared by the detection flow's sequential mode (one *property class
per common output*) and by the standalone BMC baseline
(:mod:`repro.baselines.bmc`, which checks all outputs in one miter):

* both models' transition relations are encoded onto **one** structurally
  hashed AIG, so logic that is identical in design and golden collapses to
  identical literals — untampered outputs discharge *structurally*, without
  a single SAT call;
* the unrolled frames, the Tseitin encoding and the solver state persist
  across :meth:`check_output` / :meth:`check_outputs` calls: checking output
  class ``k+1`` (or extending the bound from ``k`` to ``k+1`` cycles) only
  encodes the new cones and reuses every clause — and everything the solver
  learned — from earlier checks;
* per-check miters are passed as solver *assumptions*, never asserted, so
  one output's counterexample cannot constrain the next output's check.

A divergence witness is returned as a multi-cycle
:class:`repro.ipc.cex.CounterExample`: instance 0 is the design, instance 1
the golden model, and the time axis is the clock cycle — rendered as a
waveform via :func:`repro.sim.trace.trace_from_counterexample` and the VCD
writer.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.aig.aig import AIG, FALSE
from repro.aig.preprocess import Preprocessor
from repro.aig.simvec import DEFAULT_PATTERNS
from repro.errors import ConfigError, DesignError
from repro.ipc.cex import CounterExample
from repro.ipc.transition import SymbolicFrame, TransitionEncoder
from repro.obs.trace import span as _obs_span
from repro.rtl.ir import Module
from repro.sat.context import SolverContext

#: Instance indices used in sequential counterexamples.
DESIGN_INSTANCE = 0
GOLDEN_INSTANCE = 1


def sequential_output_classes(design: Module, golden: Module) -> List[str]:
    """The sequential mode's property classes: one per common output.

    Outputs are kept in the design's declaration order, so class indices are
    stable across runs and across the cache/worker boundary.  A design that
    shares no output with its golden model cannot be checked at all — that
    is a configuration error, not an empty (vacuously secure) schedule.
    """
    common = [name for name in design.outputs if name in golden.outputs]
    if not common:
        raise DesignError(
            f"design {design.name!r} and golden model {golden.name!r} share no "
            f"output signal; sequential equivalence has nothing to compare"
        )
    return common


def validate_reset_values(
    reset_values: Dict[str, int], design: Module, golden: Module
) -> None:
    """Reject reset overrides that name no register of either model.

    Per-entry validation is shared with :class:`DetectionConfig` (one rule
    set, whichever entry path the override takes); only the
    register-existence check is unroller-specific, because it needs the
    elaborated modules.
    """
    from repro.core.config import validate_reset_entry

    for name, value in reset_values.items():
        validate_reset_entry(name, value)
        if name not in design.registers and name not in golden.registers:
            raise ConfigError(
                f"reset_values names {name!r}, which is a register of neither "
                f"the design nor the golden model"
            )
        for module in (design, golden):
            # An oversized value would be silently truncated by the bit
            # blaster — the run would start from a different reset state
            # than the user asked for and could report SECURE wrongly.
            if name in module.registers and value >= (1 << module.width_of(name)):
                raise ConfigError(
                    f"reset value of {name!r} ({value}) does not fit the "
                    f"{module.width_of(name)}-bit register in {module.name!r}"
                )


@dataclass
class SequentialCheckResult:
    """Outcome of one bounded design-vs-golden equivalence check."""

    outputs: List[str]
    depth: int
    holds: bool
    #: True when every compared cycle collapsed structurally on the shared
    #: AIG — the check never touched the SAT solver.
    structurally_proven: bool = False
    #: Earliest cycle (1-based) at which some checked output diverges.
    first_divergence_cycle: Optional[int] = None
    #: Outputs that differ at the first divergence cycle.
    failing_outputs: List[str] = field(default_factory=list)
    cex: Optional[CounterExample] = None
    runtime_seconds: float = 0.0
    sat_conflicts: int = 0
    sat_decisions: int = 0
    # Incremental-reuse accounting against the shared solver context.
    cnf_new_clauses: int = 0
    cnf_reused_clauses: int = 0
    solver_calls: int = 0
    # Preprocessing telemetry (see PropertyCheckResult in repro.ipc.engine).
    sim_falsified: bool = False
    nodes_before: int = 0
    nodes_after: int = 0
    merged_nodes: int = 0
    sweep_seconds: float = 0.0


class SequentialUnroller:
    """Persistent bounded unrolling of a design against a golden model.

    One unroller owns the shared AIG, both models' frames, and one
    incremental solver context; every check against it reuses all earlier
    encoding and learning.  The reset state is taken from the modules'
    declared register reset values (default 0), overridable per register via
    ``reset_values`` — the sequential counterpart of the combinational
    flow's symbolic starting state, except here it is *concrete*, which is
    what makes counter-triggered divergence reachable at a known depth.
    """

    def __init__(
        self,
        design: Module,
        golden: Module,
        reset_values: Optional[Dict[str, int]] = None,
        solver_backend: str = "auto",
        simplify: bool = False,
        sim_patterns: int = DEFAULT_PATTERNS,
        fraig_rounds: int = 1,
        inprocess: bool = True,
        sim_backend: str = "auto",
    ) -> None:
        missing = [name for name in golden.inputs if name not in design.inputs]
        if missing:
            raise DesignError(f"golden model inputs missing from the design: {missing}")
        self._design = design
        self._golden = golden
        self._reset_values = dict(reset_values or {})
        validate_reset_values(self._reset_values, design, golden)
        self._aig = AIG()
        self._design_encoder = TransitionEncoder(design, self._aig)
        self._golden_encoder = TransitionEncoder(golden, self._aig)
        self._context = SolverContext(self._aig, backend=solver_backend)
        self._design_frames: List[SymbolicFrame] = []
        self._golden_frames: List[SymbolicFrame] = []
        # Per-cycle difference literals, cached by (cycle, output name) so a
        # deeper bound or a later output class re-encodes nothing.
        self._differences: Dict[Tuple[int, str], int] = {}
        # Preprocessing state shares the unroller's lifetime: a random
        # pattern assigns *every* unrolled input (i.e. it is a whole input
        # sequence), and merges proved while sweeping frame k keep shrinking
        # the cones of every deeper frame and later output class.
        self._simplify = simplify
        self._sim_patterns = sim_patterns
        self._fraig_rounds = fraig_rounds
        self._preprocessor: Optional[Preprocessor] = None
        # Inprocessing between checks (see IpcEngine): vivify + eliminate
        # dead per-check miter variables on the persistent context after
        # every SAT-settled check.
        self._inprocess = inprocess
        self._sim_backend = sim_backend
        self._inprocess_runs = 0
        self._inprocess_removed = 0
        self._inprocess_eliminated = 0

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #

    @property
    def design(self) -> Module:
        return self._design

    @property
    def golden(self) -> Module:
        return self._golden

    @property
    def solver_context(self) -> SolverContext:
        return self._context

    @property
    def common_outputs(self) -> List[str]:
        return sequential_output_classes(self._design, self._golden)

    @property
    def unrolled_depth(self) -> int:
        """Cycles the persistent unrolling currently covers."""
        return max(0, len(self._design_frames) - 1)

    def stats(self) -> Dict[str, object]:
        """Snapshot of the shared solver-context statistics (engine-shaped)."""
        context = self._context
        return {
            "backend": context.backend_name,
            "solver_calls": context.solve_calls,
            "conflicts": context.cumulative_conflicts,
            "restarts": context.cumulative_restarts,
            "learned_clauses": context.cumulative_learned_clauses,
            "deleted_clauses": context.cumulative_deleted_clauses,
            "cnf_vars": context.num_vars,
            "cnf_clauses": context.num_clauses,
            "aig_nodes": self._aig.num_nodes,
            "inprocess_runs": self._inprocess_runs,
            "inprocess_removed_clauses": self._inprocess_removed,
            "inprocess_eliminated_vars": self._inprocess_eliminated,
        }

    # ------------------------------------------------------------------ #
    # Unrolling
    # ------------------------------------------------------------------ #

    def _reset_value(self, module: Module, register: str) -> int:
        if register in self._reset_values:
            return self._reset_values[register]
        reset = module.registers[register].reset_value
        return reset if reset is not None else 0

    def _initial_frame(
        self, encoder: TransitionEncoder, module: Module, label: str
    ) -> SymbolicFrame:
        frame = encoder.new_frame(label)
        for register in module.registers:
            frame.bind_leaf(
                register,
                encoder.blaster.constant(
                    self._reset_value(module, register), module.width_of(register)
                ),
            )
        return frame

    def _share_inputs_at(self, frame_index: int) -> None:
        """Feed both models the same symbolic inputs at one time point."""
        for name in self._golden.inputs:
            if name in self._golden.clocks:
                continue
            shared = self._design_frames[frame_index].leaf_vector(name)
            if not self._golden_frames[frame_index].is_bound(name):
                self._golden_frames[frame_index].bind_leaf(name, shared)

    def unroll_to(self, depth: int) -> None:
        """Extend the persistent unrolling of both models to ``depth`` cycles."""
        if not self._design_frames:
            self._design_frames.append(
                self._initial_frame(self._design_encoder, self._design, "dut@0")
            )
            self._golden_frames.append(
                self._initial_frame(self._golden_encoder, self._golden, "gold@0")
            )
        for cycle in range(len(self._design_frames), depth + 1):
            self._share_inputs_at(cycle - 1)
            self._design_frames.append(
                self._design_encoder.step(self._design_frames[-1], f"dut@{cycle}")
            )
            self._golden_frames.append(
                self._golden_encoder.step(self._golden_frames[-1], f"gold@{cycle}")
            )

    def _difference_literal(self, cycle: int, name: str) -> int:
        key = (cycle, name)
        literal = self._differences.get(key)
        if literal is None:
            blaster = self._design_encoder.blaster
            left = self._design_frames[cycle].vector_of(name)
            right = self._golden_frames[cycle].vector_of(name)
            literal = self._aig.not_(blaster.equal_vectors(left, right))
            self._differences[key] = literal
        return literal

    # ------------------------------------------------------------------ #
    # Checking
    # ------------------------------------------------------------------ #

    def check_output(self, name: str, depth: int) -> SequentialCheckResult:
        """Bounded divergence check of one common output (one property class)."""
        return self.check_outputs([name], depth)

    def check_outputs(
        self, names: Sequence[str], depth: int
    ) -> SequentialCheckResult:
        """Search for an input sequence of length ``depth`` that separates the
        design from the golden model on any output in ``names``."""
        started = _time.perf_counter()
        if depth < 1:
            raise ConfigError(f"sequential checks need a depth >= 1, got {depth}")
        unknown = [name for name in names if name not in self._golden.outputs
                   or name not in self._design.outputs]
        if unknown:
            raise DesignError(
                f"not common outputs of design and golden model: {unknown}"
            )
        outputs = list(names)
        result = SequentialCheckResult(outputs=outputs, depth=depth, holds=True)

        with _obs_span("unroll", depth=depth, outputs=len(outputs)):
            self.unroll_to(depth)
            # Outputs with a combinational input path sample the input at the
            # compared cycle itself, so the topmost frame must be shared too —
            # and before any difference cone materialises an unshared leaf.
            self._share_inputs_at(depth)
            difference_by_cycle: List[List[Tuple[str, int]]] = [
                [(name, self._difference_literal(cycle, name)) for name in outputs]
                for cycle in range(1, depth + 1)
            ]

            miter = self._aig.or_many(
                [literal for cycle in difference_by_cycle for _, literal in cycle]
            )
        if miter == FALSE:
            # Both cones hashed to the same literals at every compared cycle:
            # equivalence holds structurally, no solver involved.
            result.structurally_proven = True
            result.runtime_seconds = _time.perf_counter() - started
            return result

        goal_root = miter
        if self._simplify:
            sim_model, goal_root = self._preprocess(result, miter)
            if sim_model is not None:
                # A random input sequence already separates the two models:
                # divergence is witnessed with zero CDCL calls.
                result.holds = False
                self._locate_divergence(result, difference_by_cycle, sim_model)
                result.cex = self._build_counterexample(result, sim_model)
                result.runtime_seconds = _time.perf_counter() - started
                return result

        goal = self._context.literal_of(goal_root)
        outcome = self._context.solve([goal])
        result.solver_calls = 1
        result.sat_conflicts = outcome.result.conflicts
        result.sat_decisions = outcome.result.decisions
        result.cnf_new_clauses = outcome.new_clauses
        result.cnf_reused_clauses = outcome.reused_clauses
        if outcome.satisfiable:
            result.holds = False
            input_values = self._model_input_values(miter, outcome.result.model)
            self._locate_divergence(result, difference_by_cycle, input_values)
            result.cex = self._build_counterexample(result, input_values)
        if self._inprocess:
            stats = self._context.inprocess()
            self._inprocess_runs += 1
            self._inprocess_removed += int(stats.get("removed_clauses", 0))
            self._inprocess_eliminated += len(stats.get("eliminated") or [])
        result.runtime_seconds = _time.perf_counter() - started
        return result

    # ------------------------------------------------------------------ #
    # Preprocessing (sim-first falsification + fraig sweeping)
    # ------------------------------------------------------------------ #

    def _get_preprocessor(self) -> Preprocessor:
        if self._preprocessor is None:
            self._preprocessor = Preprocessor(
                self._aig,
                self._context,
                sim_patterns=self._sim_patterns,
                fraig_rounds=self._fraig_rounds,
                sim_backend=self._sim_backend,
            )
        return self._preprocessor

    def _preprocess(
        self, result: SequentialCheckResult, miter: int
    ) -> Tuple[Optional[Dict[int, int]], int]:
        """Sequential counterpart of the IPC engine's miter preprocessing.

        Returns ``(sim_model, goal_root)``: a concrete falsifying input
        sequence when random simulation flips the unrolled miter (the SAT
        solver is then skipped entirely), otherwise ``None`` plus the
        fraig-swept miter literal the solver should check instead.  The
        pipeline itself is :class:`repro.aig.preprocess.Preprocessor`,
        shared with the IPC engine.
        """
        outcome = self._get_preprocessor().run([miter])
        result.nodes_before = outcome.nodes_before
        result.nodes_after = outcome.nodes_after
        result.merged_nodes = outcome.merged_nodes
        result.sweep_seconds = outcome.elapsed_seconds
        if outcome.sim_model is not None:
            result.sim_falsified = True
            return outcome.sim_model, miter
        return None, outcome.roots[0]

    # ------------------------------------------------------------------ #
    # Witness reconstruction
    # ------------------------------------------------------------------ #

    def _model_input_values(self, miter: int, model: Dict[int, int]) -> Dict[int, int]:
        """AIG-input assignment of the satisfying model, restricted to the
        miter's cone (variables of other checks carry arbitrary values)."""
        input_values: Dict[int, int] = {}
        for node in self._aig.cone_nodes([miter]):
            if not self._aig.is_input(node):
                continue
            literal = self._context.literal_of(node << 1)
            value = model.get(abs(literal))
            if value is None:
                continue
            input_values[node] = int(value if literal > 0 else not value)
        return input_values

    def _locate_divergence(
        self,
        result: SequentialCheckResult,
        difference_by_cycle: List[List[Tuple[str, int]]],
        input_values: Dict[int, int],
    ) -> None:
        # One AIG traversal for every difference literal: per-literal
        # evaluate() calls would each re-walk the shared unrolled cone.
        flat = [
            literal for differences in difference_by_cycle for _, literal in differences
        ]
        bits = self._aig.evaluate(flat, input_values)
        position = 0
        for cycle_index, differences in enumerate(difference_by_cycle, start=1):
            for signal, literal in differences:
                if literal != FALSE and bits[position]:
                    result.failing_outputs.append(signal)
                    if result.first_divergence_cycle is None:
                        result.first_divergence_cycle = cycle_index
                position += 1
            if result.first_divergence_cycle is not None:
                break

    def _evaluate_vectors(
        self, vectors: List, input_values: Dict[int, int]
    ) -> List[int]:
        """Word values of many literal vectors from ONE cone traversal.

        Witness reconstruction touches every materialised vector of every
        cycle; evaluating each with its own :meth:`AIG.evaluate` call would
        re-traverse the unrolled cone per vector (quadratic in the depth).
        """
        flat = [literal for vector in vectors for literal in vector]
        bits = self._aig.evaluate(flat, input_values)
        values: List[int] = []
        position = 0
        for vector in vectors:
            value = 0
            for offset in range(len(vector)):
                value |= (bits[position + offset] & 1) << offset
            values.append(value)
            position += len(vector)
        return values

    def _build_counterexample(
        self, result: SequentialCheckResult, input_values: Dict[int, int]
    ) -> CounterExample:
        """Multi-cycle witness: instance 0 = design, instance 1 = golden.

        Records every materialised leaf (inputs and registers) of both
        models at every unrolled cycle plus the checked outputs at every
        compared cycle, so the counterexample replays as a complete
        waveform without re-running the solver.
        """
        property_name = f"sequential_equivalence[{', '.join(result.outputs)}]"
        cex = CounterExample(property_name=property_name)
        divergence = result.first_divergence_cycle
        instances = (
            (DESIGN_INSTANCE, self._design_frames),
            (GOLDEN_INSTANCE, self._golden_frames),
        )
        keys: List[Tuple[int, int, str]] = []
        vectors: List = []
        for instance, frames in instances:
            for cycle, frame in enumerate(frames[: result.depth + 1]):
                for signal, vector in frame.leaves.items():
                    keys.append((instance, cycle, signal))
                    vectors.append(vector)
        for cycle in range(1, result.depth + 1):
            for name in result.outputs:
                keys.append((DESIGN_INSTANCE, cycle, name))
                vectors.append(self._design_frames[cycle].vector_of(name))
                keys.append((GOLDEN_INSTANCE, cycle, name))
                vectors.append(self._golden_frames[cycle].vector_of(name))
        for key, value in zip(keys, self._evaluate_vectors(vectors, input_values)):
            cex.values[key] = value
        if divergence is not None:
            for name in result.outputs:
                left = cex.values[(DESIGN_INSTANCE, divergence, name)]
                right = cex.values[(GOLDEN_INSTANCE, divergence, name)]
                if left != right:
                    cex.failing_signals.append((name, divergence, left, right))
        return cex
