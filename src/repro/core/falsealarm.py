"""Counterexample diagnosis and spurious-CEX handling (Sec. V-B).

A failing init/fanout property does not automatically mean the design is
Trojan-infested: a signal may legitimately depend on values of previous
computations (scenario 2 of Sec. V-B), or the proof order may simply not have
provided an equality that another property establishes (scenario 1).

This module implements the *analysis* part of that work: given a
counterexample, it identifies for every failing signal the fanin leaves whose
inequality caused the failure, classifies each cause, and proposes the
corresponding resolution:

* ``REORDER``      — the causing signal is proven equal by another property of
  the same run; adding its equality to the failing property's assumptions is
  justified without further inspection (scenario 1).
* ``NEEDS_REVIEW`` — the causing signal is not proven anywhere: either it is a
  legitimate history dependency (the engineer adds a waiver) or it is part of
  a Trojan (scenario 2 / an actual detection).

The decision for ``NEEDS_REVIEW`` causes is deliberately left to the user —
automatically assuming them away could mask a real Trojan, as the trigger
state of a sequential HT is exactly such a signal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Set

from repro.core.config import DetectionConfig, Waiver
from repro.ipc.cex import CounterExample
from repro.ipc.prop import IntervalProperty, Term
from repro.rtl.fanout import FanoutAnalysis
from repro.rtl.ir import Module
from repro.rtl.netlist import DependencyGraph


class CauseKind(Enum):
    """Classification of a signal that caused a property failure."""

    REORDER = "provable-by-other-property"
    NEEDS_REVIEW = "requires-manual-review"


@dataclass
class Cause:
    """One fanin signal responsible for the observed difference."""

    signal: str
    kind: CauseKind
    covered_class: Optional[int] = None
    value_instance1: Optional[int] = None
    value_instance2: Optional[int] = None

    def describe(self) -> str:
        values = ""
        if self.value_instance1 is not None and self.value_instance2 is not None:
            values = f" (instance1=0x{self.value_instance1:x}, instance2=0x{self.value_instance2:x})"
        if self.kind is CauseKind.REORDER:
            return (
                f"{self.signal}: proven equal by the property of class {self.covered_class}; "
                f"add its equality to the assumptions and re-verify{values}"
            )
        return (
            f"{self.signal}: not proven equal by any property — either waive it as legitimate "
            f"history dependency or treat it as part of a Trojan{values}"
        )


@dataclass
class CexDiagnosis:
    """Full diagnosis of one counterexample."""

    prop: IntervalProperty
    cex: CounterExample
    causes: List[Cause] = field(default_factory=list)
    failing_signals: List[str] = field(default_factory=list)

    def reorder_causes(self) -> List[Cause]:
        return [cause for cause in self.causes if cause.kind is CauseKind.REORDER]

    def review_causes(self) -> List[Cause]:
        return [cause for cause in self.causes if cause.kind is CauseKind.NEEDS_REVIEW]

    @property
    def auto_resolvable(self) -> bool:
        """True when every cause is provable by another property (scenario 1)."""
        return bool(self.causes) and not self.review_causes()

    def proposed_assumptions(self) -> List[str]:
        """Signals whose equality may be added without manual review."""
        return sorted({cause.signal for cause in self.reorder_causes()})

    def proposed_waivers(self, reason: str = "manual review") -> List[Waiver]:
        """Waiver objects for the causes that need engineering judgement."""
        return [Waiver(signal=cause.signal, reason=reason) for cause in self.review_causes()]

    def summary(self) -> str:
        lines = [f"diagnosis of {self.prop.name} ({len(self.failing_signals)} failing signal(s)):"]
        for cause in self.causes:
            lines.append("  " + cause.describe())
        if not self.causes:
            lines.append("  no unconstrained fanin found; the difference is produced by the logic itself")
        return "\n".join(lines)


def diagnose_counterexample(
    module: Module,
    analysis: FanoutAnalysis,
    prop: IntervalProperty,
    cex: CounterExample,
    graph: Optional[DependencyGraph] = None,
    config: Optional[DetectionConfig] = None,
) -> CexDiagnosis:
    """Explain why ``prop`` failed with ``cex`` and classify the causes."""
    graph = graph or DependencyGraph(module)
    config = config or DetectionConfig()
    assumed_at_t: Set[str] = {
        constraint.left.signal
        for constraint in prop.assumptions
        if isinstance(constraint.right, Term) and constraint.left.time == 0
    }
    # Signals this very property is responsible for proving.  Assuming their
    # equality in order to prove themselves (or their peers in the same
    # property) would be circular and could mask a Trojan whose trigger state
    # happens to lie inside the input fanout cone — those causes always need
    # engineering judgement.
    proven_here: Set[str] = {constraint.left.signal for constraint in prop.commitments}
    diagnosis = CexDiagnosis(prop=prop, cex=cex, failing_signals=cex.signals_with_difference())

    causes: Dict[str, Cause] = {}
    for failing in diagnosis.failing_signals:
        if module.is_register(failing):
            leaves = graph.next_state_leaf_support(failing)
        else:
            leaves = graph.leaf_support(failing)
            # A non-registered output evaluated at t+1 depends on registers at
            # t+1, whose values come from their own next-state fanin at t.
            expanded: Set[str] = set()
            for leaf in leaves:
                if module.is_register(leaf):
                    expanded |= graph.next_state_leaf_support(leaf)
                else:
                    expanded.add(leaf)
            leaves = expanded
        for leaf in sorted(leaves):
            if leaf in assumed_at_t or module.is_input(leaf) or leaf in causes:
                continue
            value1 = cex.values.get((0, 0, leaf))
            value2 = cex.values.get((1, 0, leaf))
            if value1 is not None and value1 == value2:
                # The counterexample does not rely on this leaf differing.
                continue
            covered_class = analysis.placement.get(leaf)
            provable_elsewhere = covered_class is not None and leaf not in proven_here
            kind = CauseKind.REORDER if provable_elsewhere else CauseKind.NEEDS_REVIEW
            causes[leaf] = Cause(
                signal=leaf,
                kind=kind,
                covered_class=covered_class,
                value_instance1=value1,
                value_instance2=value2,
            )
    diagnosis.causes = list(causes.values())
    return diagnosis
