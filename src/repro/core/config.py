"""Configuration of the detection flow."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class Waiver:
    """A manually disqualified dependency (Sec. V-B, scenario 2).

    After inspecting a counterexample, a verification engineer may decide that
    the dependency of some signal on earlier computations is legitimate design
    behaviour, not a Trojan.  A waiver for that signal adds the 2-safety
    equality assumption ``instance1.signal@t == instance2.signal@t`` to every
    property, exactly like the paper's "equality for x can then be assumed".
    """

    signal: str
    reason: str = ""


@dataclass
class DetectionConfig:
    """Tuning knobs of :class:`repro.core.flow.TrojanDetectionFlow`.

    Attributes
    ----------
    inputs:
        The accelerator's data inputs (Algorithm 1's ``inputs`` argument).
        Defaults to every primary input that is not a clock or reset.
    cumulative_assumptions:
        When true (default), the property for class ``k+1`` assumes equality of
        *all* classes ``1..k`` instead of only ``fanouts_CCk``.  This is the
        automated form of the paper's Sec. V-B scenario 1 (re-ordering /
        strengthening with already-proven equalities): only signals proven by
        earlier properties of the same run are assumed, so soundness is
        unaffected, and structural false alarms caused by cross-class fanin
        disappear.  Set to false for the strict, paper-literal property shape.
    assume_inputs_at_prove_time:
        When true (default), every property additionally assumes input
        equality at the prove time point ``t+1``.  The miter of Fig. 2 feeds
        both instances the same input stream, so the assumption is part of the
        computational model; it only matters for outputs with a combinational
        input path.
    waivers:
        Manually disqualified dependencies (Sec. V-B scenario 2).
    stop_at_first_failure:
        Algorithm 1 returns at the first counterexample (default).  When
        false, the flow keeps checking all remaining properties and reports
        every failure — convenient for analysing a design in one run.
    max_class:
        Optional upper bound on the number of fanout iterations, mainly for
        tests and for experimenting with truncated flows.
    solver_backend:
        SAT backend of the run's persistent solver context (see
        :mod:`repro.sat.backend`).  ``"auto"`` (default) picks the fastest
        installed backend; ``"python"`` forces the bundled CDCL solver;
        ``"pysat"`` requires the python-sat package.
    """

    inputs: Optional[Sequence[str]] = None
    cumulative_assumptions: bool = True
    assume_inputs_at_prove_time: bool = True
    waivers: List[Waiver] = field(default_factory=list)
    stop_at_first_failure: bool = True
    max_class: Optional[int] = None
    solver_backend: str = "auto"

    def waived_signals(self) -> List[str]:
        return [waiver.signal for waiver in self.waivers]

    def with_waivers(self, *signals: str, reason: str = "") -> "DetectionConfig":
        """A copy of this configuration with additional waived signals."""
        new_waivers = list(self.waivers) + [Waiver(signal=name, reason=reason) for name in signals]
        return DetectionConfig(
            inputs=self.inputs,
            cumulative_assumptions=self.cumulative_assumptions,
            assume_inputs_at_prove_time=self.assume_inputs_at_prove_time,
            waivers=new_waivers,
            stop_at_first_failure=self.stop_at_first_failure,
            max_class=self.max_class,
            solver_backend=self.solver_backend,
        )
