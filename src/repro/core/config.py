"""Configuration of the detection flow."""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import ConfigError

#: Supported detection modes: the paper's golden-free combinational 2-safety
#: flow (default) and the bounded design-vs-golden sequential mode.
DETECTION_MODES = ("combinational", "sequential")


def _require_int(value: object, name: str, minimum: int) -> None:
    """Reject non-integers *including* ``bool`` for integer config fields.

    ``bool`` is a subclass of ``int``, so a bare ``isinstance(value, int)``
    silently accepts ``jobs=True`` (a worker count of 1) or ``depth=False``;
    callers passing booleans almost certainly mixed up two keyword arguments,
    which must fail at construction, not mid-run.
    """
    if isinstance(value, bool) or not isinstance(value, int):
        raise ConfigError(f"{name} must be an integer, got {value!r}")
    if value < minimum:
        raise ConfigError(f"{name} must be >= {minimum}, got {value!r}")


def validate_reset_entry(name: object, value: object) -> None:
    """Validate one ``reset_values`` entry (register name -> reset value).

    The single rule set for reset overrides, shared by
    :class:`DetectionConfig` and by direct
    :class:`repro.core.unroll.SequentialUnroller` construction — whichever
    entry path an override takes, the same inputs are accepted.
    """
    if not isinstance(name, str) or not name.strip():
        raise ConfigError(f"reset_values keys must be register names, got {name!r}")
    _require_int(value, f"reset value of {name!r}", 0)


def validate_input_names(names: Sequence[str], source: str = "") -> None:
    """Reject empty, whitespace-padded, or duplicate input signal names.

    The single source of truth for input-list validation: used both by
    :meth:`DetectionConfig.__post_init__` and by the CLI-facing
    :func:`repro.api.parse_input_list`.  ``source`` names the offending
    input list in error messages (e.g. the raw ``--inputs`` text).
    """
    where = f" in input list {source!r}" if source else ""
    seen = set()
    for name in names:
        if not isinstance(name, str) or not name.strip():
            raise ConfigError(
                f"input names must be non-empty strings{where}, got {name!r}"
            )
        if name != name.strip():
            raise ConfigError(
                f"input name {name!r}{where} has surrounding whitespace; strip it first"
            )
        if name in seen:
            raise ConfigError(f"duplicate input signal {name!r}{where}")
        seen.add(name)


@dataclass(frozen=True)
class Waiver:
    """A manually disqualified dependency (Sec. V-B, scenario 2).

    After inspecting a counterexample, a verification engineer may decide that
    the dependency of some signal on earlier computations is legitimate design
    behaviour, not a Trojan.  A waiver for that signal adds the 2-safety
    equality assumption ``instance1.signal@t == instance2.signal@t`` to every
    property, exactly like the paper's "equality for x can then be assumed".
    """

    signal: str
    reason: str = ""


@dataclass
class DetectionConfig:
    """Tuning knobs of :class:`repro.core.flow.TrojanDetectionFlow`.

    Attributes
    ----------
    inputs:
        The accelerator's data inputs (Algorithm 1's ``inputs`` argument).
        Defaults to every primary input that is not a clock or reset.
    cumulative_assumptions:
        When true (default), the property for class ``k+1`` assumes equality of
        *all* classes ``1..k`` instead of only ``fanouts_CCk``.  This is the
        automated form of the paper's Sec. V-B scenario 1 (re-ordering /
        strengthening with already-proven equalities): only signals proven by
        earlier properties of the same run are assumed, so soundness is
        unaffected, and structural false alarms caused by cross-class fanin
        disappear.  Set to false for the strict, paper-literal property shape.
    assume_inputs_at_prove_time:
        When true (default), every property additionally assumes input
        equality at the prove time point ``t+1``.  The miter of Fig. 2 feeds
        both instances the same input stream, so the assumption is part of the
        computational model; it only matters for outputs with a combinational
        input path.
    waivers:
        Manually disqualified dependencies (Sec. V-B scenario 2).
    stop_at_first_failure:
        Algorithm 1 returns at the first counterexample (default).  When
        false, the flow keeps checking all remaining properties and reports
        every failure — convenient for analysing a design in one run.
    max_class:
        Optional upper bound on the number of fanout iterations, mainly for
        tests and for experimenting with truncated flows.
    solver_backend:
        SAT backend of the run's persistent solver context (see
        :mod:`repro.sat.backend`).  ``"auto"`` (default) picks the fastest
        installed backend; ``"python"`` forces the bundled CDCL solver;
        ``"pysat"`` requires the python-sat package.
    jobs:
        Parallelism of the execution subsystem (:mod:`repro.exec`).  1
        (default) settles classes inline on the calling process; N > 1
        shards property classes — and, in a batch, designs — over N forked
        worker processes with per-worker solver-context affinity.
    cache_dir:
        Directory of the persistent on-disk result cache.  When set, settled
        property classes are stored content-addressed by a fingerprint of
        the elaborated netlist, the semantic configuration and the class
        index; later audits replay unchanged classes without any solver
        work.  ``None`` (default) disables caching entirely.
    use_cache:
        When false, ``cache_dir`` is neither read nor written (the CLI's
        ``--no-cache``); useful for forcing a clean re-proof into an
        otherwise warm cache directory.
    mode:
        Detection mode.  ``"combinational"`` (default) is the paper's
        golden-free 2-safety flow over a symbolic starting state;
        ``"sequential"`` unrolls the design against a *golden* model for
        ``depth`` cycles from the reset state and checks every common output
        for bounded divergence (one property class per output; see
        :mod:`repro.core.unroll`).
    depth:
        Unrolling bound of the sequential mode (cycles from reset, >= 1).
        Ignored by the combinational mode.
    reset_values:
        Per-register overrides of the sequential mode's reset state
        (register name -> value); registers without an override start at
        their declared reset value, or 0.  Ignored by the combinational
        mode.
    simplify:
        When true (default), every property miter is preprocessed before
        the SAT solver sees it (:mod:`repro.aig` simvec/simplify/fraig):
        bit-parallel random simulation falsifies tampered cones outright
        (a counterexample with zero CDCL calls), and fraig-style SAT
        sweeping merges simulation-equivalent nodes so the remaining
        obligations encode smaller CNF.  ``False`` (the CLI's
        ``--no-simplify``) sends every miter straight to Tseitin + CDCL.
        Verdicts, counterexamples and coverage are identical either way —
        only the performance telemetry differs.
    sim_patterns:
        Patterns per random-simulation batch (>= 1; default 64, one
        machine word).  More patterns falsify/refine more cones per batch
        at proportional simulation cost.
    fraig_rounds:
        Counterexample-guided refinement rounds of the fraig sweep per
        preprocessed cone (>= 0; 0 disables SAT sweeping but keeps
        sim-first falsification).
    inprocess:
        When true (default), the persistent solver context is simplified
        *between* checks (clause vivification + bounded elimination of dead
        per-check miter variables at level 0, plus learned-clause
        reduction inside the solver).  ``False`` (the CLI's
        ``--no-inprocess``) leaves the clause database untouched between
        checks.  Verdicts and counterexamples are identical either way.
    sim_backend:
        Simulation kernel of the random-pattern batches: ``"auto"``
        (default) picks the numpy-vectorized kernel for wide batches when
        numpy is installed, ``"python"`` forces the pure-Python kernel,
        ``"numpy"`` forces the vectorized kernel (falling back to Python
        when numpy is missing).  The kernels are bit-identical, so this is
        purely an execution knob.
    trace:
        When true, the run records hierarchical spans (:mod:`repro.obs`):
        worker chunks collect per-phase timings and ship them back with
        their result records, and the report carries a per-phase profile.
        A pure execution knob like ``jobs``: excluded from the config
        fingerprint, stripped by report normalization, zero behavior
        change when off.
    split:
        When true (default), a combinational check whose first SAT call
        exceeds ``split_conflicts`` conflicts is aborted and cube-and-
        conquered: the search space is partitioned into ``2^split_depth``
        cube tasks over the most influential free input bits
        (:mod:`repro.sat.cubes`), solved independently (and in parallel
        under ``jobs > 1``), and reduced — any SAT cube yields the class
        counterexample, all-UNSAT proves the class.  ``False`` (the CLI's
        ``--no-split``) always solves monolithically.  Verdicts,
        counterexamples and normalized reports are identical either way.
        Semantic for caching purposes: split runs write per-cube cache
        entries so an interrupted hard proof resumes from settled cubes.
    split_conflicts:
        Conflict budget of the monolithic attempt (>= 1; default 20000).
        Only the *first* raw SAT call of a class is budgeted; cube solves
        and spurious-counterexample re-checks always run to completion.
        Ignored when ``split`` is false and by the sequential mode (whose
        golden-model unrolling has no miter to split).
    split_depth:
        Number of branching bits of a split (>= 1, <= 10; default 2),
        producing ``2^split_depth`` cube tasks per split class.
    task_retries:
        How many times a parallel task whose worker process *died* (crash,
        OOM kill, SIGKILL) is requeued onto a respawned worker before its
        classes are quarantined as ``error`` outcomes (>= 0; default 2).
        A pure execution knob like ``jobs``: retry histories never change
        verdicts or normalized reports.  Ignored when ``jobs`` is 1.
    check_timeout_s:
        Optional per-class wall-clock deadline in seconds (> 0, or None to
        disable).  A SAT check that exceeds the deadline is aborted at the
        solver's conflict-poll seam and the class settles as an inconclusive
        ``timeout`` outcome carrying partial telemetry instead of hanging
        the run.  Semantic for caching purposes: a timeout bound changes
        which classes settle, so it participates in the config fingerprint.
        Best-effort on the pysat backend (which cannot be interrupted on a
        wall-clock boundary).
    """

    inputs: Optional[Sequence[str]] = None
    cumulative_assumptions: bool = True
    assume_inputs_at_prove_time: bool = True
    waivers: List[Waiver] = field(default_factory=list)
    stop_at_first_failure: bool = True
    max_class: Optional[int] = None
    solver_backend: str = "auto"
    jobs: int = 1
    cache_dir: Optional[str] = None
    use_cache: bool = True
    mode: str = "combinational"
    depth: int = 10
    reset_values: Optional[Dict[str, int]] = None
    simplify: bool = True
    sim_patterns: int = 64
    fraig_rounds: int = 1
    inprocess: bool = True
    sim_backend: str = "auto"
    trace: bool = False
    split: bool = True
    split_conflicts: int = 20000
    split_depth: int = 2
    task_retries: int = 2
    check_timeout_s: Optional[float] = None

    def __post_init__(self) -> None:
        """Fail at construction, not mid-run (see :class:`repro.errors.ConfigError`)."""
        from repro.sat.backend import available_backends

        if self.solver_backend != "auto" and self.solver_backend not in available_backends():
            raise ConfigError(
                f"unknown solver backend {self.solver_backend!r}; "
                f"available: auto, {', '.join(available_backends())}"
            )
        if self.max_class is not None:
            _require_int(self.max_class, "max_class", 0)
        _require_int(self.jobs, "jobs", 1)
        if self.cache_dir is not None and not str(self.cache_dir).strip():
            raise ConfigError("cache_dir must be a non-empty path (or None)")
        if self.mode not in DETECTION_MODES:
            raise ConfigError(
                f"unknown detection mode {self.mode!r}; "
                f"available: {', '.join(DETECTION_MODES)}"
            )
        _require_int(self.depth, "depth", 1)
        if not isinstance(self.simplify, bool):
            raise ConfigError(f"simplify must be a bool, got {self.simplify!r}")
        _require_int(self.sim_patterns, "sim_patterns", 1)
        _require_int(self.fraig_rounds, "fraig_rounds", 0)
        if not isinstance(self.inprocess, bool):
            raise ConfigError(f"inprocess must be a bool, got {self.inprocess!r}")
        if not isinstance(self.trace, bool):
            raise ConfigError(f"trace must be a bool, got {self.trace!r}")
        if not isinstance(self.split, bool):
            raise ConfigError(f"split must be a bool, got {self.split!r}")
        _require_int(self.split_conflicts, "split_conflicts", 1)
        _require_int(self.split_depth, "split_depth", 1)
        if self.split_depth > 10:
            raise ConfigError(
                f"split_depth must be <= 10 (2^depth cube tasks), got {self.split_depth!r}"
            )
        _require_int(self.task_retries, "task_retries", 0)
        if self.check_timeout_s is not None:
            if isinstance(self.check_timeout_s, bool) or not isinstance(
                self.check_timeout_s, (int, float)
            ):
                raise ConfigError(
                    f"check_timeout_s must be a number of seconds (or None), "
                    f"got {self.check_timeout_s!r}"
                )
            if self.check_timeout_s <= 0:
                raise ConfigError(
                    f"check_timeout_s must be > 0, got {self.check_timeout_s!r}"
                )
        from repro.aig.simvec import SIM_BACKENDS

        if self.sim_backend not in SIM_BACKENDS:
            raise ConfigError(
                f"unknown sim backend {self.sim_backend!r}; "
                f"available: {', '.join(SIM_BACKENDS)}"
            )
        if self.reset_values is not None:
            if not isinstance(self.reset_values, dict):
                raise ConfigError(
                    f"reset_values must be a dict of register name -> value, "
                    f"got {self.reset_values!r}"
                )
            for name, value in self.reset_values.items():
                validate_reset_entry(name, value)
        if self.inputs is not None:
            validate_input_names(self.inputs)

    # ------------------------------------------------------------------ #
    # Serialization (the audit service's submission body, and anywhere a
    # configuration crosses a process or network boundary)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native dict covering every field (``from_dict`` inverse)."""
        return {
            "inputs": list(self.inputs) if self.inputs is not None else None,
            "cumulative_assumptions": self.cumulative_assumptions,
            "assume_inputs_at_prove_time": self.assume_inputs_at_prove_time,
            "waivers": [
                {"signal": waiver.signal, "reason": waiver.reason}
                for waiver in self.waivers
            ],
            "stop_at_first_failure": self.stop_at_first_failure,
            "max_class": self.max_class,
            "solver_backend": self.solver_backend,
            "jobs": self.jobs,
            "cache_dir": self.cache_dir,
            "use_cache": self.use_cache,
            "mode": self.mode,
            "depth": self.depth,
            "reset_values": dict(self.reset_values) if self.reset_values is not None else None,
            "simplify": self.simplify,
            "sim_patterns": self.sim_patterns,
            "fraig_rounds": self.fraig_rounds,
            "inprocess": self.inprocess,
            "sim_backend": self.sim_backend,
            "trace": self.trace,
            "split": self.split,
            "split_conflicts": self.split_conflicts,
            "split_depth": self.split_depth,
            "task_retries": self.task_retries,
            "check_timeout_s": self.check_timeout_s,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DetectionConfig":
        """Reconstruct a configuration from :meth:`to_dict` output.

        Missing keys keep their defaults (a partial dict is a valid config
        overlay); unknown keys raise :class:`ConfigError` so a typoed field
        in a service submission fails loudly instead of silently running
        with the default.  All value validation is ``__post_init__``'s.
        """
        if not isinstance(data, dict):
            raise ConfigError(
                f"serialized config must be a dict, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown config field(s) {', '.join(unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        kwargs: Dict[str, Any] = dict(data)
        if "waivers" in kwargs:
            entries = kwargs["waivers"]
            if not isinstance(entries, list):
                raise ConfigError(f"waivers must be a list, got {entries!r}")
            waivers: List[Waiver] = []
            for entry in entries:
                if not isinstance(entry, dict) or "signal" not in entry:
                    raise ConfigError(
                        f"each waiver must be a dict with a 'signal' key, got {entry!r}"
                    )
                waivers.append(
                    Waiver(signal=entry["signal"], reason=entry.get("reason", ""))
                )
            kwargs["waivers"] = waivers
        return cls(**kwargs)

    def waived_signals(self) -> List[str]:
        return [waiver.signal for waiver in self.waivers]

    def with_waivers(self, *signals: str, reason: str = "") -> "DetectionConfig":
        """A copy of this configuration with additional waived signals."""
        new_waivers = list(self.waivers) + [Waiver(signal=name, reason=reason) for name in signals]
        return replace(self, waivers=new_waivers)
