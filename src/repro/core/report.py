"""Verdicts and detection reports produced by the flow."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from repro.core.coverage import CoverageResult
from repro.core.falsealarm import CexDiagnosis
from repro.ipc.cex import CounterExample
from repro.ipc.engine import PropertyCheckResult
from repro.rtl.fanout import FanoutAnalysis


class Verdict(Enum):
    """Overall outcome of a detection run."""

    SECURE = "secure"
    TROJAN_SUSPECTED = "trojan-suspected"
    UNCOVERED_SIGNALS = "uncovered-signals"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class PropertyOutcome:
    """Result of one property of the iterative flow."""

    kind: str  # "init" or "fanout"
    index: int  # 0 for the init property, k for fanout_property_k
    result: PropertyCheckResult
    diagnosis: Optional[CexDiagnosis] = None
    # Number of spurious counterexamples that were resolved by re-verification
    # with strengthened assumptions (Sec. V-B scenario 1) before this result.
    resolved_spurious: int = 0

    @property
    def label(self) -> str:
        return "init property" if self.kind == "init" else f"fanout property {self.index}"

    @property
    def holds(self) -> bool:
        return self.result.holds


@dataclass
class DetectionReport:
    """Complete, machine-readable result of a detection run (Algorithm 1)."""

    design: str
    verdict: Verdict
    detected_by: Optional[str] = None
    outcomes: List[PropertyOutcome] = field(default_factory=list)
    counterexample: Optional[CounterExample] = None
    diagnosis: Optional[CexDiagnosis] = None
    coverage: Optional[CoverageResult] = None
    fanout_analysis: Optional[FanoutAnalysis] = None
    total_runtime_seconds: float = 0.0
    spurious_resolved: int = 0
    # Incremental-solving statistics of the run's shared solver context.
    solver_backend: str = ""
    solver_calls: int = 0
    solver_conflicts: int = 0
    cnf_clauses: int = 0
    cnf_clauses_reused: int = 0

    # ------------------------------------------------------------------ #
    # Convenience queries
    # ------------------------------------------------------------------ #

    @property
    def is_secure(self) -> bool:
        return self.verdict is Verdict.SECURE

    @property
    def trojan_detected(self) -> bool:
        """True when the run flags the design (property failure or coverage gap)."""
        return self.verdict is not Verdict.SECURE

    def properties_checked(self) -> int:
        return len(self.outcomes)

    def property_runtimes(self) -> Dict[str, float]:
        return {outcome.label: outcome.result.runtime_seconds for outcome in self.outcomes}

    def max_property_runtime(self) -> float:
        runtimes = [outcome.result.runtime_seconds for outcome in self.outcomes]
        return max(runtimes) if runtimes else 0.0

    def failing_outcome(self) -> Optional[PropertyOutcome]:
        for outcome in self.outcomes:
            if not outcome.holds:
                return outcome
        return None

    def solver_stats(self) -> Dict[str, int]:
        """Clause-reuse accounting of the run's shared solver context."""
        new_clauses = sum(outcome.result.cnf_new_clauses for outcome in self.outcomes)
        return {
            "solver_calls": self.solver_calls,
            "conflicts": self.solver_conflicts,
            "clauses_encoded": self.cnf_clauses,
            "clauses_new": new_clauses,
            "clauses_reused": self.cnf_clauses_reused,
        }

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def summary(self) -> str:
        lines = [f"design {self.design}: {self.verdict.value.upper()}"]
        if self.detected_by:
            lines.append(f"  detected by: {self.detected_by}")
        lines.append(
            f"  properties checked: {self.properties_checked()}"
            f" (max proof runtime {self.max_property_runtime():.2f} s,"
            f" total {self.total_runtime_seconds:.2f} s)"
        )
        if self.spurious_resolved:
            lines.append(f"  spurious counterexamples resolved: {self.spurious_resolved}")
        if self.solver_calls:
            stats = self.solver_stats()
            lines.append(
                f"  solver ({self.solver_backend}): {stats['solver_calls']} calls,"
                f" {stats['clauses_new']} new / {stats['clauses_reused']} reused clauses,"
                f" {stats['conflicts']} conflicts"
            )
        if self.coverage is not None and not self.coverage.complete:
            lines.append("  " + self.coverage.summary().replace("\n", "\n  "))
        if self.counterexample is not None:
            lines.append("  " + self.counterexample.format().replace("\n", "\n  "))
        if self.diagnosis is not None:
            lines.append("  " + self.diagnosis.summary().replace("\n", "\n  "))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.summary()
