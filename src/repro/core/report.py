"""Verdicts and detection reports produced by the flow.

Reports are serializable: :meth:`DetectionReport.to_dict` produces a
JSON-native dict stamped with :data:`SCHEMA_VERSION`, and
:meth:`DetectionReport.from_dict` reconstructs a report such that
``from_dict(to_dict(r)).to_dict() == to_dict(r)`` — the round-trip contract
the CLI's ``--json`` output and the ``report`` subcommand rely on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, List, Optional

from repro.core.coverage import CoverageResult
from repro.core.falsealarm import Cause, CauseKind, CexDiagnosis
from repro.errors import ReproError
from repro.ipc.cex import CounterExample
from repro.ipc.engine import PropertyCheckResult
from repro.ipc.prop import IntervalProperty
from repro.rtl.fanout import FanoutAnalysis

#: Version of the serialized report schema.  Bump on any incompatible change
#: to the dict layout; ``from_dict`` refuses versions it does not know.
#: v2: added the per-run ``execution`` block (workers, cache_hits,
#: cache_misses) emitted by the parallel execution subsystem.
#: v3: added the per-outcome sequential-mode fields ``depth_reached`` and
#: ``first_divergence_cycle`` (null for combinational outcomes).
#: v4: added the per-run ``preprocess`` block (nodes_before, nodes_after,
#: merged_nodes, sim_falsified, sweep_s) and the per-outcome preprocessing
#: telemetry of the simulation-guided simplification subsystem.
#: v5: added the CDCL search-dynamics counters to the ``solver`` block
#: (restarts, learned_clauses, deleted_clauses).
#: v6: added the optional ``profile`` block (per-phase wall-time breakdown
#: aggregated from spans; null unless the run was traced).
#: v7: added the per-outcome cube-and-conquer telemetry ``cubes`` and
#: ``cubes_cached`` (0 for classes settled monolithically).
#: v8: added the per-outcome ``status`` ("ok" / "timeout" / "error"), the
#: ``inconclusive`` verdict, and the fault-tolerance counters
#: ``execution.workers_lost`` / ``execution.tasks_retried``.
SCHEMA_VERSION = 8

#: Versions ``from_dict`` can still read.  Older versions are accepted
#: because v2..v8 are purely additive (missing blocks and fields default
#: when absent).
READABLE_SCHEMA_VERSIONS = (1, 2, 3, 4, 5, 6, 7, 8)


def check_schema_version(data: Dict[str, Any], what: str = "report") -> None:
    """Raise :class:`ReproError` unless ``data`` has a readable version."""
    version = data.get("schema_version")
    if version not in READABLE_SCHEMA_VERSIONS:
        readable = ", ".join(str(v) for v in READABLE_SCHEMA_VERSIONS)
        raise ReproError(
            f"unsupported {what} schema_version {version!r} "
            f"(this library reads versions {readable})"
        )


def execution_summary_line(workers: int, cache_hits: int, cache_misses: int) -> Optional[str]:
    """The shared ``execution: ...`` summary line, or None when unremarkable."""
    if workers <= 1 and not cache_hits and not cache_misses:
        return None
    cache_note = (
        f", result cache: {cache_hits} hit(s) / {cache_misses} miss(es)"
        if (cache_hits or cache_misses)
        else ""
    )
    return f"  execution: {workers} worker(s){cache_note}"


class Verdict(Enum):
    """Overall outcome of a detection run.

    ``INCONCLUSIVE`` is the fail-closed degradation of ``SECURE``: at least
    one property class could not be settled (its worker was quarantined or
    its check hit the wall-clock deadline) and nothing else failed.  Like
    every non-``SECURE`` verdict it keeps :attr:`DetectionReport.trojan_detected`
    true — an unproven design is never reported clean.
    """

    SECURE = "secure"
    TROJAN_SUSPECTED = "trojan-suspected"
    UNCOVERED_SIGNALS = "uncovered-signals"
    INCONCLUSIVE = "inconclusive"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class PropertyOutcome:
    """Result of one property of the iterative flow."""

    kind: str  # "init", "fanout", or "sequential"
    index: int  # 0 for the init property, k for fanout_property_k /
    #            the k-th output class of the sequential mode
    result: PropertyCheckResult
    diagnosis: Optional[CexDiagnosis] = None
    # Number of spurious counterexamples that were resolved by re-verification
    # with strengthened assumptions (Sec. V-B scenario 1) before this result.
    resolved_spurious: int = 0
    # Sequential-mode bookkeeping (None for combinational outcomes): the
    # unrolling bound this class was checked to, and the earliest cycle at
    # which the design diverged from the golden model (None when it held).
    depth_reached: Optional[int] = None
    first_divergence_cycle: Optional[int] = None
    # Cube-and-conquer bookkeeping (0 for classes settled monolithically):
    # the number of cube tasks this class was split into, and how many of
    # those verdicts were replayed from per-cube cache entries.
    cubes: int = 0
    cubes_cached: int = 0
    # How the class settled: "ok" (a real verdict), "timeout" (the check
    # exceeded ``check_timeout_s``; ``result`` carries partial telemetry),
    # or "error" (the task's worker died repeatedly and was quarantined).
    # Anything but "ok" makes the class inconclusive — ``holds`` stays True
    # only in the sense of "not falsified", and the run verdict degrades to
    # ``Verdict.INCONCLUSIVE`` unless a real failure outranks it.
    status: str = "ok"

    @property
    def label(self) -> str:
        if self.kind == "init":
            return "init property"
        if self.kind == "sequential":
            return f"sequential property {self.index}"
        return f"fanout property {self.index}"

    @property
    def holds(self) -> bool:
        return self.result.holds


@dataclass
class DetectionReport:
    """Complete, machine-readable result of a detection run (Algorithm 1)."""

    design: str
    verdict: Verdict
    detected_by: Optional[str] = None
    outcomes: List[PropertyOutcome] = field(default_factory=list)
    counterexample: Optional[CounterExample] = None
    diagnosis: Optional[CexDiagnosis] = None
    coverage: Optional[CoverageResult] = None
    fanout_analysis: Optional[FanoutAnalysis] = None
    total_runtime_seconds: float = 0.0
    spurious_resolved: int = 0
    # Incremental-solving statistics of the run's shared solver context.
    # The restart/learned/deleted counters expose the CDCL search dynamics
    # (Luby restarts, learned-clause retention and glue-aware reduction);
    # all solver counters live in the report's "solver" block, which the
    # determinism comparisons strip wholesale (see
    # :func:`repro.exec.records.normalized_report_dict`).
    solver_backend: str = ""
    solver_calls: int = 0
    solver_conflicts: int = 0
    solver_restarts: int = 0
    solver_learned_clauses: int = 0
    solver_deleted_clauses: int = 0
    cnf_clauses: int = 0
    cnf_clauses_reused: int = 0
    # Execution-subsystem statistics: worker-process count of the run, how
    # many classes replayed from / were written to the result cache, and the
    # fault-tolerance counters (worker processes that died mid-run, tasks
    # requeued onto respawned workers).
    workers: int = 1
    cache_hits: int = 0
    cache_misses: int = 0
    workers_lost: int = 0
    tasks_retried: int = 0
    # Preprocessing statistics of the simulation-guided simplification
    # subsystem (:mod:`repro.aig` simvec/simplify/fraig), aggregated over
    # the run's outcomes: miter-cone sizes before/after sweeping, proven
    # node merges, classes falsified by random simulation alone (zero CDCL
    # calls), and the total preprocessing wall time.
    preprocess_nodes_before: int = 0
    preprocess_nodes_after: int = 0
    preprocess_merged_nodes: int = 0
    preprocess_sim_falsified: int = 0
    preprocess_sweep_s: float = 0.0
    # Per-phase wall-time breakdown aggregated from the run's spans (see
    # :func:`repro.obs.trace.phase_profile`).  None unless the run was
    # traced; stripped by the determinism comparisons like every other
    # timing field.
    profile: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------ #
    # Convenience queries
    # ------------------------------------------------------------------ #

    @property
    def is_secure(self) -> bool:
        return self.verdict is Verdict.SECURE

    @property
    def trojan_detected(self) -> bool:
        """True when the run flags the design (property failure or coverage gap)."""
        return self.verdict is not Verdict.SECURE

    def properties_checked(self) -> int:
        return len(self.outcomes)

    def property_runtimes(self) -> Dict[str, float]:
        return {outcome.label: outcome.result.runtime_seconds for outcome in self.outcomes}

    def max_property_runtime(self) -> float:
        runtimes = [outcome.result.runtime_seconds for outcome in self.outcomes]
        return max(runtimes) if runtimes else 0.0

    def failing_outcome(self) -> Optional[PropertyOutcome]:
        for outcome in self.outcomes:
            if not outcome.holds:
                return outcome
        return None

    def solver_stats(self) -> Dict[str, int]:
        """Clause-reuse accounting of the run's shared solver context."""
        new_clauses = sum(outcome.result.cnf_new_clauses for outcome in self.outcomes)
        return {
            "solver_calls": self.solver_calls,
            "conflicts": self.solver_conflicts,
            "restarts": self.solver_restarts,
            "learned_clauses": self.solver_learned_clauses,
            "deleted_clauses": self.solver_deleted_clauses,
            "clauses_encoded": self.cnf_clauses,
            "clauses_new": new_clauses,
            "clauses_reused": self.cnf_clauses_reused,
        }

    # ------------------------------------------------------------------ #
    # Serialization (schema_version = SCHEMA_VERSION)
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native dict of the complete report, stamped with the schema version."""
        return {
            "schema_version": SCHEMA_VERSION,
            "design": self.design,
            "verdict": self.verdict.value,
            "detected_by": self.detected_by,
            "total_runtime_seconds": self.total_runtime_seconds,
            "spurious_resolved": self.spurious_resolved,
            "solver": {
                "backend": self.solver_backend,
                "calls": self.solver_calls,
                "conflicts": self.solver_conflicts,
                "restarts": self.solver_restarts,
                "learned_clauses": self.solver_learned_clauses,
                "deleted_clauses": self.solver_deleted_clauses,
                "cnf_clauses": self.cnf_clauses,
                "cnf_clauses_reused": self.cnf_clauses_reused,
            },
            "execution": {
                "workers": self.workers,
                "cache_hits": self.cache_hits,
                "cache_misses": self.cache_misses,
                "workers_lost": self.workers_lost,
                "tasks_retried": self.tasks_retried,
            },
            "preprocess": {
                "nodes_before": self.preprocess_nodes_before,
                "nodes_after": self.preprocess_nodes_after,
                "merged_nodes": self.preprocess_merged_nodes,
                "sim_falsified": self.preprocess_sim_falsified,
                "sweep_s": self.preprocess_sweep_s,
            },
            "profile": self.profile,
            "outcomes": [_outcome_to_dict(outcome) for outcome in self.outcomes],
            "counterexample": _cex_to_dict(self.counterexample),
            "diagnosis": _diagnosis_to_dict(self.diagnosis),
            "coverage": _coverage_to_dict(self.coverage),
            "fanout_analysis": _fanout_to_dict(self.fanout_analysis),
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The report as a JSON document (see :meth:`to_dict`)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "DetectionReport":
        """Reconstruct a report from :meth:`to_dict` output.

        Raises :class:`repro.errors.ReproError` on a missing or unsupported
        ``schema_version`` so that consumers fail loudly on foreign data.
        """
        if not isinstance(data, dict):
            raise ReproError(f"serialized report must be a dict, got {type(data).__name__}")
        check_schema_version(data)
        try:
            verdict = Verdict(data["verdict"])
            solver = data.get("solver", {})
            execution = data.get("execution", {})
            preprocess = data.get("preprocess", {})
            report = cls(
                design=data["design"],
                verdict=verdict,
                detected_by=data.get("detected_by"),
                outcomes=[_outcome_from_dict(entry) for entry in data.get("outcomes", [])],
                counterexample=_cex_from_dict(data.get("counterexample")),
                diagnosis=_diagnosis_from_dict(data.get("diagnosis")),
                coverage=_coverage_from_dict(data.get("coverage")),
                fanout_analysis=_fanout_from_dict(data.get("fanout_analysis")),
                total_runtime_seconds=data.get("total_runtime_seconds", 0.0),
                spurious_resolved=data.get("spurious_resolved", 0),
                solver_backend=solver.get("backend", ""),
                solver_calls=solver.get("calls", 0),
                solver_conflicts=solver.get("conflicts", 0),
                solver_restarts=solver.get("restarts", 0),
                solver_learned_clauses=solver.get("learned_clauses", 0),
                solver_deleted_clauses=solver.get("deleted_clauses", 0),
                cnf_clauses=solver.get("cnf_clauses", 0),
                cnf_clauses_reused=solver.get("cnf_clauses_reused", 0),
                workers=execution.get("workers", 1),
                cache_hits=execution.get("cache_hits", 0),
                cache_misses=execution.get("cache_misses", 0),
                workers_lost=execution.get("workers_lost", 0),
                tasks_retried=execution.get("tasks_retried", 0),
                preprocess_nodes_before=preprocess.get("nodes_before", 0),
                preprocess_nodes_after=preprocess.get("nodes_after", 0),
                preprocess_merged_nodes=preprocess.get("merged_nodes", 0),
                preprocess_sim_falsified=preprocess.get("sim_falsified", 0),
                preprocess_sweep_s=preprocess.get("sweep_s", 0.0),
                profile=data.get("profile"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ReproError(f"malformed serialized report: {error}") from error
        return report

    @classmethod
    def from_json(cls, text: str) -> "DetectionReport":
        """Reconstruct a report from a :meth:`to_json` document."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ReproError(f"report is not valid JSON: {error}") from error
        return cls.from_dict(data)

    # ------------------------------------------------------------------ #
    # Rendering
    # ------------------------------------------------------------------ #

    def summary(self) -> str:
        lines = [f"design {self.design}: {self.verdict.value.upper()}"]
        if self.detected_by:
            lines.append(f"  detected by: {self.detected_by}")
        failing = self.failing_outcome()
        if failing is not None and failing.first_divergence_cycle is not None:
            lines.append(
                f"  first divergence from the golden model at cycle "
                f"{failing.first_divergence_cycle} (bound {failing.depth_reached})"
            )
        lines.append(
            f"  properties checked: {self.properties_checked()}"
            f" (max proof runtime {self.max_property_runtime():.2f} s,"
            f" total {self.total_runtime_seconds:.2f} s)"
        )
        if self.spurious_resolved:
            lines.append(f"  spurious counterexamples resolved: {self.spurious_resolved}")
        execution_line = execution_summary_line(self.workers, self.cache_hits, self.cache_misses)
        if execution_line is not None:
            lines.append(execution_line)
        if self.workers_lost or self.tasks_retried:
            lines.append(
                f"  faults: {self.workers_lost} worker(s) lost, "
                f"{self.tasks_retried} task retry(ies)"
            )
        unsettled = [outcome for outcome in self.outcomes if outcome.status != "ok"]
        if unsettled:
            kinds = ", ".join(
                f"{outcome.label} ({outcome.status})" for outcome in unsettled
            )
            lines.append(f"  unsettled classes: {kinds}")
        if self.preprocess_sim_falsified or self.preprocess_merged_nodes:
            lines.append(
                f"  preprocess: {self.preprocess_sim_falsified} class(es) "
                f"falsified by simulation, {self.preprocess_merged_nodes} "
                f"node(s) merged by sweeping "
                f"({self.preprocess_nodes_before} -> "
                f"{self.preprocess_nodes_after} cone nodes, "
                f"{self.preprocess_sweep_s:.2f} s)"
            )
        if self.profile:
            lines.append(
                f"  phases: preprocess {self.profile.get('preprocess_s', 0.0):.2f} s"
                f" / solve {self.profile.get('solve_s', 0.0):.2f} s"
                f" (spans total {self.profile.get('total_s', 0.0):.2f} s)"
            )
        if self.solver_calls:
            stats = self.solver_stats()
            lines.append(
                f"  solver ({self.solver_backend}): {stats['solver_calls']} calls,"
                f" {stats['clauses_new']} new / {stats['clauses_reused']} reused clauses,"
                f" {stats['conflicts']} conflicts, {stats['restarts']} restarts,"
                f" {stats['learned_clauses']} learned /"
                f" {stats['deleted_clauses']} deleted"
            )
        if self.coverage is not None and not self.coverage.complete:
            lines.append("  " + self.coverage.summary().replace("\n", "\n  "))
        if self.counterexample is not None:
            lines.append("  " + self.counterexample.format().replace("\n", "\n  "))
        if self.diagnosis is not None:
            lines.append("  " + self.diagnosis.summary().replace("\n", "\n  "))
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.summary()


# ---------------------------------------------------------------------- #
# Serialization helpers (module-private; the public surface is
# DetectionReport.to_dict / from_dict).  Every producer emits only
# JSON-native values so that ``to_dict() == json.loads(to_json())``.
# ---------------------------------------------------------------------- #


def _outcome_to_dict(outcome: PropertyOutcome) -> Dict[str, Any]:
    result = outcome.result
    return {
        "kind": outcome.kind,
        "index": outcome.index,
        "property": result.prop.name,
        "holds": result.holds,
        "structurally_proven": result.structurally_proven,
        "runtime_seconds": result.runtime_seconds,
        "resolved_spurious": outcome.resolved_spurious,
        "sat_conflicts": result.sat_conflicts,
        "sat_decisions": result.sat_decisions,
        "merged_assumptions": result.merged_assumptions,
        "clause_assumptions": result.clause_assumptions,
        "cnf_new_clauses": result.cnf_new_clauses,
        "cnf_reused_clauses": result.cnf_reused_clauses,
        "solver_calls": result.solver_calls,
        "counterexample": _cex_to_dict(result.cex),
        "depth_reached": outcome.depth_reached,
        "first_divergence_cycle": outcome.first_divergence_cycle,
        "sim_falsified": result.sim_falsified,
        "nodes_before": result.nodes_before,
        "nodes_after": result.nodes_after,
        "merged_nodes": result.merged_nodes,
        "sweep_s": result.sweep_seconds,
        "cubes": outcome.cubes,
        "cubes_cached": outcome.cubes_cached,
        "status": outcome.status,
    }


def _outcome_from_dict(data: Dict[str, Any]) -> PropertyOutcome:
    # The property itself is not serialized (it is reconstructible from the
    # design and the class index); a named stub keeps labels and summaries
    # working on deserialized reports.
    result = PropertyCheckResult(
        prop=IntervalProperty(name=data["property"]),
        holds=data["holds"],
        cex=_cex_from_dict(data.get("counterexample")),
        structurally_proven=data.get("structurally_proven", False),
        runtime_seconds=data.get("runtime_seconds", 0.0),
        sat_conflicts=data.get("sat_conflicts", 0),
        sat_decisions=data.get("sat_decisions", 0),
        merged_assumptions=data.get("merged_assumptions", 0),
        clause_assumptions=data.get("clause_assumptions", 0),
        cnf_new_clauses=data.get("cnf_new_clauses", 0),
        cnf_reused_clauses=data.get("cnf_reused_clauses", 0),
        solver_calls=data.get("solver_calls", 0),
        sim_falsified=data.get("sim_falsified", False),
        nodes_before=data.get("nodes_before", 0),
        nodes_after=data.get("nodes_after", 0),
        merged_nodes=data.get("merged_nodes", 0),
        sweep_seconds=data.get("sweep_s", 0.0),
    )
    return PropertyOutcome(
        kind=data["kind"],
        index=data["index"],
        result=result,
        resolved_spurious=data.get("resolved_spurious", 0),
        depth_reached=data.get("depth_reached"),
        first_divergence_cycle=data.get("first_divergence_cycle"),
        cubes=data.get("cubes", 0),
        cubes_cached=data.get("cubes_cached", 0),
        status=data.get("status", "ok"),
    )


def _cex_to_dict(cex: Optional[CounterExample]) -> Optional[Dict[str, Any]]:
    if cex is None:
        return None
    return {
        "property_name": cex.property_name,
        "failing_signals": [
            [signal, time, left, right] for signal, time, left, right in cex.failing_signals
        ],
        "values": [
            [instance, time, signal, value]
            for (instance, time, signal), value in sorted(cex.values.items())
        ],
    }


def _cex_from_dict(data: Optional[Dict[str, Any]]) -> Optional[CounterExample]:
    if data is None:
        return None
    return CounterExample(
        property_name=data["property_name"],
        failing_signals=[
            (signal, time, left, right) for signal, time, left, right in data["failing_signals"]
        ],
        values={
            (instance, time, signal): value
            for instance, time, signal, value in data["values"]
        },
    )


def _diagnosis_to_dict(diagnosis: Optional[CexDiagnosis]) -> Optional[Dict[str, Any]]:
    if diagnosis is None:
        return None
    return {
        "property": diagnosis.prop.name,
        "failing_signals": list(diagnosis.failing_signals),
        "counterexample": _cex_to_dict(diagnosis.cex),
        "causes": [
            {
                "signal": cause.signal,
                "kind": cause.kind.value,
                "covered_class": cause.covered_class,
                "value_instance1": cause.value_instance1,
                "value_instance2": cause.value_instance2,
            }
            for cause in diagnosis.causes
        ],
    }


def _diagnosis_from_dict(data: Optional[Dict[str, Any]]) -> Optional[CexDiagnosis]:
    if data is None:
        return None
    return CexDiagnosis(
        prop=IntervalProperty(name=data["property"]),
        cex=_cex_from_dict(data.get("counterexample")),
        causes=[
            Cause(
                signal=entry["signal"],
                kind=CauseKind(entry["kind"]),
                covered_class=entry.get("covered_class"),
                value_instance1=entry.get("value_instance1"),
                value_instance2=entry.get("value_instance2"),
            )
            for entry in data.get("causes", [])
        ],
        failing_signals=list(data.get("failing_signals", [])),
    )


def _coverage_to_dict(coverage: Optional[CoverageResult]) -> Optional[Dict[str, Any]]:
    if coverage is None:
        return None
    return {
        "covered": sorted(coverage.covered),
        "uncovered": sorted(coverage.uncovered),
        "influence": {
            signal: sorted(influenced) for signal, influenced in sorted(coverage.influence.items())
        },
    }


def _coverage_from_dict(data: Optional[Dict[str, Any]]) -> Optional[CoverageResult]:
    if data is None:
        return None
    return CoverageResult(
        covered=set(data.get("covered", [])),
        uncovered=set(data.get("uncovered", [])),
        influence={signal: set(values) for signal, values in data.get("influence", {}).items()},
    )


def _fanout_to_dict(analysis: Optional[FanoutAnalysis]) -> Optional[Dict[str, Any]]:
    if analysis is None:
        return None
    return {
        "inputs": list(analysis.inputs),
        "classes": {str(k): sorted(signals) for k, signals in sorted(analysis.classes.items())},
        "distance": {signal: analysis.distance[signal] for signal in sorted(analysis.distance)},
        "placement": {signal: analysis.placement[signal] for signal in sorted(analysis.placement)},
        "uncovered": sorted(analysis.uncovered),
    }


def _fanout_from_dict(data: Optional[Dict[str, Any]]) -> Optional[FanoutAnalysis]:
    if data is None:
        return None
    return FanoutAnalysis(
        classes={int(k): set(signals) for k, signals in data.get("classes", {}).items()},
        distance=dict(data.get("distance", {})),
        uncovered=set(data.get("uncovered", [])),
        inputs=list(data.get("inputs", [])),
        placement=dict(data.get("placement", {})),
    )


# Public serialization surface: the execution subsystem's class-record
# round-trip (repro.exec.records) persists outcomes/counterexamples/
# diagnoses with exactly the report's JSON-native encoding, so these
# converters are part of the supported contract, not private helpers.
outcome_to_dict = _outcome_to_dict
outcome_from_dict = _outcome_from_dict
cex_to_dict = _cex_to_dict
cex_from_dict = _cex_from_dict
diagnosis_to_dict = _diagnosis_to_dict
diagnosis_from_dict = _diagnosis_from_dict
