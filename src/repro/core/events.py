"""Typed run events emitted by the detection scheduler.

The batched scheduler of :class:`repro.core.flow.TrojanDetectionFlow` no
longer accumulates results privately: it *emits* one event stream per run,
and every consumer — the streaming :meth:`repro.api.DetectionSession.iter_results`
generator, progress bars, telemetry hooks, the CLI's verbose mode — observes
the same typed events.  The lifecycle of one run is::

    RunStarted
      PropertyScheduled(k)            for every class k, in class order
        ConeSimplified(k)               preprocessing shrank the miter cone
        StructurallyDischarged(k)       settled on the AIG, no SAT involved
        -- or, during the SAT phase, still in class order --
        ClassSimFalsified(k)            random simulation flipped the miter
        CexFound(k)                     a counterexample was found
        CexWaived(k)                    ... and resolved as spurious (Sec. V-B)
        ClassProven(k)                  the class holds after SAT search
    RunFinished(report)

Every scheduled class produces a ``PropertyScheduled`` event and at most one
terminal event (``StructurallyDischarged``, ``ClassProven``, or a final
unresolved ``CexFound``); ``CexFound``/``CexWaived`` pairs may repeat while
spurious counterexamples are being strengthened away.  When the run stops at
the first failure (``DetectionConfig.stop_at_first_failure``, the default),
classes scheduled after the failing one are abandoned without a terminal
event — progress consumers should treat ``RunFinished`` (always the last
event, carrying the complete report) as the end of the stream, not a
terminal-event count.

These classes are re-exported as the public :mod:`repro.api.events` surface;
they live here so that :mod:`repro.core.flow` can emit them without importing
the (higher-level) API package.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, List, Optional, Tuple, Type

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.falsealarm import CexDiagnosis
    from repro.core.report import DetectionReport, PropertyOutcome
    from repro.ipc.cex import CounterExample


def class_label(index: int, kind: Optional[str] = None) -> str:
    """Human-readable name of property class ``index``.

    Combinational classes read "init property" (index 0) / "fanout property
    k"; sequential classes (``kind == "sequential"``) read "sequential
    property k".  ``kind`` is optional because not every event carries one —
    index-based naming is the combinational default.
    """
    if kind == "sequential":
        return f"sequential property {index}"
    return "init property" if index == 0 else f"fanout property {index}"


@dataclass(frozen=True)
class RunEvent:
    """Base class of all events of one detection run."""

    design: str


@dataclass(frozen=True)
class RunStarted(RunEvent):
    """The scheduler is about to settle ``scheduled_classes`` property classes.

    ``workers`` is the parallelism of the run's executor (1 for the classic
    in-process serial flow).
    """

    scheduled_classes: int
    solver_backend: str
    workers: int = 1


@dataclass(frozen=True)
class ClassEvent(RunEvent):
    """Base class of per-property-class events."""

    index: int

    @property
    def label(self) -> str:
        return class_label(self.index)


@dataclass(frozen=True)
class PropertyScheduled(ClassEvent):
    """A property was built and scheduled (emitted in class order)."""

    kind: str  # "init", "fanout", or "sequential"
    property_name: str
    commitments: int

    @property
    def label(self) -> str:
        return class_label(self.index, self.kind)


@dataclass(frozen=True)
class StructurallyDischarged(ClassEvent):
    """The class was settled on the shared AIG without any SAT search.

    ``from_cache`` marks a replay from the persistent result cache: the
    class was not re-proven, its recorded result was reused.
    """

    outcome: "PropertyOutcome"
    from_cache: bool = False

    @property
    def label(self) -> str:
        return self.outcome.label


@dataclass(frozen=True)
class ClassProven(ClassEvent):
    """The class's remaining SAT obligations were proven unsatisfiable.

    ``solve_s`` is the wall-clock time this class's proof took (structural
    preparation plus SAT search; 0.0 is possible for cache replays).
    """

    outcome: "PropertyOutcome"
    solve_s: float = 0.0
    from_cache: bool = False

    @property
    def label(self) -> str:
        return self.outcome.label


@dataclass(frozen=True)
class ConeSimplified(ClassEvent):
    """The class's miter cone was shrunk by preprocessing before the solver.

    Emitted between ``PropertyScheduled`` and the class's terminal event
    when the fraig sweep merged nodes or the rewrite pass compacted the
    cone (:mod:`repro.aig.simplify` / :mod:`repro.aig.fraig`).
    """

    nodes_before: int
    nodes_after: int
    merged_nodes: int
    kind: str = "fanout"

    @property
    def label(self) -> str:
        return class_label(self.index, self.kind)


@dataclass(frozen=True)
class ClassSimFalsified(ClassEvent):
    """Bit-parallel random simulation falsified this class's miter.

    The counterexample of the following ``CexFound`` event was produced
    with *zero* CDCL solver calls — a random pattern batch flipped the
    property miter outright (:mod:`repro.aig.simvec`).
    """

    kind: str = "fanout"

    @property
    def label(self) -> str:
        return class_label(self.index, self.kind)


@dataclass(frozen=True)
class CexFound(ClassEvent):
    """The SAT search produced a counterexample for this class.

    ``auto_resolvable`` tells the consumer whether the scheduler will resolve
    it automatically (a ``CexWaived`` event follows) or whether this is the
    class's terminal event — a suspected Trojan or a dependency that needs
    engineering review.
    """

    cex: "CounterExample"
    diagnosis: "CexDiagnosis"
    auto_resolvable: bool
    #: Wall-clock seconds of the check that produced this counterexample.
    solve_s: float = 0.0
    from_cache: bool = False
    #: Property kind of the failing class ("init", "fanout", "sequential");
    #: makes the label correct without an outcome on the event.
    kind: str = "fanout"

    @property
    def label(self) -> str:
        return class_label(self.index, self.kind)


@dataclass(frozen=True)
class CexWaived(ClassEvent):
    """A spurious counterexample was discharged by strengthened assumptions.

    The named signals are proven equal by another property of the same run
    (Sec. V-B scenario 1); their equalities were added and the class is being
    re-verified against the shared solver context.
    """

    signals: Tuple[str, ...]


@dataclass(frozen=True)
class RunFinished(RunEvent):
    """The run is complete; ``report`` is the final detection report.

    ``elapsed_s`` is the run's wall-clock duration (it equals the report's
    ``total_runtime_seconds``; carried on the event so telemetry consumers
    need not reach into the report).
    """

    report: "DetectionReport"
    elapsed_s: float = 0.0


Subscriber = Callable[[RunEvent], None]


class EventBus:
    """A small synchronous subscriber registry for run events.

    Callbacks run inline on the emitting thread, in subscription order;
    exceptions propagate to the emitter (an observer that must never abort a
    run should catch its own errors).  ``subscribe`` returns an unsubscribe
    callable, in the spirit of scrapy's signal manager.
    """

    def __init__(self) -> None:
        self._subscribers: List[Tuple[Optional[Type[RunEvent]], Subscriber]] = []

    def subscribe(
        self,
        callback: Subscriber,
        event_type: Optional[Type[RunEvent]] = None,
    ) -> Callable[[], None]:
        """Register ``callback`` for ``event_type`` (or all events when None)."""
        entry = (event_type, callback)
        self._subscribers.append(entry)

        def unsubscribe() -> None:
            if entry in self._subscribers:
                self._subscribers.remove(entry)

        return unsubscribe

    def emit(self, event: RunEvent) -> None:
        """Deliver ``event`` to every matching subscriber."""
        for event_type, callback in list(self._subscribers):
            if event_type is None or isinstance(event, event_type):
                callback(event)

    def __len__(self) -> int:
        return len(self._subscribers)
