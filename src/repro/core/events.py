"""Typed run events emitted by the detection scheduler.

The batched scheduler of :class:`repro.core.flow.TrojanDetectionFlow` no
longer accumulates results privately: it *emits* one event stream per run,
and every consumer — the streaming :meth:`repro.api.DetectionSession.iter_results`
generator, progress bars, telemetry hooks, the CLI's verbose mode — observes
the same typed events.  The lifecycle of one run is::

    RunStarted
      PropertyScheduled(k)            for every class k, in class order
        ConeSimplified(k)               preprocessing shrank the miter cone
        StructurallyDischarged(k)       settled on the AIG, no SAT involved
        -- or, during the SAT phase, still in class order --
        ClassSimFalsified(k)            random simulation flipped the miter
        SolverProgress(k)               heartbeat every N conflicts of a solve
        CexFound(k)                     a counterexample was found
        CexWaived(k)                    ... and resolved as spurious (Sec. V-B)
        ClassProven(k)                  the class holds after SAT search
    RunFinished(report)

Every scheduled class produces a ``PropertyScheduled`` event and at most one
terminal event (``StructurallyDischarged``, ``ClassProven``, or a final
unresolved ``CexFound``); ``CexFound``/``CexWaived`` pairs may repeat while
spurious counterexamples are being strengthened away.  When the run stops at
the first failure (``DetectionConfig.stop_at_first_failure``, the default),
classes scheduled after the failing one are abandoned without a terminal
event — progress consumers should treat ``RunFinished`` (always the last
event, carrying the complete report) as the end of the stream, not a
terminal-event count.

These classes are re-exported as the public :mod:`repro.api.events` surface;
they live here so that :mod:`repro.core.flow` can emit them without importing
the (higher-level) API package.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, Type

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.falsealarm import CexDiagnosis
    from repro.core.report import DetectionReport, PropertyOutcome
    from repro.ipc.cex import CounterExample

logger = logging.getLogger("repro.events")


def class_label(index: int, kind: Optional[str] = None) -> str:
    """Human-readable name of property class ``index``.

    Combinational classes read "init property" (index 0) / "fanout property
    k"; sequential classes (``kind == "sequential"``) read "sequential
    property k".  ``kind`` is optional because not every event carries one —
    index-based naming is the combinational default.
    """
    if kind == "sequential":
        return f"sequential property {index}"
    return "init property" if index == 0 else f"fanout property {index}"


@dataclass(frozen=True)
class RunEvent:
    """Base class of all events of one detection run.

    Every concrete event type round-trips through a JSON-native wire form:
    ``to_dict()`` stamps the payload with the event class name under the
    ``"event"`` key, and :func:`event_from_dict` dispatches back to the
    right class.  The wire form is what crosses process and network
    boundaries — the Server-Sent-Events feed of :mod:`repro.serve` streams
    exactly these dicts.
    """

    design: str

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native wire form of this event (see :func:`event_from_dict`)."""
        return {"event": type(self).__name__, "design": self.design}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunEvent":
        """Rebuild an event of exactly this class from its wire form."""
        return cls(design=data["design"])


@dataclass(frozen=True)
class RunStarted(RunEvent):
    """The scheduler is about to settle ``scheduled_classes`` property classes.

    ``workers`` is the parallelism of the run's executor (1 for the classic
    in-process serial flow).
    """

    scheduled_classes: int
    solver_backend: str
    workers: int = 1

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data.update(
            scheduled_classes=self.scheduled_classes,
            solver_backend=self.solver_backend,
            workers=self.workers,
        )
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunStarted":
        return cls(
            design=data["design"],
            scheduled_classes=data["scheduled_classes"],
            solver_backend=data["solver_backend"],
            workers=data.get("workers", 1),
        )


@dataclass(frozen=True)
class ClassEvent(RunEvent):
    """Base class of per-property-class events."""

    index: int

    @property
    def label(self) -> str:
        return class_label(self.index)

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data["index"] = self.index
        return data


@dataclass(frozen=True)
class PropertyScheduled(ClassEvent):
    """A property was built and scheduled (emitted in class order)."""

    kind: str  # "init", "fanout", or "sequential"
    property_name: str
    commitments: int

    @property
    def label(self) -> str:
        return class_label(self.index, self.kind)

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data.update(
            kind=self.kind,
            property_name=self.property_name,
            commitments=self.commitments,
        )
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PropertyScheduled":
        return cls(
            design=data["design"],
            index=data["index"],
            kind=data["kind"],
            property_name=data["property_name"],
            commitments=data["commitments"],
        )


@dataclass(frozen=True)
class StructurallyDischarged(ClassEvent):
    """The class was settled on the shared AIG without any SAT search.

    ``from_cache`` marks a replay from the persistent result cache: the
    class was not re-proven, its recorded result was reused.
    """

    outcome: "PropertyOutcome"
    from_cache: bool = False

    @property
    def label(self) -> str:
        return self.outcome.label

    def to_dict(self) -> Dict[str, Any]:
        from repro.core.report import outcome_to_dict

        data = super().to_dict()
        data.update(outcome=outcome_to_dict(self.outcome), from_cache=self.from_cache)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "StructurallyDischarged":
        from repro.core.report import outcome_from_dict

        return cls(
            design=data["design"],
            index=data["index"],
            outcome=outcome_from_dict(data["outcome"]),
            from_cache=data.get("from_cache", False),
        )


@dataclass(frozen=True)
class ClassProven(ClassEvent):
    """The class's remaining SAT obligations were proven unsatisfiable.

    ``solve_s`` is the wall-clock time this class's proof took (structural
    preparation plus SAT search; 0.0 is possible for cache replays).
    """

    outcome: "PropertyOutcome"
    solve_s: float = 0.0
    from_cache: bool = False

    @property
    def label(self) -> str:
        return self.outcome.label

    def to_dict(self) -> Dict[str, Any]:
        from repro.core.report import outcome_to_dict

        data = super().to_dict()
        data.update(
            outcome=outcome_to_dict(self.outcome),
            solve_s=self.solve_s,
            from_cache=self.from_cache,
        )
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassProven":
        from repro.core.report import outcome_from_dict

        return cls(
            design=data["design"],
            index=data["index"],
            outcome=outcome_from_dict(data["outcome"]),
            solve_s=data.get("solve_s", 0.0),
            from_cache=data.get("from_cache", False),
        )


@dataclass(frozen=True)
class ConeSimplified(ClassEvent):
    """The class's miter cone was shrunk by preprocessing before the solver.

    Emitted between ``PropertyScheduled`` and the class's terminal event
    when the fraig sweep merged nodes or the rewrite pass compacted the
    cone (:mod:`repro.aig.simplify` / :mod:`repro.aig.fraig`).
    """

    nodes_before: int
    nodes_after: int
    merged_nodes: int
    kind: str = "fanout"

    @property
    def label(self) -> str:
        return class_label(self.index, self.kind)

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data.update(
            nodes_before=self.nodes_before,
            nodes_after=self.nodes_after,
            merged_nodes=self.merged_nodes,
            kind=self.kind,
        )
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ConeSimplified":
        return cls(
            design=data["design"],
            index=data["index"],
            nodes_before=data["nodes_before"],
            nodes_after=data["nodes_after"],
            merged_nodes=data["merged_nodes"],
            kind=data.get("kind", "fanout"),
        )


@dataclass(frozen=True)
class ClassSplit(ClassEvent):
    """The class's monolithic solve blew its conflict budget and was cubed.

    Emitted between ``PropertyScheduled`` and the class's terminal event
    when the first SAT call exceeded ``DetectionConfig.split_conflicts``
    conflicts and the check was partitioned into ``cubes`` independently
    solvable cube tasks (:mod:`repro.sat.cubes`); ``cubes_cached`` of them
    were replayed from per-cube cache entries of an earlier (interrupted)
    run.  The class verdict is unchanged by splitting — any SAT cube yields
    the canonical counterexample, all-UNSAT proves the class.
    """

    cubes: int
    cubes_cached: int = 0
    kind: str = "fanout"

    @property
    def label(self) -> str:
        return class_label(self.index, self.kind)

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data.update(
            cubes=self.cubes,
            cubes_cached=self.cubes_cached,
            kind=self.kind,
        )
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassSplit":
        return cls(
            design=data["design"],
            index=data["index"],
            cubes=data["cubes"],
            cubes_cached=data.get("cubes_cached", 0),
            kind=data.get("kind", "fanout"),
        )


@dataclass(frozen=True)
class ClassSimFalsified(ClassEvent):
    """Bit-parallel random simulation falsified this class's miter.

    The counterexample of the following ``CexFound`` event was produced
    with *zero* CDCL solver calls — a random pattern batch flipped the
    property miter outright (:mod:`repro.aig.simvec`).
    """

    kind: str = "fanout"

    @property
    def label(self) -> str:
        return class_label(self.index, self.kind)

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data["kind"] = self.kind
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassSimFalsified":
        return cls(
            design=data["design"],
            index=data["index"],
            kind=data.get("kind", "fanout"),
        )


@dataclass(frozen=True)
class SolverProgress(ClassEvent):
    """Heartbeat from a running CDCL solve, every N conflicts.

    Emitted by the pure-Python :class:`repro.sat.solver.SatSolver` while a
    hard class is being settled, so live consumers (the CLI's verbose mode,
    SSE streaming clients of the serve daemon) see a long solve *move*.
    All counters are per-call (relative to this solve call's entry), and
    ``decision_level`` is the level at emission time.

    Heartbeats are transient telemetry: they flow through the EventBus and
    SSE live feeds but are never recorded in result records, reports, or
    the serve journal — replaying a finished audit yields none.
    """

    kind: str = "fanout"
    conflicts: int = 0
    restarts: int = 0
    learned_clauses: int = 0
    decision_level: int = 0

    @property
    def label(self) -> str:
        return class_label(self.index, self.kind)

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data.update(
            kind=self.kind,
            conflicts=self.conflicts,
            restarts=self.restarts,
            learned_clauses=self.learned_clauses,
            decision_level=self.decision_level,
        )
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SolverProgress":
        return cls(
            design=data["design"],
            index=data["index"],
            kind=data.get("kind", "fanout"),
            conflicts=data["conflicts"],
            restarts=data["restarts"],
            learned_clauses=data["learned_clauses"],
            decision_level=data["decision_level"],
        )


@dataclass(frozen=True)
class WorkerLost(ClassEvent):
    """The worker settling this class died; the scheduler is recovering.

    Emitted once per affected class when a worker process crashed mid-task.
    ``retries`` is how many times the task had been requeued when the event
    was emitted; ``quarantined`` marks the terminal case — the retry budget
    (``DetectionConfig.task_retries``) ran out and the class settles as an
    inconclusive ``error`` outcome instead of aborting the run.  A
    successfully retried task emits no event at all (its classes settle
    normally on the respawned worker), so ``WorkerLost`` always carries
    ``quarantined=True`` today; the flag is wire-visible for forward
    compatibility with per-retry streaming.
    """

    kind: str = "fanout"
    retries: int = 0
    quarantined: bool = False

    @property
    def label(self) -> str:
        return class_label(self.index, self.kind)

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data.update(
            kind=self.kind,
            retries=self.retries,
            quarantined=self.quarantined,
        )
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "WorkerLost":
        return cls(
            design=data["design"],
            index=data["index"],
            kind=data.get("kind", "fanout"),
            retries=data.get("retries", 0),
            quarantined=data.get("quarantined", False),
        )


@dataclass(frozen=True)
class CexFound(ClassEvent):
    """The SAT search produced a counterexample for this class.

    ``auto_resolvable`` tells the consumer whether the scheduler will resolve
    it automatically (a ``CexWaived`` event follows) or whether this is the
    class's terminal event — a suspected Trojan or a dependency that needs
    engineering review.
    """

    cex: "CounterExample"
    diagnosis: "CexDiagnosis"
    auto_resolvable: bool
    #: Wall-clock seconds of the check that produced this counterexample.
    solve_s: float = 0.0
    from_cache: bool = False
    #: Property kind of the failing class ("init", "fanout", "sequential");
    #: makes the label correct without an outcome on the event.
    kind: str = "fanout"

    @property
    def label(self) -> str:
        return class_label(self.index, self.kind)

    def to_dict(self) -> Dict[str, Any]:
        from repro.core.report import cex_to_dict, diagnosis_to_dict

        data = super().to_dict()
        data.update(
            cex=cex_to_dict(self.cex),
            diagnosis=diagnosis_to_dict(self.diagnosis),
            auto_resolvable=self.auto_resolvable,
            solve_s=self.solve_s,
            from_cache=self.from_cache,
            kind=self.kind,
        )
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CexFound":
        from repro.core.report import cex_from_dict, diagnosis_from_dict

        return cls(
            design=data["design"],
            index=data["index"],
            cex=cex_from_dict(data.get("cex")),
            diagnosis=diagnosis_from_dict(data.get("diagnosis")),
            auto_resolvable=data["auto_resolvable"],
            solve_s=data.get("solve_s", 0.0),
            from_cache=data.get("from_cache", False),
            kind=data.get("kind", "fanout"),
        )


@dataclass(frozen=True)
class CexWaived(ClassEvent):
    """A spurious counterexample was discharged by strengthened assumptions.

    The named signals are proven equal by another property of the same run
    (Sec. V-B scenario 1); their equalities were added and the class is being
    re-verified against the shared solver context.
    """

    signals: Tuple[str, ...]

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data["signals"] = list(self.signals)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CexWaived":
        return cls(
            design=data["design"],
            index=data["index"],
            signals=tuple(data["signals"]),
        )


@dataclass(frozen=True)
class RunFinished(RunEvent):
    """The run is complete; ``report`` is the final detection report.

    ``elapsed_s`` is the run's wall-clock duration (it equals the report's
    ``total_runtime_seconds``; carried on the event so telemetry consumers
    need not reach into the report).
    """

    report: "DetectionReport"
    elapsed_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        data = super().to_dict()
        data.update(report=self.report.to_dict(), elapsed_s=self.elapsed_s)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunFinished":
        from repro.core.report import DetectionReport

        return cls(
            design=data["design"],
            report=DetectionReport.from_dict(data["report"]),
            elapsed_s=data.get("elapsed_s", 0.0),
        )


# ---------------------------------------------------------------------- #
# Wire-format dispatch
# ---------------------------------------------------------------------- #

#: Every concrete event type that can cross a process or network boundary,
#: keyed by the class name ``to_dict()`` stamps under the ``"event"`` key.
#: A new event class must be added here (the wire round-trip test walks the
#: ``RunEvent`` subclass tree and fails on any concrete class missing from
#: this registry).
WIRE_EVENT_TYPES: Dict[str, Type[RunEvent]] = {
    cls.__name__: cls
    for cls in (
        RunStarted,
        PropertyScheduled,
        ConeSimplified,
        ClassSplit,
        ClassSimFalsified,
        SolverProgress,
        WorkerLost,
        StructurallyDischarged,
        ClassProven,
        CexFound,
        CexWaived,
        RunFinished,
    )
}


def event_from_dict(data: Dict[str, Any]) -> RunEvent:
    """Rebuild a typed run event from its ``to_dict()`` wire form.

    Raises :class:`repro.errors.ReproError` on unknown event names or
    malformed payloads, so transport layers (the SSE client, tests) fail
    loudly on foreign data instead of crashing deep inside a constructor.
    """
    if not isinstance(data, dict):
        raise ReproError(f"serialized event must be a dict, got {type(data).__name__}")
    name = data.get("event")
    event_type = WIRE_EVENT_TYPES.get(name)
    if event_type is None:
        known = ", ".join(sorted(WIRE_EVENT_TYPES))
        raise ReproError(f"unknown event type {name!r} (known: {known})")
    try:
        return event_type.from_dict(data)
    except ReproError:
        raise
    except (KeyError, TypeError, ValueError, AttributeError) as error:
        raise ReproError(f"malformed {name} event payload: {error}") from error


Subscriber = Callable[[RunEvent], None]


class _Subscription:
    """One registered observer.  Deliberately *not* a dataclass/tuple: two
    identical ``subscribe`` calls must produce distinguishable entries, so
    that one unsubscribe handle can only ever detach its own subscription
    (identity semantics, never value equality)."""

    __slots__ = ("event_type", "callback", "safe")

    def __init__(
        self,
        event_type: Optional[Type[RunEvent]],
        callback: Subscriber,
        safe: bool,
    ) -> None:
        self.event_type = event_type
        self.callback = callback
        self.safe = safe


class EventBus:
    """A small synchronous subscriber registry for run events.

    Callbacks run inline on the emitting thread, in subscription order.  By
    default an observer exception propagates to the emitter — aborting the
    run — which is right for consumers whose failure *should* fail the audit
    (e.g. a report writer).  Observers that must never abort a run (progress
    bars, telemetry, streaming clients) subscribe with ``safe=True``:
    their exceptions are logged on the ``repro.events`` logger and delivery
    continues.  ``subscribe`` returns an unsubscribe callable, in the spirit
    of scrapy's signal manager; each call returns a handle that detaches
    exactly its own subscription, even when the same ``(event_type,
    callback)`` pair was registered more than once.
    """

    def __init__(self) -> None:
        self._subscriptions: List[_Subscription] = []

    def subscribe(
        self,
        callback: Subscriber,
        event_type: Optional[Type[RunEvent]] = None,
        safe: bool = False,
    ) -> Callable[[], None]:
        """Register ``callback`` for ``event_type`` (or all events when None).

        With ``safe=True`` the callback can never abort the emitting run:
        exceptions it raises are logged and swallowed (log-and-continue).
        """
        subscription = _Subscription(event_type, callback, safe)
        self._subscriptions.append(subscription)

        def unsubscribe() -> None:
            # list.remove compares with ==, which is identity for
            # _Subscription — a second identical subscription is never
            # detached by this handle, and calling the handle twice is a
            # harmless no-op.
            try:
                self._subscriptions.remove(subscription)
            except ValueError:
                pass

        return unsubscribe

    def emit(self, event: RunEvent) -> None:
        """Deliver ``event`` to every matching subscriber."""
        for subscription in list(self._subscriptions):
            if subscription.event_type is not None and not isinstance(
                event, subscription.event_type
            ):
                continue
            if subscription.safe:
                try:
                    subscription.callback(event)
                except Exception:  # noqa: BLE001 - isolation is the contract
                    logger.exception(
                        "safe subscriber %r failed on %s (run continues)",
                        subscription.callback,
                        type(event).__name__,
                    )
            else:
                subscription.callback(event)

    def __len__(self) -> int:
        return len(self._subscriptions)
