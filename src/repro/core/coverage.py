"""Signal coverage check (Sec. IV-D, case 2 / Algorithm 1, line 17).

A hardware Trojan whose trigger does not depend on the IP inputs (for example
a cycle counter started by reset) and whose payload stays outside the input
fanout cone is invisible to the init/fanout properties: none of its signals
ever appears in a prove part.  The coverage check closes that gap by a purely
structural argument — every state or output signal of the IP must occur in
the prove part of some property; the remaining signals form the *uncovered
signal set* (UCS) that the verification engineer must inspect.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.rtl.fanout import FanoutAnalysis
from repro.rtl.ir import Module
from repro.rtl.netlist import DependencyGraph


@dataclass
class CoverageResult:
    """Outcome of the coverage check."""

    covered: Set[str] = field(default_factory=set)
    uncovered: Set[str] = field(default_factory=set)
    # For every uncovered signal: the state/output signals it can influence
    # (one clock cycle of structural fanout), to help locate a payload.
    influence: Dict[str, Set[str]] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        """True when every state and output signal is covered by a property."""
        return not self.uncovered

    def summary(self) -> str:
        if self.complete:
            return "coverage check passed: all state and output signals are covered"
        lines = [f"coverage check failed: {len(self.uncovered)} uncovered signal(s)"]
        for signal in sorted(self.uncovered):
            influenced = ", ".join(sorted(self.influence.get(signal, set()))) or "-"
            lines.append(f"  {signal} (influences: {influenced})")
        return "\n".join(lines)


def check_signal_coverage(
    module: Module,
    analysis: FanoutAnalysis,
    graph: Optional[DependencyGraph] = None,
) -> CoverageResult:
    """Check that the property set covers all state and output signals."""
    graph = graph or DependencyGraph(module)
    covered = set(analysis.placement)
    universe = set(module.state_and_output_signals())
    uncovered = universe - covered
    influence: Dict[str, Set[str]] = {}
    for signal in uncovered:
        influence[signal] = graph.signals_depending_on({signal}) - {signal}
    return CoverageResult(covered=covered, uncovered=uncovered, influence=influence)
