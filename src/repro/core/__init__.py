"""The paper's contribution: golden-free formal hardware-Trojan detection.

Public entry points:

* :class:`repro.core.flow.TrojanDetectionFlow` / :func:`repro.core.flow.detect_trojans`
  — Algorithm 1, the iterative verification flow,
* :mod:`repro.core.properties` — constructors for the *trojan*, *init* and
  *fanout* interval properties of Figs. 3-5,
* :mod:`repro.core.coverage` — the signal coverage check (Sec. IV-D, case 2),
* :mod:`repro.core.falsealarm` — counterexample diagnosis and waiver handling
  (Sec. V-B),
* :mod:`repro.core.report` — verdicts and machine-readable detection reports.
"""

from repro.core.config import DETECTION_MODES, DetectionConfig, Waiver
from repro.core.flow import TrojanDetectionFlow, detect_trojans
from repro.core.unroll import (
    SequentialCheckResult,
    SequentialUnroller,
    sequential_output_classes,
)
from repro.core.properties import (
    build_init_property,
    build_fanout_property,
    build_trojan_property,
)
from repro.core.coverage import check_signal_coverage
from repro.core.falsealarm import CexDiagnosis, diagnose_counterexample
from repro.core.replay import ReplayResult, replay_counterexample
from repro.core.report import DetectionReport, PropertyOutcome, Verdict

__all__ = [
    "DETECTION_MODES",
    "DetectionConfig",
    "Waiver",
    "TrojanDetectionFlow",
    "detect_trojans",
    "SequentialCheckResult",
    "SequentialUnroller",
    "sequential_output_classes",
    "build_init_property",
    "build_fanout_property",
    "build_trojan_property",
    "check_signal_coverage",
    "CexDiagnosis",
    "diagnose_counterexample",
    "ReplayResult",
    "replay_counterexample",
    "DetectionReport",
    "PropertyOutcome",
    "Verdict",
]
