"""Constructors for the trojan / init / fanout interval properties (Figs. 3-5).

All properties are 2-safety properties over two instances of the *same*
module: instance 0 and instance 1 of the IPC engine.  No golden model is
involved anywhere — this is the golden-free aspect of the method.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.config import DetectionConfig
from repro.errors import PropertyError
from repro.ipc.prop import IntervalProperty
from repro.rtl.fanout import FanoutAnalysis
from repro.rtl.ir import Module


def _data_inputs(module: Module, config: DetectionConfig) -> List[str]:
    if config.inputs is not None:
        unknown = [name for name in config.inputs if name not in module.inputs]
        if unknown:
            raise PropertyError(f"configured inputs are not primary inputs: {unknown}")
        return list(config.inputs)
    return module.data_inputs()


def _assumed_inputs(module: Module, config: DetectionConfig) -> List[str]:
    """Inputs assumed equal between the two instances.

    The miter of Fig. 2 feeds *all* inputs of both instances from the same
    source, so the equality assumption covers every primary input except the
    clock — including reset pins and inputs excluded from the fanout analysis.
    """
    assumed = [name for name in module.inputs if name not in module.clocks]
    for name in _data_inputs(module, config):
        if name not in assumed:
            assumed.append(name)
    return assumed


def _assumed_signals(analysis: FanoutAnalysis, k: int, config: DetectionConfig) -> List[str]:
    """Signals whose 2-safety equality is assumed at time t by property ``k``."""
    if k <= 0:
        return []
    if config.cumulative_assumptions:
        assumed = analysis.signals_up_to(k)
    else:
        assumed = analysis.signals_in_class(k)
    return sorted(assumed)


def _add_common_assumptions(
    prop: IntervalProperty,
    module: Module,
    analysis: FanoutAnalysis,
    config: DetectionConfig,
    data_inputs: Iterable[str],
    prove_time: int,
) -> None:
    for name in data_inputs:
        prop.assume_equal(name, 0)
    if config.assume_inputs_at_prove_time:
        for name in data_inputs:
            prop.assume_equal(name, prove_time)
    for waiver in config.waivers:
        if waiver.signal not in module.signals:
            raise PropertyError(f"waiver references unknown signal {waiver.signal!r}")
        prop.assume_equal(waiver.signal, 0)


def build_init_property(
    module: Module,
    analysis: FanoutAnalysis,
    config: Optional[DetectionConfig] = None,
) -> IntervalProperty:
    """The init property of Fig. 4.

    ``assume``: both instances receive the same inputs at time t.
    ``prove``:  all ``fanouts_CC1`` signals are equal at time t+1.
    """
    config = config or DetectionConfig()
    assumed_inputs = _assumed_inputs(module, config)
    prop = IntervalProperty(
        name="init_property",
        description="equal inputs at t imply equal fanouts_CC1 at t+1 (Fig. 4)",
    )
    _add_common_assumptions(prop, module, analysis, config, assumed_inputs, prove_time=1)
    for signal in sorted(analysis.proved_in_class(1)):
        prop.prove_equal(signal, 1)
    return prop


def build_fanout_property(
    module: Module,
    analysis: FanoutAnalysis,
    k: int,
    config: Optional[DetectionConfig] = None,
) -> IntervalProperty:
    """The fanout property of Fig. 5 for class ``k`` (``k >= 1``).

    ``assume``: ``fanouts_CCk`` (or, with cumulative assumptions, every class
    up to ``k``) are equal at time t, together with equal inputs.
    ``prove``:  ``fanouts_CCk+1`` signals are equal at time t+1.
    """
    if k < 1:
        raise PropertyError("fanout properties start at k = 1; use the init property for k = 0")
    config = config or DetectionConfig()
    assumed_inputs = _assumed_inputs(module, config)
    prop = IntervalProperty(
        name=f"fanout_property_{k}",
        description=(
            f"equal fanouts_CC{k} at t imply equal fanouts_CC{k + 1} at t+1 (Fig. 5)"
        ),
    )
    _add_common_assumptions(prop, module, analysis, config, assumed_inputs, prove_time=1)
    for signal in _assumed_signals(analysis, k, config):
        prop.assume_equal(signal, 0)
    for signal in sorted(analysis.proved_in_class(k + 1)):
        prop.prove_equal(signal, 1)
    return prop


def build_trojan_property(
    module: Module,
    analysis: FanoutAnalysis,
    config: Optional[DetectionConfig] = None,
    max_class: Optional[int] = None,
) -> IntervalProperty:
    """The monolithic trojan property of Fig. 3 (used by the ablation study).

    ``assume``: equal inputs at time t (and, per the miter model, at every
    later time point of the window when ``assume_inputs_at_prove_time``).
    ``prove``:  ``fanouts_CCk`` equal at time t+k for every class k.

    The decomposed init/fanout properties are the scalable equivalent
    (Theorem 1); this aggregate form exists to quantify that claim.
    """
    config = config or DetectionConfig()
    assumed_inputs = _assumed_inputs(module, config)
    depth = analysis.placement_depth
    if max_class is not None:
        depth = min(depth, max_class)
    if depth < 1:
        raise PropertyError("design has no input-reachable state or output signals")
    prop = IntervalProperty(
        name="trojan_property",
        description="aggregate interval property of Fig. 3",
    )
    for name in assumed_inputs:
        prop.assume_equal(name, 0)
    if config.assume_inputs_at_prove_time:
        for time in range(1, depth + 1):
            for name in assumed_inputs:
                prop.assume_equal(name, time)
    for waiver in config.waivers:
        prop.assume_equal(waiver.signal, 0)
    for k in range(1, depth + 1):
        for signal in sorted(analysis.proved_in_class(k)):
            prop.prove_equal(signal, k)
    return prop
