"""Tests for the cycle-accurate RTL simulator."""

import pytest

from repro.errors import SimulationError
from repro.rtl import elaborate_source
from repro.sim import Simulator, Trace


class TestBasicStepping:
    def test_pipeline_latency(self, pipeline_module):
        simulator = Simulator(pipeline_module)
        simulator.step({"din": 0x10})      # s1 <- 0x4a
        simulator.step({"din": 0x00})      # s2 <- 0x4b, s1 <- 0x5a
        values = simulator.step({"din": 0x00})
        assert values["dout"] == (0x10 ^ 0x5A) + 1

    def test_state_reflects_next_values(self, pipeline_module):
        simulator = Simulator(pipeline_module)
        simulator.step({"din": 0xFF})
        assert simulator.state()["s1"] == 0xFF ^ 0x5A

    def test_counter_with_enable_and_reset(self, counter_module):
        simulator = Simulator(counter_module)
        simulator.step({"rst": 1, "en": 0})
        for _ in range(5):
            simulator.step({"rst": 0, "en": 1})
        simulator.step({"rst": 0, "en": 0})
        assert simulator.state()["u_cnt.cnt"] == 5

    def test_missing_inputs_default_to_zero(self, counter_module):
        simulator = Simulator(counter_module)
        values = simulator.step()
        assert values["count"] == 0

    def test_peek_after_step(self, pipeline_module):
        simulator = Simulator(pipeline_module)
        simulator.step({"din": 1})
        # peek() reports the settled values of the cycle just simulated.
        assert simulator.peek("s1") == 0
        assert simulator.peek("dout") == 0

    def test_peek_unknown_signal_raises(self, pipeline_module):
        simulator = Simulator(pipeline_module)
        with pytest.raises(SimulationError):
            simulator.peek("nonexistent")

    def test_set_state_rejects_non_register(self, pipeline_module):
        simulator = Simulator(pipeline_module)
        with pytest.raises(SimulationError):
            simulator.set_state({"dout": 1})

    def test_set_state_masks_to_width(self, pipeline_module):
        simulator = Simulator(pipeline_module)
        simulator.set_state({"s1": 0x1FF})
        assert simulator.state()["s1"] == 0xFF

    def test_reset_restores_reset_values(self):
        module = elaborate_source(
            "module m(input clk, input rst, output [3:0] q); reg [3:0] r;"
            " always @(posedge clk or posedge rst) if (rst) r <= 4'h7; else r <= r + 4'h1;"
            " assign q = r; endmodule",
            "m",
        )
        simulator = Simulator(module)
        assert simulator.state()["r"] == 7
        simulator.step({"rst": 0})
        assert simulator.state()["r"] == 8
        simulator.reset()
        assert simulator.state()["r"] == 7

    def test_initial_state_override(self, pipeline_module):
        simulator = Simulator(pipeline_module, initial_state={"s1": 0x42})
        values = simulator.step({"din": 0})
        assert simulator.state()["s2"] == 0x43
        assert values["s1"] == 0x42

    def test_initial_state_rejects_unknown_register(self, pipeline_module):
        with pytest.raises(SimulationError):
            Simulator(pipeline_module, initial_state={"ghost": 1})


class TestTraces:
    def test_run_records_all_signals(self, pipeline_module):
        simulator = Simulator(pipeline_module)
        trace = simulator.run([{"din": 1}, {"din": 2}, {"din": 3}])
        assert len(trace) == 3
        assert trace.series("din") == [1, 2, 3]

    def test_run_with_watch_list(self, pipeline_module):
        simulator = Simulator(pipeline_module)
        trace = simulator.run([{"din": 5}] * 4, watch=["dout", "s1"])
        assert set(trace.snapshots[0]) == {"dout", "s1"}

    def test_run_cycles_constant_inputs(self, counter_module):
        simulator = Simulator(counter_module)
        trace = simulator.run_cycles(4, {"rst": 0, "en": 1})
        assert trace.series("count") == [0, 1, 2, 3]

    def test_trace_helpers(self):
        trace = Trace()
        trace.record({"a": 1, "b": 2})
        trace.record({"a": 3, "b": 4})
        assert trace.value("a", 1) == 3
        assert trace.last("b") == 4
        restricted = trace.restrict(["a"])
        assert restricted.snapshots == [{"a": 1}, {"a": 3}]

    def test_watch_unknown_signal_raises(self, pipeline_module):
        simulator = Simulator(pipeline_module)
        with pytest.raises(SimulationError):
            simulator.run([{"din": 0}], watch=["ghost"])


class TestCombinationalOrdering:
    def test_chained_wires_evaluate_in_topological_order(self):
        module = elaborate_source(
            "module m(input [3:0] a, output [3:0] y);"
            " wire [3:0] w1; wire [3:0] w2;"
            " assign w2 = w1 + 4'h1; assign w1 = a ^ 4'h3; assign y = w2; endmodule",
            "m",
        )
        assert Simulator(module).step({"a": 0})["y"] == 4

    def test_lut_in_simulation(self):
        module = elaborate_source(
            "module m(input [1:0] s, output reg [7:0] q);"
            " always @(*) case (s) 2'd0: q = 8'd10; 2'd1: q = 8'd20; 2'd2: q = 8'd30;"
            " default: q = 8'd40; endcase endmodule",
            "m",
        )
        simulator = Simulator(module)
        assert simulator.step({"s": 2})["q"] == 30
        assert simulator.step({"s": 3})["q"] == 40
