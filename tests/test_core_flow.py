"""Tests for the Algorithm 1 detection flow, coverage check and diagnosis."""

import pytest

from repro.core import (
    DetectionConfig,
    TrojanDetectionFlow,
    Verdict,
    Waiver,
    check_signal_coverage,
    detect_trojans,
    diagnose_counterexample,
)
from repro.core.falsealarm import CauseKind
from repro.rtl import DependencyGraph, compute_fanout_classes, elaborate_source


class TestCoverageCheck:
    def test_clean_pipeline_fully_covered(self, pipeline_module):
        analysis = compute_fanout_classes(pipeline_module)
        coverage = check_signal_coverage(pipeline_module, analysis)
        assert coverage.complete
        assert "all state and output signals are covered" in coverage.summary()

    def test_uncovered_trojan_flagged(self, uncovered_trojan_module):
        analysis = compute_fanout_classes(uncovered_trojan_module)
        coverage = check_signal_coverage(uncovered_trojan_module, analysis)
        assert not coverage.complete
        assert {"timer", "beacon"} <= coverage.uncovered
        assert "beacon" in coverage.influence["timer"]
        assert "uncovered" in coverage.summary()


class TestDetectionFlow:
    def test_clean_pipeline_is_secure(self, pipeline_module):
        report = detect_trojans(pipeline_module)
        assert report.verdict is Verdict.SECURE
        assert report.is_secure and not report.trojan_detected
        assert report.detected_by is None
        assert report.properties_checked() == 2
        assert report.coverage is not None and report.coverage.complete

    def test_trojaned_pipeline_detected(self, trojaned_module):
        report = detect_trojans(trojaned_module)
        assert report.verdict is Verdict.TROJAN_SUSPECTED
        assert report.detected_by == "fanout property 1"
        assert report.counterexample is not None
        assert report.diagnosis is not None
        assert "trig" in {cause.signal for cause in report.diagnosis.causes}

    def test_uncovered_trojan_found_by_coverage_check(self, uncovered_trojan_module):
        report = detect_trojans(uncovered_trojan_module)
        assert report.verdict is Verdict.UNCOVERED_SIGNALS
        assert report.detected_by == "coverage check"

    def test_waiving_the_trigger_still_caught_by_coverage_check(self, trojaned_module):
        # Waivers are an explicit engineering decision; waiving the actual
        # trigger suppresses the property failure, but the structural coverage
        # check still reports the input-independent counter (Sec. IV-D case 2).
        config = DetectionConfig(waivers=[Waiver("trig", "accepted risk")])
        report = detect_trojans(trojaned_module, config)
        assert all(outcome.holds for outcome in report.outcomes)
        assert report.verdict is Verdict.UNCOVERED_SIGNALS
        assert "trig" in report.coverage.uncovered

    def test_check_all_collects_every_failure(self, trojaned_module):
        config = DetectionConfig(stop_at_first_failure=False)
        report = detect_trojans(trojaned_module, config)
        assert report.properties_checked() == 2
        assert not report.outcomes[1].holds

    def test_max_class_limits_iterations(self, pipeline_module):
        report = detect_trojans(pipeline_module, DetectionConfig(max_class=1))
        assert report.properties_checked() == 1

    def test_flow_accessors(self, pipeline_module):
        flow = TrojanDetectionFlow(pipeline_module)
        assert flow.module is pipeline_module
        assert flow.analysis.depth == 2
        assert flow.config.cumulative_assumptions
        assert flow.engine is not None

    def test_report_runtime_and_summary(self, trojaned_module):
        report = detect_trojans(trojaned_module)
        assert report.total_runtime_seconds > 0
        assert report.max_property_runtime() >= 0
        summary = report.summary()
        assert "TROJAN-SUSPECTED" in summary and "fanout property 1" in summary
        assert report.failing_outcome() is not None
        assert report.property_runtimes()

    def test_spurious_reorder_cause_is_resolved_automatically(self):
        # A CC1 register that also depends on a *later*-class register: the
        # init property fails at first, but the cause is proven by another
        # property of the run, so the flow re-verifies with the strengthened
        # assumption (Sec. V-B scenario 1) and the design is secure.
        module = elaborate_source(
            "module m(input clk, input [3:0] a, output [3:0] y);"
            " reg [3:0] r1; reg [3:0] r2; reg [3:0] mixer;"
            " always @(posedge clk) begin r1 <= a; r2 <= r1; mixer <= a ^ r2; end"
            " assign y = r2 ^ mixer; endmodule",
            "m",
        )
        report = detect_trojans(module)
        assert report.is_secure
        assert report.spurious_resolved >= 1

    def test_strict_paper_mode_on_clean_pipeline(self, pipeline_module):
        report = detect_trojans(pipeline_module, DetectionConfig(cumulative_assumptions=False))
        assert report.is_secure


class TestDiagnosis:
    def _failing_outcome(self, module, config=None):
        flow = TrojanDetectionFlow(module, config)
        report = flow.run()
        return flow, report

    def test_needs_review_cause_for_trigger_counter(self, trojaned_module):
        flow, report = self._failing_outcome(trojaned_module)
        diagnosis = report.diagnosis
        assert diagnosis is not None
        causes = {cause.signal: cause for cause in diagnosis.causes}
        assert causes["trig"].kind is CauseKind.NEEDS_REVIEW
        assert not diagnosis.auto_resolvable
        assert diagnosis.proposed_waivers()[0].signal == "trig"
        assert "trig" in diagnosis.summary()

    def test_reorder_cause_classification(self):
        module = elaborate_source(
            "module m(input clk, input [3:0] a, output [3:0] y);"
            " reg [3:0] r1; reg [3:0] r2; reg [3:0] mixer;"
            " always @(posedge clk) begin r1 <= a; r2 <= r1; mixer <= a ^ r2; end"
            " assign y = r2 ^ mixer; endmodule",
            "m",
        )
        analysis = compute_fanout_classes(module)
        graph = DependencyGraph(module)
        from repro.core.properties import build_init_property
        from repro.ipc.engine import IpcEngine

        prop = build_init_property(module, analysis)
        result = IpcEngine(module).check(prop)
        assert not result.holds
        diagnosis = diagnose_counterexample(module, analysis, prop, result.cex, graph)
        causes = {cause.signal: cause for cause in diagnosis.causes}
        assert causes["r2"].kind is CauseKind.REORDER
        assert diagnosis.auto_resolvable
        assert diagnosis.proposed_assumptions() == ["r2"]

    def test_cause_describe_strings(self, trojaned_module):
        _, report = self._failing_outcome(trojaned_module)
        for cause in report.diagnosis.causes:
            assert cause.signal in cause.describe()
