"""Tests for the observability subsystem (:mod:`repro.obs`).

Covers the span tracer (ambient install, no-op default, Chrome trace
export, cross-process merge via the chunk-result channel), the exclusive
phase profile, the metrics registry's Prometheus exposition, the solver
progress heartbeats, and the hard invariant of the whole subsystem:
observability is a pure execution knob — a traced run's normalized report
is byte-identical to an untraced one, at any worker count.
"""

import json
import threading
import urllib.request
from dataclasses import replace

import pytest

from repro.api import Design, DetectionConfig, DetectionSession, SolverProgress
from repro.exec.records import normalized_report_dict
from repro.obs import metrics as obs_metrics
from repro.obs import progress as obs_progress
from repro.obs import trace as obs_trace
from repro.obs.trace import Tracer, install_tracer, phase_profile, span
from repro.rtl import elaborate_source
from repro.utils.timing import Stopwatch


# ---------------------------------------------------------------------- #
# Tracer and spans
# ---------------------------------------------------------------------- #


class TestTracer:
    def test_span_is_noop_without_tracer(self):
        assert obs_trace.current_tracer() is None
        with span("solve", cls=1):
            pass  # must not raise, must not record anywhere

    def test_spans_record_on_the_ambient_tracer(self):
        with install_tracer(Tracer()) as tracer:
            with span("outer", design="d"):
                with span("inner"):
                    pass
        events = tracer.export()
        assert [event["name"] for event in events] == ["inner", "outer"]
        for event in events:
            assert event["ph"] == "X"
            assert event["cat"] == "repro"
            assert event["dur"] >= 0
        assert events[1]["args"] == {"design": "d"}

    def test_install_restores_previous_tracer(self):
        outer = Tracer()
        with install_tracer(outer):
            with install_tracer(Tracer()):
                pass
            assert obs_trace.current_tracer() is outer
        assert obs_trace.current_tracer() is None

    def test_absorb_merges_foreign_events(self):
        tracer = Tracer()
        with install_tracer(tracer):
            obs_trace.absorb([{"name": "settle", "ph": "X", "ts": 1.0, "dur": 2.0,
                              "pid": 999, "tid": 1, "cat": "repro"}])
        assert len(tracer) == 1
        assert tracer.export()[0]["pid"] == 999

    def test_chrome_trace_shape_is_json_native(self):
        tracer = Tracer()
        tracer.record("solve", started=0.5, duration=0.25, args={"cls": 3})
        document = json.loads(json.dumps(tracer.to_chrome_trace()))
        assert document["displayTimeUnit"] == "ms"
        (event,) = document["traceEvents"]
        assert event["ts"] == pytest.approx(0.5e6)
        assert event["dur"] == pytest.approx(0.25e6)


class TestPhaseProfile:
    def test_nested_spans_count_self_time_only(self):
        # settle [0, 10] contains solve [2, 6]: settle's self time is 6.
        events = [
            {"name": "settle", "ph": "X", "ts": 0.0, "dur": 10e6, "pid": 1, "tid": 1},
            {"name": "solve", "ph": "X", "ts": 2e6, "dur": 4e6, "pid": 1, "tid": 1},
        ]
        profile = phase_profile(events)
        assert profile["phases"]["settle"]["total_s"] == pytest.approx(6.0)
        assert profile["phases"]["solve"]["total_s"] == pytest.approx(4.0)
        assert profile["solve_s"] == pytest.approx(4.0)
        assert profile["total_s"] == pytest.approx(10.0)

    def test_lanes_do_not_nest_across_processes(self):
        # Identical timestamps in different pids are siblings, not nested.
        events = [
            {"name": "solve", "ph": "X", "ts": 0.0, "dur": 5e6, "pid": 1, "tid": 1},
            {"name": "solve", "ph": "X", "ts": 0.0, "dur": 5e6, "pid": 2, "tid": 1},
        ]
        profile = phase_profile(events)
        assert profile["phases"]["solve"]["count"] == 2
        assert profile["phases"]["solve"]["total_s"] == pytest.approx(10.0)

    def test_preprocess_solve_split(self):
        events = [
            {"name": "preprocess", "ph": "X", "ts": 0.0, "dur": 3e6, "pid": 1, "tid": 1},
            {"name": "solve", "ph": "X", "ts": 4e6, "dur": 1e6, "pid": 1, "tid": 1},
        ]
        profile = phase_profile(events)
        assert profile["preprocess_s"] == pytest.approx(3.0)
        assert profile["solve_s"] == pytest.approx(1.0)


# ---------------------------------------------------------------------- #
# Metrics registry
# ---------------------------------------------------------------------- #


class TestMetricsRegistry:
    def test_counters_are_monotonic(self):
        registry = obs_metrics.MetricsRegistry()
        registry.inc("repro_jobs_total")
        registry.inc("repro_jobs_total", 2)
        assert registry.value("repro_jobs_total") == 3
        with pytest.raises(ValueError):
            registry.inc("repro_jobs_total", -1)

    def test_kind_mismatch_is_an_error(self):
        registry = obs_metrics.MetricsRegistry()
        registry.counter("x_total")
        with pytest.raises(TypeError):
            registry.gauge("x_total")

    def test_render_is_valid_prometheus_text(self):
        registry = obs_metrics.MetricsRegistry()
        registry.inc("repro_jobs_total", 2, help_text="Jobs")
        registry.set_gauge("repro_queue_depth", 1, help_text="Depth")
        registry.observe("repro_wait_seconds", 0.03, help_text="Wait")
        text = registry.render()
        assert text.endswith("\n")
        lines = text.splitlines()
        # Every line is a comment or `name{labels} value` with a float value.
        for line in lines:
            if line.startswith("#"):
                kind = line.split()
                assert kind[1] in ("HELP", "TYPE")
                continue
            name, value = line.rsplit(" ", 1)
            float(value)  # must parse
        assert "# TYPE repro_jobs_total counter" in lines
        assert "repro_jobs_total 2" in lines
        assert "# TYPE repro_queue_depth gauge" in lines
        assert "# TYPE repro_wait_seconds histogram" in lines
        assert 'repro_wait_seconds_bucket{le="+Inf"} 1' in lines
        assert "repro_wait_seconds_count 1" in lines

    def test_histogram_buckets_are_cumulative(self):
        registry = obs_metrics.MetricsRegistry()
        for value in (0.001, 0.03, 10.0):
            registry.observe("lat", value, buckets=(0.01, 1.0, 60.0))
        histogram = registry.histogram("lat")
        assert histogram.bucket_counts == [1, 2, 3]

    def test_gauge_callable_evaluates_at_render(self):
        registry = obs_metrics.MetricsRegistry()
        depth = [4]
        registry.gauge("depth", fn=lambda: depth[0])
        assert "depth 4" in registry.render().splitlines()
        depth[0] = 7
        assert "depth 7" in registry.render().splitlines()


# ---------------------------------------------------------------------- #
# Progress heartbeats
# ---------------------------------------------------------------------- #


class TestProgressHeartbeats:
    def test_no_sink_means_no_heartbeat(self):
        assert obs_progress.active_heartbeat() is None
        with obs_progress.progress_scope("d", 0, "init"):
            assert obs_progress.active_heartbeat() is None  # sink missing

    def test_sink_without_scope_is_inactive(self):
        with obs_progress.progress_sink(lambda event: None):
            assert obs_progress.active_heartbeat() is None  # scope missing

    def test_heartbeat_emits_solver_progress(self):
        got = []
        with obs_progress.progress_sink(got.append, interval=100):
            with obs_progress.progress_scope("dsn", 2, "fanout"):
                heartbeat = obs_progress.active_heartbeat()
                assert heartbeat is not None and heartbeat.interval == 100
                heartbeat.emit(
                    conflicts=200, restarts=1, learned_clauses=150, decision_level=9
                )
        (event,) = got
        assert isinstance(event, SolverProgress)
        assert (event.design, event.index, event.kind) == ("dsn", 2, "fanout")
        assert event.conflicts == 200
        # exact wire round-trip (dataclass equality, scalar payload)
        from repro.core.events import event_from_dict

        assert event_from_dict(event.to_dict()) == event

    def test_session_run_emits_heartbeats_on_hard_solves(self, monkeypatch):
        monkeypatch.setattr(obs_progress, "HEARTBEAT_CONFLICTS", 2)
        design = Design.from_benchmark("RS232-T2400")
        config = replace(
            design.default_config(), simplify=False, solver_backend="python"
        )
        session = DetectionSession(design, config=config)
        beats = []
        session.subscribe(beats.append, event_type=SolverProgress)
        report = session.run()
        assert report.solver_conflicts >= 2
        assert beats, "a conflict-heavy solve must heartbeat"
        for beat in beats:
            assert beat.design == design.name
            assert beat.conflicts % 2 == 0 and beat.conflicts > 0

    def test_heartbeats_never_enter_the_result_stream(self, monkeypatch):
        monkeypatch.setattr(obs_progress, "HEARTBEAT_CONFLICTS", 2)
        design = Design.from_benchmark("RS232-T2400")
        config = replace(
            design.default_config(), simplify=False, solver_backend="python"
        )
        yielded = list(DetectionSession(design, config=config).iter_results())
        assert not any(isinstance(event, SolverProgress) for event in yielded)


# ---------------------------------------------------------------------- #
# The hard invariant: observability is a pure execution knob
# ---------------------------------------------------------------------- #


class TestTraceIsAnExecutionKnob:
    def _normalized(self, module, **overrides):
        config = DetectionConfig(**overrides)
        report = DetectionSession(module, config=config).run()
        return normalized_report_dict(report.to_dict())

    def test_trace_not_in_fingerprint(self):
        from repro.exec.fingerprint import config_fingerprint

        traced = config_fingerprint(DetectionConfig(trace=True), "python")
        untraced = config_fingerprint(DetectionConfig(trace=False), "python")
        assert traced == untraced

    def test_normalized_report_identical_traced_or_not(self, trojaned_module):
        baseline = self._normalized(trojaned_module, trace=False)
        assert self._normalized(trojaned_module, trace=True) == baseline

    def test_normalized_report_identical_across_jobs_with_trace(
        self, trojaned_module
    ):
        baseline = self._normalized(trojaned_module, jobs=1, trace=False)
        assert self._normalized(trojaned_module, jobs=2, trace=True) == baseline

    def test_traced_run_attaches_profile_and_strips_it_normalized(
        self, trojaned_module
    ):
        report = DetectionSession(
            trojaned_module, config=DetectionConfig(trace=True)
        ).run()
        assert report.profile is not None
        assert "settle" in report.profile["phases"]
        data = report.to_dict()
        assert data["profile"] == report.profile
        assert "profile" not in normalized_report_dict(data)

    def test_untraced_run_has_no_profile(self, trojaned_module):
        report = DetectionSession(trojaned_module).run()
        assert report.profile is None

    def test_worker_spans_merge_into_ambient_tracer(self, trojaned_module):
        with install_tracer(Tracer()) as tracer:
            DetectionSession(
                trojaned_module, config=DetectionConfig(jobs=2, trace=True)
            ).run()
        names = {event["name"] for event in tracer.export()}
        assert "settle" in names and "bitblast" in names
        pids = {event["pid"] for event in tracer.export()}
        assert len(pids) >= 2, "worker-process spans must come home"


# ---------------------------------------------------------------------- #
# Serve daemon /metrics
# ---------------------------------------------------------------------- #


@pytest.fixture
def audit_server(tmp_path):
    from repro.serve import AuditServer

    server = AuditServer(
        port=0, queue_dir=str(tmp_path / "queue"), jobs=1, use_cache=False
    )
    server.start()
    try:
        yield server
    finally:
        server.stop()


class TestServeMetrics:
    def _scrape(self, server):
        with urllib.request.urlopen(f"{server.url}/metrics", timeout=10) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            assert "version=0.0.4" in response.headers["Content-Type"]
            return response.read().decode("utf-8")

    def test_metrics_exposed_before_any_job(self, audit_server):
        text = self._scrape(audit_server)
        lines = text.splitlines()
        assert "repro_jobs_completed_total 0" in lines
        assert "repro_queue_depth 0" in lines
        assert "# TYPE repro_audit_run_seconds histogram" in lines

    def test_counters_increase_monotonically_across_runs(self, audit_server):
        from repro.serve.client import ServeClient

        client = ServeClient(audit_server.url)
        submitted = 0
        for benchmark in ("RS232-T2400", "RS232-HT-FREE"):
            handle = client.submit({"benchmark": benchmark, "config": {}})
            submitted += 1
            for _ in client.stream_events(handle["job"]["id"]):
                pass
        text = self._scrape(audit_server)
        values = {}
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            name, value = line.rsplit(" ", 1)
            values[name] = float(value)
        assert values["repro_jobs_submitted_total"] == submitted
        assert values["repro_jobs_completed_total"] == submitted
        assert values["repro_audit_run_seconds_count"] == submitted
        assert values["repro_queue_wait_seconds_count"] == submitted
        assert values["repro_queue_depth"] == 0


# ---------------------------------------------------------------------- #
# Stopwatch thread safety
# ---------------------------------------------------------------------- #


class TestStopwatchThreadSafety:
    def test_concurrent_records_are_all_kept(self):
        stopwatch = Stopwatch()

        def hammer():
            for _ in range(500):
                stopwatch.record("solve", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(stopwatch.durations("solve")) == 8 * 500
        assert stopwatch.total("solve") == pytest.approx(8 * 500 * 0.001)
